//! A windowed metrics timeline: the *when* that summary reports lose.
//!
//! The capacity engine's [`super::Obs`] bundle answers "what happened
//! over the whole run"; a [`MetricsTimeline`] answers "what happened in
//! each interval, on each shard". It partitions simulated time into
//! fixed-width windows and accumulates, per `(shard, window)`:
//!
//! - **counters** — procedures dispatched, completed, shed by admission
//!   control, rejected by ring backpressure;
//! - **a latency delta** — a [`Log2Histogram`] of only that window's
//!   completions, so per-window p50/p95/p99 fall out with the same
//!   bounded relative error as the run-wide histograms;
//! - **a latency anatomy** — one histogram per pipeline [`Stage`]
//!   (`queue_wait`, `service`, `completion_transit`), so a p99 excursion
//!   is attributable to queueing delay, service time, or ring transit;
//! - **a depth gauge** — the deepest in-flight queue observed.
//!
//! Recording is allocation-free once a window exists (windows allocate
//! lazily, capped at [`MAX_WINDOWS`]; past the cap samples land in the
//! last window and are counted in [`MetricsTimeline::clamped`], never
//! silently lost). Timelines follow the same cross-thread discipline as
//! `Obs`: worker threads record into private timelines and the
//! dispatcher merges them window-wise at join via
//! [`MetricsTimeline::absorb`].
//!
//! Three exporters cover the consumption paths: CSV for plotting, JSON
//! Lines (with its own round-tripping parser,
//! [`parse_timeline_jsonl_line`]) for archival, and Prometheus text
//! exposition ([`MetricsTimeline::to_prometheus_samples`], checked by
//! [`validate_prometheus`]) for scrape-style tooling.

use std::fmt::Write as _;

use l25gc_codec::json;
use l25gc_codec::value::Value;
use l25gc_sim::{SimDuration, SimTime};

use crate::export::JsonlError;
use crate::hist::Log2Histogram;

/// Hard cap on windows per shard lane (several GiB of histograms at the
/// default precision if every window of every lane fills — in practice
/// a run's horizon divided by its interval, a few hundred).
pub const MAX_WINDOWS: usize = 1 << 16;

/// One stage of the dispatch→completion pipeline, as decomposed by the
/// latency anatomy. The three stages tile the end-to-end latency of a
/// dispatched event:
///
/// - [`Stage::QueueWait`] — dispatch (analytic: arrival at the shard
///   model; threaded: submit-ring push) to the instant the shard server
///   starts work (worker pop on the threaded backend);
/// - [`Stage::Service`] — shard CPU occupancy, start of work to
///   completion-push;
/// - [`Stage::CompletionTransit`] — completion-push to the completion
///   instant the dispatcher observes when it drains the event
///   (propagation/transit tail beyond the CPU occupancy).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Dispatch → start of service: time spent queued behind the shard.
    QueueWait,
    /// Start of service → completion-push: shard CPU occupancy.
    Service,
    /// Completion-push → dispatcher-observed completion: ring transit
    /// and any latency beyond occupancy.
    CompletionTransit,
}

impl Stage {
    /// Every stage, in pipeline order.
    pub const ALL: [Stage; 3] = [Stage::QueueWait, Stage::Service, Stage::CompletionTransit];

    /// The stable label used in exports (`stage="..."`, CSV columns).
    pub fn name(self) -> &'static str {
        match self {
            Stage::QueueWait => "queue_wait",
            Stage::Service => "service",
            Stage::CompletionTransit => "completion_transit",
        }
    }
}

/// One `(shard, window)` cell: counters plus that window's latency delta.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineWindow {
    /// Procedures dispatched into the shard during the window.
    pub dispatched: u64,
    /// Procedures whose completion instant fell inside the window.
    pub completed: u64,
    /// Arrivals shed by admission control.
    pub shed: u64,
    /// Arrivals rejected by ring backpressure.
    pub backpressure: u64,
    /// Deepest in-flight queue observed during the window.
    pub peak_depth: u64,
    /// Virtual time the shard server spent executing charged service
    /// time inside this window, nanoseconds
    /// ([`MetricsTimeline::record_busy`], overlap-split across window
    /// boundaries). Both backends derive it from the same FIFO
    /// recurrence, so analytic and threaded lanes agree when unshed.
    pub busy_ns: u64,
    /// Idle time apportioned to the yield/blocked tier by
    /// [`MetricsTimeline::finalize_idle`], nanoseconds. Together with
    /// `busy_ns` and `parked_ns` it tiles the window exactly.
    pub blocked_ns: u64,
    /// Idle time apportioned to the park tier by
    /// [`MetricsTimeline::finalize_idle`], nanoseconds.
    pub parked_ns: u64,
    /// Ring-occupancy time integral: the summed per-event sojourn
    /// (arrival → CPU done) overlapping this window, nanoseconds
    /// ([`MetricsTimeline::record_occupancy`]). Unlike `busy_ns` this
    /// counts concurrent residents multiply, so occupancy/window-length
    /// is the mean queue depth.
    pub occupancy_ns: u64,
    /// Staged-dispatch bursts flushed into the shard's submit ring
    /// during the window ([`MetricsTimeline::record_batch_flush`]).
    /// Zero under per-event dispatch.
    pub batch_flushes: u64,
    /// Events those flushed bursts carried; `batch_events /
    /// batch_flushes` is the window's mean burst fill.
    pub batch_events: u64,
    /// Latency distribution of this window's completions only.
    pub latency: Log2Histogram,
    /// [`Stage::QueueWait`] distribution of this window's completions.
    pub queue_wait: Log2Histogram,
    /// [`Stage::Service`] distribution of this window's completions.
    pub service: Log2Histogram,
    /// [`Stage::CompletionTransit`] distribution of this window's
    /// completions.
    pub completion_transit: Log2Histogram,
}

impl TimelineWindow {
    fn new() -> TimelineWindow {
        TimelineWindow {
            dispatched: 0,
            completed: 0,
            shed: 0,
            backpressure: 0,
            peak_depth: 0,
            busy_ns: 0,
            blocked_ns: 0,
            parked_ns: 0,
            occupancy_ns: 0,
            batch_flushes: 0,
            batch_events: 0,
            latency: Log2Histogram::new(),
            queue_wait: Log2Histogram::new(),
            service: Log2Histogram::new(),
            completion_transit: Log2Histogram::new(),
        }
    }

    /// The per-stage histogram for `stage`.
    pub fn stage(&self, stage: Stage) -> &Log2Histogram {
        match stage {
            Stage::QueueWait => &self.queue_wait,
            Stage::Service => &self.service,
            Stage::CompletionTransit => &self.completion_transit,
        }
    }

    fn absorb(&mut self, other: &TimelineWindow) {
        self.dispatched += other.dispatched;
        self.completed += other.completed;
        self.shed += other.shed;
        self.backpressure += other.backpressure;
        self.peak_depth = self.peak_depth.max(other.peak_depth);
        self.busy_ns += other.busy_ns;
        self.blocked_ns += other.blocked_ns;
        self.parked_ns += other.parked_ns;
        self.occupancy_ns += other.occupancy_ns;
        self.batch_flushes += other.batch_flushes;
        self.batch_events += other.batch_events;
        self.latency.merge(&other.latency);
        self.queue_wait.merge(&other.queue_wait);
        self.service.merge(&other.service);
        self.completion_transit.merge(&other.completion_transit);
    }
}

/// Per-shard, per-interval counter/gauge/histogram snapshots over a run.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsTimeline {
    interval: SimDuration,
    /// One lane per shard; windows allocate lazily and contiguously.
    lanes: Vec<Vec<TimelineWindow>>,
    clamped: u64,
    /// Wall time the dispatcher spent doing work (total minus its
    /// waiters' descheduled time), nanoseconds.
    dispatcher_busy_ns: u64,
    /// Total dispatcher wall time the busy figure is measured against,
    /// nanoseconds. Zero on backends that have no dispatcher thread
    /// (the analytic loop runs in virtual time).
    dispatcher_wall_ns: u64,
    /// Whole-run distribution of flushed burst fills (events per
    /// `push_burst`) — how full the dispatcher's staging buffers were at
    /// flush time. Empty under per-event dispatch.
    batch_fill: Log2Histogram,
}

impl MetricsTimeline {
    /// A timeline with `shards` lanes snapshotting every `interval`.
    ///
    /// `interval` must be non-zero (the window index divides by it).
    pub fn new(interval: SimDuration, shards: u16) -> MetricsTimeline {
        assert!(!interval.is_zero(), "timeline interval must be non-zero");
        MetricsTimeline {
            interval,
            lanes: vec![Vec::new(); shards as usize],
            clamped: 0,
            dispatcher_busy_ns: 0,
            dispatcher_wall_ns: 0,
            batch_fill: Log2Histogram::new(),
        }
    }

    /// The snapshot interval.
    pub fn interval(&self) -> SimDuration {
        self.interval
    }

    /// Shard lane count.
    pub fn shards(&self) -> u16 {
        self.lanes.len() as u16
    }

    /// Samples recorded past the [`MAX_WINDOWS`] cap (folded into the
    /// last window rather than lost).
    pub fn clamped(&self) -> u64 {
        self.clamped
    }

    /// Longest lane length — the number of windows the run touched.
    pub fn window_count(&self) -> usize {
        self.lanes.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// One shard's windows, in time order (index × interval = start).
    pub fn lane(&self, shard: u16) -> &[TimelineWindow] {
        &self.lanes[shard as usize]
    }

    fn window_mut(&mut self, shard: u16, at: SimTime) -> &mut TimelineWindow {
        let mut i = (at.as_nanos() / self.interval.as_nanos()) as usize;
        if i >= MAX_WINDOWS {
            i = MAX_WINDOWS - 1;
            self.clamped += 1;
        }
        let lane = &mut self.lanes[shard as usize];
        while lane.len() <= i {
            lane.push(TimelineWindow::new());
        }
        &mut lane[i]
    }

    /// Counts a dispatch into `shard` at `at`.
    pub fn record_dispatched(&mut self, shard: u16, at: SimTime) {
        self.window_mut(shard, at).dispatched += 1;
    }

    /// Counts a completion at `at` and records its latency delta.
    pub fn record_completion(&mut self, shard: u16, at: SimTime, latency_ns: u64) {
        let w = self.window_mut(shard, at);
        w.completed += 1;
        w.latency.record(latency_ns);
    }

    /// Records one completion's per-stage latency anatomy into the
    /// window containing `at` — call alongside
    /// [`MetricsTimeline::record_completion`] with the same completion
    /// instant so stage deltas land in the same window as the end-to-end
    /// delta. The three values tile the event's end-to-end latency (up
    /// to any end-to-end slack beyond the three stages):
    /// `queue_wait + service ≤ end-to-end`.
    pub fn record_stages(
        &mut self,
        shard: u16,
        at: SimTime,
        queue_wait_ns: u64,
        service_ns: u64,
        transit_ns: u64,
    ) {
        let w = self.window_mut(shard, at);
        w.queue_wait.record(queue_wait_ns);
        w.service.record(service_ns);
        w.completion_transit.record(transit_ns);
    }

    /// Counts an admission-control shed.
    pub fn record_shed(&mut self, shard: u16, at: SimTime) {
        self.window_mut(shard, at).shed += 1;
    }

    /// Counts a ring-backpressure rejection.
    pub fn record_backpressure(&mut self, shard: u16, at: SimTime) {
        self.window_mut(shard, at).backpressure += 1;
    }

    /// Folds a queue-depth sample into the window's peak gauge.
    pub fn record_depth(&mut self, shard: u16, at: SimTime, depth: u64) {
        let w = self.window_mut(shard, at);
        w.peak_depth = w.peak_depth.max(depth);
    }

    /// Counts one staged-dispatch burst of `fill` events flushed into
    /// `shard`'s submit ring at virtual time `at` (the burst's oldest
    /// staged arrival), and records the fill into the run-wide
    /// [`MetricsTimeline::batch_fill`] distribution.
    pub fn record_batch_flush(&mut self, shard: u16, at: SimTime, fill: u64) {
        let w = self.window_mut(shard, at);
        w.batch_flushes += 1;
        w.batch_events += fill;
        self.batch_fill.record(fill);
    }

    /// Whole-run flushed-burst fill distribution (events per
    /// `push_burst`); empty under per-event dispatch.
    pub fn batch_fill(&self) -> &Log2Histogram {
        &self.batch_fill
    }

    /// Total staged-dispatch bursts flushed across every shard and
    /// window.
    pub fn batch_flush_total(&self) -> u64 {
        self.lanes.iter().flatten().map(|w| w.batch_flushes).sum()
    }

    /// Total events carried by flushed bursts across every shard and
    /// window.
    pub fn batch_events_total(&self) -> u64 {
        self.lanes.iter().flatten().map(|w| w.batch_events).sum()
    }

    /// Adds the virtual interval `[start, end)` into one duty-cycle
    /// bucket, overlap-split across window boundaries so each window
    /// receives exactly the nanoseconds falling inside it. Spans past
    /// the [`MAX_WINDOWS`] cap fold into the terminal window.
    fn record_span(
        &mut self,
        shard: u16,
        start: SimTime,
        end: SimTime,
        pick: fn(&mut TimelineWindow) -> &mut u64,
    ) {
        let iv = self.interval.as_nanos();
        let end = end.as_nanos();
        let mut cur = start.as_nanos();
        while cur < end {
            let i = (cur / iv) as usize;
            if i >= MAX_WINDOWS - 1 {
                // The terminal window also takes the clamp spill.
                let w = self.window_mut(shard, SimTime::from_nanos(cur));
                *pick(w) += end - cur;
                return;
            }
            let chunk_end = end.min((i as u64 + 1) * iv);
            let w = self.window_mut(shard, SimTime::from_nanos(cur));
            *pick(w) += chunk_end - cur;
            cur = chunk_end;
        }
    }

    /// Records charged service time `[start, end)` as shard busy time,
    /// overlap-split across windows. Both backends call this with the
    /// same FIFO-recurrence instants (`start = max(busy_until, arrival)`
    /// floored through scripted outages, `end = start + occupancy`), so
    /// the busy lanes agree byte-for-byte when unshed.
    pub fn record_busy(&mut self, shard: u16, start: SimTime, end: SimTime) {
        self.record_span(shard, start, end, |w| &mut w.busy_ns);
    }

    /// Records one event's ring-residency sojourn `[arrival, cpu_done)`
    /// into the occupancy time integral, overlap-split across windows.
    pub fn record_occupancy(&mut self, shard: u16, start: SimTime, end: SimTime) {
        self.record_span(shard, start, end, |w| &mut w.occupancy_ns);
    }

    /// Apportions each window's idle remainder (window length minus
    /// `busy_ns`, clamped at zero) between the blocked and parked
    /// buckets, so `busy + blocked + parked` tiles every window inside
    /// `horizon` exactly. `parked_ratio` is the shard's measured
    /// park-tier share of its descheduled wall time (0 on the analytic
    /// backend, which never parks).
    ///
    /// Call once per shard on the **final merged** timeline — the
    /// blocked/parked buckets are overwritten, not accumulated, so a
    /// second call (or a later absorb of this lane) would double-count
    /// idle time.
    pub fn finalize_idle(&mut self, shard: u16, horizon: SimDuration, parked_ratio: f64) {
        let iv = self.interval.as_nanos();
        let horizon_ns = horizon.as_nanos();
        if horizon_ns == 0 {
            return;
        }
        let last = (((horizon_ns - 1) / iv) as usize).min(MAX_WINDOWS - 1);
        let ratio = if parked_ratio.is_finite() {
            parked_ratio.clamp(0.0, 1.0)
        } else {
            0.0
        };
        // Materialise every window up to the horizon, then tile.
        self.window_mut(shard, SimTime::from_nanos(horizon_ns - 1));
        let lane = &mut self.lanes[shard as usize];
        for (i, w) in lane.iter_mut().enumerate().take(last + 1) {
            let start = i as u64 * iv;
            let len = iv.min(horizon_ns - start);
            let idle = len.saturating_sub(w.busy_ns);
            w.parked_ns = (idle as f64 * ratio) as u64;
            w.blocked_ns = idle - w.parked_ns;
        }
    }

    /// One shard's whole-run duty-cycle utilization: busy time over the
    /// lane's window span, clamped to `(0, 1]`. Usable mid-run (before
    /// [`MetricsTimeline::finalize_idle`]) because the denominator is
    /// the windows the lane has touched, not the idle buckets.
    pub fn shard_utilization(&self, shard: u16) -> f64 {
        let lane = self.lane(shard);
        let span = lane.len() as u64 * self.interval.as_nanos();
        if span == 0 {
            return 0.0;
        }
        let busy: u64 = lane.iter().map(|w| w.busy_ns).sum();
        (busy as f64 / span as f64).min(1.0)
    }

    /// Adds a dispatcher duty-cycle measurement: `busy_ns` of `wall_ns`
    /// spent doing work rather than descheduled in a wait ladder.
    pub fn record_dispatcher_utilization(&mut self, busy_ns: u64, wall_ns: u64) {
        self.dispatcher_busy_ns += busy_ns;
        self.dispatcher_wall_ns += wall_ns;
    }

    /// Dispatcher busy wall time, nanoseconds.
    pub fn dispatcher_busy_ns(&self) -> u64 {
        self.dispatcher_busy_ns
    }

    /// Dispatcher total wall time, nanoseconds (zero when no dispatcher
    /// thread exists — the analytic backend).
    pub fn dispatcher_wall_ns(&self) -> u64 {
        self.dispatcher_wall_ns
    }

    /// Dispatcher utilization ratio in `[0, 1]`; `0.0` when no
    /// dispatcher wall time was recorded.
    pub fn dispatcher_utilization(&self) -> f64 {
        if self.dispatcher_wall_ns == 0 {
            return 0.0;
        }
        (self.dispatcher_busy_ns as f64 / self.dispatcher_wall_ns as f64).min(1.0)
    }

    /// Total dispatches across every shard and window.
    pub fn dispatched_total(&self) -> u64 {
        self.lanes.iter().flatten().map(|w| w.dispatched).sum()
    }

    /// Total completions across every shard and window.
    pub fn completed_total(&self) -> u64 {
        self.lanes.iter().flatten().map(|w| w.completed).sum()
    }

    /// Total sheds across every shard and window.
    pub fn shed_total(&self) -> u64 {
        self.lanes.iter().flatten().map(|w| w.shed).sum()
    }

    /// Sheds in window `w`, summed across every shard lane.
    pub fn window_shed(&self, w: usize) -> u64 {
        self.lanes
            .iter()
            .filter_map(|lane| lane.get(w))
            .map(|win| win.shed)
            .sum()
    }

    /// The worst single window's shed count (shard lanes merged
    /// window-wise) — the scenario tables' "peak shed" column: how hard
    /// admission control bit at the height of a disturbance.
    pub fn peak_window_shed(&self) -> u64 {
        (0..self.window_count())
            .map(|w| self.window_shed(w))
            .max()
            .unwrap_or(0)
    }

    /// One shard's whole-run latency distribution (window deltas merged).
    pub fn shard_latency(&self, shard: u16) -> Log2Histogram {
        let mut h = Log2Histogram::new();
        for w in self.lane(shard) {
            h.merge(&w.latency);
        }
        h
    }

    /// One shard's whole-run distribution for a pipeline `stage`.
    pub fn shard_stage_latency(&self, shard: u16, stage: Stage) -> Log2Histogram {
        let mut h = Log2Histogram::new();
        for w in self.lane(shard) {
            h.merge(w.stage(stage));
        }
        h
    }

    /// The whole-run distribution for a pipeline `stage`, merged across
    /// every shard.
    pub fn stage_latency(&self, stage: Stage) -> Log2Histogram {
        let mut h = Log2Histogram::new();
        for shard in 0..self.shards() {
            h.merge(&self.shard_stage_latency(shard, stage));
        }
        h
    }

    /// Merges another timeline window-wise into this one. Panics when
    /// the interval or shard count differ — merged lanes must describe
    /// the same time base, the same discipline as histogram precision.
    pub fn absorb(&mut self, other: &MetricsTimeline) {
        assert_eq!(self.interval, other.interval, "interval mismatch in absorb");
        assert_eq!(
            self.lanes.len(),
            other.lanes.len(),
            "shard-count mismatch in absorb"
        );
        self.clamped += other.clamped;
        self.dispatcher_busy_ns += other.dispatcher_busy_ns;
        self.dispatcher_wall_ns += other.dispatcher_wall_ns;
        self.batch_fill.merge(&other.batch_fill);
        for (shard, lane) in other.lanes.iter().enumerate() {
            for (i, w) in lane.iter().enumerate() {
                let at = SimTime::from_nanos(i as u64 * self.interval.as_nanos());
                // Materialise the window, then merge (window_mut grows
                // the lane contiguously).
                self.window_mut(shard as u16, at).absorb(w);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// CSV
// ---------------------------------------------------------------------------

/// The CSV header matching [`MetricsTimeline::to_csv_rows`].
pub fn timeline_csv_header() -> &'static str {
    "series,shard,window,start_ns,dispatched,completed,shed,backpressure,peak_depth,count,p50_ns,p95_ns,p99_ns,queue_wait_p99_ns,service_p99_ns,transit_p99_ns,busy_ns,blocked_ns,parked_ns,occupancy_ns,batch_flushes,batch_events\n"
}

impl MetricsTimeline {
    /// Data rows (no header) labelled with `series`, one per
    /// `(shard, window)`.
    pub fn to_csv_rows(&self, series: &str) -> String {
        let mut out = String::new();
        for (shard, lane) in self.lanes.iter().enumerate() {
            for (i, w) in lane.iter().enumerate() {
                let start = i as u64 * self.interval.as_nanos();
                let _ = writeln!(
                    out,
                    "{series},{shard},{i},{start},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
                    w.dispatched,
                    w.completed,
                    w.shed,
                    w.backpressure,
                    w.peak_depth,
                    w.latency.count(),
                    w.latency.quantile(0.50),
                    w.latency.quantile(0.95),
                    w.latency.quantile(0.99),
                    w.queue_wait.quantile(0.99),
                    w.service.quantile(0.99),
                    w.completion_transit.quantile(0.99),
                    w.busy_ns,
                    w.blocked_ns,
                    w.parked_ns,
                    w.occupancy_ns,
                    w.batch_flushes,
                    w.batch_events,
                );
            }
        }
        out
    }

    /// Header plus this timeline's rows — the single-series convenience.
    pub fn to_csv(&self, series: &str) -> String {
        format!("{}{}", timeline_csv_header(), self.to_csv_rows(series))
    }
}

// ---------------------------------------------------------------------------
// JSON Lines
// ---------------------------------------------------------------------------

fn obj() -> l25gc_codec::value::ObjectBuilder {
    l25gc_codec::value::ObjectBuilder::new()
}

/// A line parsed back out of the timeline JSONL export.
#[derive(Debug, Clone, PartialEq)]
pub enum TimelineLine {
    /// One `(shard, window)` cell.
    Window {
        /// Caller-chosen series label (deployment, sweep point, ...).
        series: String,
        /// Shard lane.
        shard: u64,
        /// Window index (start = `window * interval`).
        window: u64,
        /// Window start, nanoseconds.
        start_ns: u64,
        /// Dispatches in the window.
        dispatched: u64,
        /// Completions in the window.
        completed: u64,
        /// Admission sheds in the window.
        shed: u64,
        /// Ring-backpressure rejections in the window.
        backpressure: u64,
        /// Deepest queue observed.
        peak_depth: u64,
        /// Latency samples in the window.
        count: u64,
        /// Median latency of the window's completions, ns.
        p50_ns: u64,
        /// 95th percentile, ns.
        p95_ns: u64,
        /// 99th percentile, ns.
        p99_ns: u64,
        /// [`Stage::QueueWait`] p99 of the window's completions, ns.
        queue_wait_p99_ns: u64,
        /// [`Stage::Service`] p99 of the window's completions, ns.
        service_p99_ns: u64,
        /// [`Stage::CompletionTransit`] p99 of the window's completions,
        /// ns.
        transit_p99_ns: u64,
        /// Charged service time overlapping the window, ns.
        busy_ns: u64,
        /// Idle time apportioned to the blocked bucket, ns.
        blocked_ns: u64,
        /// Idle time apportioned to the park bucket, ns.
        parked_ns: u64,
        /// Ring-occupancy time integral overlapping the window, ns.
        occupancy_ns: u64,
        /// Staged-dispatch bursts flushed in the window (0 on lines
        /// written before batching existed — the parser defaults it).
        batch_flushes: u64,
        /// Events those bursts carried (0 on pre-batching lines).
        batch_events: u64,
    },
    /// The per-series trailing metadata line.
    Meta {
        /// Series label.
        series: String,
        /// Snapshot interval, nanoseconds.
        interval_ns: u64,
        /// Shard lane count.
        shards: u64,
        /// Windows the run touched.
        windows: u64,
        /// Samples folded into the last window past [`MAX_WINDOWS`].
        clamped: u64,
        /// Dispatcher busy wall time, ns.
        dispatcher_busy_ns: u64,
        /// Dispatcher total wall time, ns (0 = no dispatcher thread).
        dispatcher_wall_ns: u64,
    },
}

impl TimelineLine {
    /// Re-serializes to the exact [`Value`] shape
    /// [`MetricsTimeline::to_jsonl`] emits, for round-trip checks.
    pub fn to_value(&self) -> Value {
        match self {
            TimelineLine::Window {
                series,
                shard,
                window,
                start_ns,
                dispatched,
                completed,
                shed,
                backpressure,
                peak_depth,
                count,
                p50_ns,
                p95_ns,
                p99_ns,
                queue_wait_p99_ns,
                service_p99_ns,
                transit_p99_ns,
                busy_ns,
                blocked_ns,
                parked_ns,
                occupancy_ns,
                batch_flushes,
                batch_events,
            } => obj()
                .field("t", Value::Str("tl".into()))
                .field("series", Value::Str(series.clone()))
                .field("shard", Value::U64(*shard))
                .field("window", Value::U64(*window))
                .field("start_ns", Value::U64(*start_ns))
                .field("dispatched", Value::U64(*dispatched))
                .field("completed", Value::U64(*completed))
                .field("shed", Value::U64(*shed))
                .field("backpressure", Value::U64(*backpressure))
                .field("peak_depth", Value::U64(*peak_depth))
                .field("count", Value::U64(*count))
                .field("p50_ns", Value::U64(*p50_ns))
                .field("p95_ns", Value::U64(*p95_ns))
                .field("p99_ns", Value::U64(*p99_ns))
                .field("queue_wait_p99_ns", Value::U64(*queue_wait_p99_ns))
                .field("service_p99_ns", Value::U64(*service_p99_ns))
                .field("transit_p99_ns", Value::U64(*transit_p99_ns))
                .field("busy_ns", Value::U64(*busy_ns))
                .field("blocked_ns", Value::U64(*blocked_ns))
                .field("parked_ns", Value::U64(*parked_ns))
                .field("occupancy_ns", Value::U64(*occupancy_ns))
                .field("batch_flushes", Value::U64(*batch_flushes))
                .field("batch_events", Value::U64(*batch_events))
                .build(),
            TimelineLine::Meta {
                series,
                interval_ns,
                shards,
                windows,
                clamped,
                dispatcher_busy_ns,
                dispatcher_wall_ns,
            } => obj()
                .field("t", Value::Str("tl_meta".into()))
                .field("series", Value::Str(series.clone()))
                .field("interval_ns", Value::U64(*interval_ns))
                .field("shards", Value::U64(*shards))
                .field("windows", Value::U64(*windows))
                .field("clamped", Value::U64(*clamped))
                .field("dispatcher_busy_ns", Value::U64(*dispatcher_busy_ns))
                .field("dispatcher_wall_ns", Value::U64(*dispatcher_wall_ns))
                .build(),
        }
    }
}

/// Parses one line of [`MetricsTimeline::to_jsonl`] output.
pub fn parse_timeline_jsonl_line(line: &str) -> Result<TimelineLine, JsonlError> {
    let v = json::parse(line.trim()).map_err(|_| JsonlError::BadJson)?;
    let t = v
        .get("t")
        .and_then(Value::as_str)
        .ok_or(JsonlError::BadShape)?;
    let u = |key: &str| {
        v.get(key)
            .and_then(Value::as_u64)
            .ok_or(JsonlError::BadShape)
    };
    let s = |key: &str| {
        v.get(key)
            .and_then(Value::as_str)
            .map(str::to_owned)
            .ok_or(JsonlError::BadShape)
    };
    match t {
        "tl" => Ok(TimelineLine::Window {
            series: s("series")?,
            shard: u("shard")?,
            window: u("window")?,
            start_ns: u("start_ns")?,
            dispatched: u("dispatched")?,
            completed: u("completed")?,
            shed: u("shed")?,
            backpressure: u("backpressure")?,
            peak_depth: u("peak_depth")?,
            count: u("count")?,
            p50_ns: u("p50_ns")?,
            p95_ns: u("p95_ns")?,
            p99_ns: u("p99_ns")?,
            queue_wait_p99_ns: u("queue_wait_p99_ns")?,
            service_p99_ns: u("service_p99_ns")?,
            transit_p99_ns: u("transit_p99_ns")?,
            busy_ns: u("busy_ns")?,
            blocked_ns: u("blocked_ns")?,
            parked_ns: u("parked_ns")?,
            occupancy_ns: u("occupancy_ns")?,
            // Absent on lines written before staged dispatch existed;
            // default 0 keeps old exports parseable.
            batch_flushes: v.get("batch_flushes").and_then(Value::as_u64).unwrap_or(0),
            batch_events: v.get("batch_events").and_then(Value::as_u64).unwrap_or(0),
        }),
        "tl_meta" => Ok(TimelineLine::Meta {
            series: s("series")?,
            interval_ns: u("interval_ns")?,
            shards: u("shards")?,
            windows: u("windows")?,
            clamped: u("clamped")?,
            dispatcher_busy_ns: u("dispatcher_busy_ns")?,
            dispatcher_wall_ns: u("dispatcher_wall_ns")?,
        }),
        _ => Err(JsonlError::BadShape),
    }
}

impl MetricsTimeline {
    /// The timeline as JSON Lines: one object per `(shard, window)` in
    /// lane order, plus a trailing `tl_meta` line. Every line parses
    /// back through [`parse_timeline_jsonl_line`] value-for-value.
    pub fn to_jsonl(&self, series: &str) -> String {
        let mut out = String::new();
        for (shard, lane) in self.lanes.iter().enumerate() {
            for (i, w) in lane.iter().enumerate() {
                let line = TimelineLine::Window {
                    series: series.to_owned(),
                    shard: shard as u64,
                    window: i as u64,
                    start_ns: i as u64 * self.interval.as_nanos(),
                    dispatched: w.dispatched,
                    completed: w.completed,
                    shed: w.shed,
                    backpressure: w.backpressure,
                    peak_depth: w.peak_depth,
                    count: w.latency.count(),
                    p50_ns: w.latency.quantile(0.50),
                    p95_ns: w.latency.quantile(0.95),
                    p99_ns: w.latency.quantile(0.99),
                    queue_wait_p99_ns: w.queue_wait.quantile(0.99),
                    service_p99_ns: w.service.quantile(0.99),
                    transit_p99_ns: w.completion_transit.quantile(0.99),
                    busy_ns: w.busy_ns,
                    blocked_ns: w.blocked_ns,
                    parked_ns: w.parked_ns,
                    occupancy_ns: w.occupancy_ns,
                    batch_flushes: w.batch_flushes,
                    batch_events: w.batch_events,
                };
                out.push_str(&json::to_string(&line.to_value()));
                out.push('\n');
            }
        }
        let meta = TimelineLine::Meta {
            series: series.to_owned(),
            interval_ns: self.interval.as_nanos(),
            shards: self.lanes.len() as u64,
            windows: self.window_count() as u64,
            clamped: self.clamped,
            dispatcher_busy_ns: self.dispatcher_busy_ns,
            dispatcher_wall_ns: self.dispatcher_wall_ns,
        };
        out.push_str(&json::to_string(&meta.to_value()));
        out.push('\n');
        out
    }
}

// ---------------------------------------------------------------------------
// Prometheus text exposition
// ---------------------------------------------------------------------------

/// Every metric the Prometheus writer emits: `(name, type, help)`.
const PROM_METRICS: [(&str, &str, &str); 19] = [
    (
        "l25gc_dispatched_total",
        "counter",
        "Procedures dispatched into a shard over the run.",
    ),
    (
        "l25gc_completed_total",
        "counter",
        "Procedures completed over the run.",
    ),
    (
        "l25gc_shed_total",
        "counter",
        "Arrivals shed by admission control.",
    ),
    (
        "l25gc_backpressure_total",
        "counter",
        "Arrivals rejected by ring backpressure.",
    ),
    (
        "l25gc_peak_depth",
        "gauge",
        "Deepest in-flight shard queue observed.",
    ),
    (
        "l25gc_latency_ns",
        "gauge",
        "Whole-run latency quantile per shard, nanoseconds.",
    ),
    (
        "l25gc_stage_latency_ns",
        "histogram",
        "Whole-run per-stage latency distribution per shard, nanoseconds.",
    ),
    (
        "l25gc_timeline_windows",
        "gauge",
        "Timeline windows the run touched.",
    ),
    (
        "l25gc_timeline_clamped_total",
        "counter",
        "Samples folded into the last window past the cap.",
    ),
    (
        "l25gc_worker_busy_ns_total",
        "counter",
        "Charged service time executed by a shard worker, nanoseconds.",
    ),
    (
        "l25gc_worker_blocked_ns_total",
        "counter",
        "Idle shard time apportioned to the yield/blocked tier, nanoseconds.",
    ),
    (
        "l25gc_worker_parked_ns_total",
        "counter",
        "Idle shard time apportioned to the park tier, nanoseconds.",
    ),
    (
        "l25gc_ring_occupancy_ns_total",
        "counter",
        "Summed per-event ring-residency sojourn per shard, nanoseconds.",
    ),
    (
        "l25gc_worker_utilization_ratio",
        "gauge",
        "Shard busy time over its touched window span, 0..1.",
    ),
    (
        "l25gc_dispatcher_utilization_ratio",
        "gauge",
        "Dispatcher busy wall time over its total wall time, 0..1.",
    ),
    (
        "l25gc_shard_outage",
        "gauge",
        "1 while a scripted fault holds the shard down, else 0.",
    ),
    (
        "l25gc_dispatch_batch_flushes_total",
        "counter",
        "Staged-dispatch bursts flushed into a shard's submit ring.",
    ),
    (
        "l25gc_dispatch_batch_events_total",
        "counter",
        "Events carried by staged-dispatch bursts into a shard's submit ring.",
    ),
    (
        "l25gc_dispatch_batch_fill",
        "histogram",
        "Events per flushed staged-dispatch burst over the run.",
    ),
];

/// The `# HELP` / `# TYPE` preamble for every metric the samples use.
/// Emit once per exposition, before any [`MetricsTimeline::to_prometheus_samples`].
pub fn prometheus_header() -> String {
    let mut out = String::new();
    for (name, kind, help) in PROM_METRICS {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} {kind}");
    }
    out
}

/// `l25gc_shard_outage` samples for a live exposition: one gauge per
/// shard, 1 while a scripted fault holds the shard down. The timeline
/// does not store outage state — the publisher (which knows the current
/// virtual time and the fault plan's intervals) passes the flags.
pub fn shard_outage_samples(series: &str, outage: &[bool]) -> String {
    let series = prom_escape(series);
    let mut out = String::new();
    for (shard, down) in outage.iter().enumerate() {
        let _ = writeln!(
            out,
            "l25gc_shard_outage{{series=\"{series}\",shard=\"{shard}\"}} {}",
            u8::from(*down)
        );
    }
    out
}

fn prom_escape(label: &str) -> String {
    let mut out = String::with_capacity(label.len());
    for c in label.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

impl MetricsTimeline {
    /// Per-shard whole-run totals, peaks, and latency quantiles as
    /// Prometheus text-exposition samples labelled with `series`.
    /// Prepend [`prometheus_header`] once per file.
    pub fn to_prometheus_samples(&self, series: &str) -> String {
        let series = prom_escape(series);
        let mut out = String::new();
        for shard in 0..self.shards() {
            let lane = self.lane(shard);
            let sum = |f: fn(&TimelineWindow) -> u64| lane.iter().map(f).sum::<u64>();
            let labels = format!("series=\"{series}\",shard=\"{shard}\"");
            let _ = writeln!(
                out,
                "l25gc_dispatched_total{{{labels}}} {}",
                sum(|w| w.dispatched)
            );
            let _ = writeln!(
                out,
                "l25gc_completed_total{{{labels}}} {}",
                sum(|w| w.completed)
            );
            let _ = writeln!(out, "l25gc_shed_total{{{labels}}} {}", sum(|w| w.shed));
            let _ = writeln!(
                out,
                "l25gc_backpressure_total{{{labels}}} {}",
                sum(|w| w.backpressure)
            );
            let _ = writeln!(
                out,
                "l25gc_peak_depth{{{labels}}} {}",
                lane.iter().map(|w| w.peak_depth).max().unwrap_or(0)
            );
            let _ = writeln!(
                out,
                "l25gc_worker_busy_ns_total{{{labels}}} {}",
                sum(|w| w.busy_ns)
            );
            let _ = writeln!(
                out,
                "l25gc_worker_blocked_ns_total{{{labels}}} {}",
                sum(|w| w.blocked_ns)
            );
            let _ = writeln!(
                out,
                "l25gc_worker_parked_ns_total{{{labels}}} {}",
                sum(|w| w.parked_ns)
            );
            let _ = writeln!(
                out,
                "l25gc_ring_occupancy_ns_total{{{labels}}} {}",
                sum(|w| w.occupancy_ns)
            );
            let _ = writeln!(
                out,
                "l25gc_dispatch_batch_flushes_total{{{labels}}} {}",
                sum(|w| w.batch_flushes)
            );
            let _ = writeln!(
                out,
                "l25gc_dispatch_batch_events_total{{{labels}}} {}",
                sum(|w| w.batch_events)
            );
            let _ = writeln!(
                out,
                "l25gc_worker_utilization_ratio{{{labels}}} {}",
                self.shard_utilization(shard)
            );
            let h = self.shard_latency(shard);
            for (q, qs) in [(0.50, "0.5"), (0.95, "0.95"), (0.99, "0.99")] {
                let _ = writeln!(
                    out,
                    "l25gc_latency_ns{{{labels},quantile=\"{qs}\"}} {}",
                    h.quantile(q)
                );
            }
            // Per-stage latency anatomy as a conformant cumulative
            // histogram: non-empty buckets in increasing-bound order,
            // an explicit `+Inf` terminal, then `_sum` and `_count`.
            for stage in Stage::ALL {
                let h = self.shard_stage_latency(shard, stage);
                let slabels = format!("{labels},stage=\"{}\"", stage.name());
                for (bound, cum) in h.cumulative_buckets() {
                    let _ = writeln!(
                        out,
                        "l25gc_stage_latency_ns_bucket{{{slabels},le=\"{bound}\"}} {cum}"
                    );
                }
                let _ = writeln!(
                    out,
                    "l25gc_stage_latency_ns_bucket{{{slabels},le=\"+Inf\"}} {}",
                    h.count()
                );
                let _ = writeln!(out, "l25gc_stage_latency_ns_sum{{{slabels}}} {}", h.sum());
                let _ = writeln!(
                    out,
                    "l25gc_stage_latency_ns_count{{{slabels}}} {}",
                    h.count()
                );
            }
        }
        // Burst-fill distribution is run-wide (the dispatcher stages
        // across shards), exported with the same cumulative-histogram
        // contract as the stage anatomy above.
        let bh = self.batch_fill();
        let blabels = format!("series=\"{series}\"");
        for (bound, cum) in bh.cumulative_buckets() {
            let _ = writeln!(
                out,
                "l25gc_dispatch_batch_fill_bucket{{{blabels},le=\"{bound}\"}} {cum}"
            );
        }
        let _ = writeln!(
            out,
            "l25gc_dispatch_batch_fill_bucket{{{blabels},le=\"+Inf\"}} {}",
            bh.count()
        );
        let _ = writeln!(
            out,
            "l25gc_dispatch_batch_fill_sum{{{blabels}}} {}",
            bh.sum()
        );
        let _ = writeln!(
            out,
            "l25gc_dispatch_batch_fill_count{{{blabels}}} {}",
            bh.count()
        );
        let _ = writeln!(
            out,
            "l25gc_timeline_windows{{series=\"{series}\"}} {}",
            self.window_count()
        );
        let _ = writeln!(
            out,
            "l25gc_timeline_clamped_total{{series=\"{series}\"}} {}",
            self.clamped
        );
        let _ = writeln!(
            out,
            "l25gc_dispatcher_utilization_ratio{{series=\"{series}\"}} {}",
            self.dispatcher_utilization()
        );
        out
    }

    /// Header plus this timeline's samples — the single-series
    /// convenience.
    pub fn to_prometheus(&self, series: &str) -> String {
        format!(
            "{}{}",
            prometheus_header(),
            self.to_prometheus_samples(series)
        )
    }
}

/// Checks a Prometheus text exposition: every line is a well-formed
/// `# HELP`/`# TYPE` comment or a `name{labels} value` sample whose
/// metric name was declared by a preceding `# TYPE` line. Histogram
/// families additionally enforce the cumulative-bucket contract: only
/// `_bucket`/`_sum`/`_count`-suffixed samples, every `_bucket` carries
/// an `le` label, cumulative counts never decrease within one labelled
/// bucket run, and every run terminates with an `le="+Inf"` bucket.
/// Returns the sample count.
pub fn validate_prometheus(text: &str) -> Result<usize, String> {
    fn metric_name(s: &str) -> Option<&str> {
        let end = s
            .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_' || c == ':'))
            .unwrap_or(s.len());
        let name = &s[..end];
        let first = name.chars().next()?;
        if first.is_ascii_alphabetic() || first == '_' || first == ':' {
            Some(name)
        } else {
            None
        }
    }

    /// Splits the `le="..."` pair out of a label-set body, returning
    /// `(le_value, remaining_labels)` — the remainder keys the bucket
    /// run the sample belongs to.
    fn split_le(labels: &str) -> Option<(String, String)> {
        let start = labels.find("le=\"")?;
        let after = &labels[start + 4..];
        let end = after.find('"')?;
        let le = after[..end].to_owned();
        let mut rest = String::with_capacity(labels.len());
        rest.push_str(&labels[..start]);
        rest.push_str(&after[end + 1..]);
        let rest = rest.replace(",,", ",");
        Some((le, rest.trim_matches(',').to_owned()))
    }

    /// An open cumulative-bucket run: key (family + labels minus `le`),
    /// last cumulative count, and whether `+Inf` has been seen.
    struct BucketRun {
        key: String,
        last: f64,
        terminated: bool,
    }

    fn close_run(run: &mut Option<BucketRun>, lineno: usize) -> Result<(), String> {
        if let Some(r) = run.take() {
            if !r.terminated {
                return Err(format!(
                    "line {lineno}: bucket run `{}` ended without an le=\"+Inf\" terminal",
                    r.key
                ));
            }
        }
        Ok(())
    }

    let mut declared: Vec<&str> = Vec::new();
    let mut histograms: Vec<&str> = Vec::new();
    let mut samples = 0usize;
    let mut run: Option<BucketRun> = None;
    for (n, line) in text.lines().enumerate() {
        let lineno = n + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            close_run(&mut run, lineno)?;
            let ok = ["HELP ", "TYPE "].iter().any(|kw| rest.starts_with(kw));
            if !ok {
                return Err(format!("line {lineno}: comment is neither HELP nor TYPE"));
            }
            if let Some(decl) = rest.strip_prefix("TYPE ") {
                let mut parts = decl.split_whitespace();
                let name = parts
                    .next()
                    .ok_or(format!("line {lineno}: TYPE without name"))?;
                match parts.next() {
                    Some("histogram") => histograms.push(name),
                    Some("counter") | Some("gauge") | Some("summary") | Some("untyped") => {
                        declared.push(name)
                    }
                    other => {
                        return Err(format!("line {lineno}: bad TYPE kind {other:?}"));
                    }
                }
            }
            continue;
        }
        let name = metric_name(line).ok_or(format!("line {lineno}: sample has no metric name"))?;
        // A histogram family exposes only suffixed series.
        let hist_suffix = ["_bucket", "_sum", "_count"].iter().find_map(|suf| {
            name.strip_suffix(suf)
                .filter(|fam| histograms.contains(fam))
                .map(|_| *suf)
        });
        if !declared.contains(&name) && hist_suffix.is_none() {
            return Err(format!(
                "line {lineno}: sample `{name}` has no TYPE declaration"
            ));
        }
        let rest = &line[name.len()..];
        let (labels, rest) = if let Some(r) = rest.strip_prefix('{') {
            // Walk the label set: key="value" pairs, comma-separated,
            // with backslash escapes inside values.
            let mut chars = r.char_indices();
            let mut in_str = false;
            let mut esc = false;
            let mut close = None;
            for (i, c) in &mut chars {
                if esc {
                    esc = false;
                    continue;
                }
                match c {
                    '\\' if in_str => esc = true,
                    '"' => in_str = !in_str,
                    '}' if !in_str => {
                        close = Some(i);
                        break;
                    }
                    _ => {}
                }
            }
            let close = close.ok_or(format!("line {lineno}: unterminated label set"))?;
            (Some(&r[..close]), &r[close + 1..])
        } else {
            (None, rest)
        };
        let value = rest.trim();
        if value.is_empty() || value.parse::<f64>().is_err() {
            return Err(format!("line {lineno}: bad sample value `{value}`"));
        }
        if hist_suffix == Some("_bucket") {
            let (le, key_labels) = labels
                .and_then(split_le)
                .ok_or(format!("line {lineno}: histogram bucket without le label"))?;
            let cum: f64 = value.parse().unwrap_or(f64::NAN);
            let key = format!("{name}{{{key_labels}}}");
            match &mut run {
                Some(r) if r.key == key => {
                    if r.terminated {
                        return Err(format!(
                            "line {lineno}: bucket after the le=\"+Inf\" terminal in `{key}`"
                        ));
                    }
                    if cum < r.last {
                        return Err(format!(
                            "line {lineno}: non-monotone cumulative bucket in `{key}` ({} -> {cum})",
                            r.last
                        ));
                    }
                    r.last = cum;
                    r.terminated = le == "+Inf";
                }
                _ => {
                    close_run(&mut run, lineno)?;
                    run = Some(BucketRun {
                        key,
                        last: cum,
                        terminated: le == "+Inf",
                    });
                }
            }
        } else {
            close_run(&mut run, lineno)?;
        }
        samples += 1;
    }
    close_run(&mut run, text.lines().count())?;
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> SimTime {
        SimTime::from_nanos(n * 1_000_000)
    }

    fn sample_timeline() -> MetricsTimeline {
        let mut tl = MetricsTimeline::new(SimDuration::from_millis(100), 2);
        tl.record_dispatched(0, ms(10));
        tl.record_completion(0, ms(12), 2_000_000);
        tl.record_stages(0, ms(12), 500_000, 1_200_000, 300_000);
        tl.record_dispatched(0, ms(150));
        tl.record_completion(0, ms(160), 10_000_000);
        tl.record_stages(0, ms(160), 4_000_000, 5_000_000, 1_000_000);
        tl.record_dispatched(1, ms(40));
        tl.record_shed(1, ms(45));
        tl.record_backpressure(1, ms(250));
        tl.record_depth(1, ms(40), 7);
        tl.record_depth(1, ms(41), 3);
        tl
    }

    #[test]
    fn window_shed_merges_lanes_and_peak_finds_the_worst_window() {
        let mut tl = sample_timeline();
        assert_eq!(tl.window_shed(0), 1, "one shed in window 0 (shard 1)");
        assert_eq!(tl.window_shed(1), 0);
        assert_eq!(tl.peak_window_shed(), 1);
        // Pile sheds into window 2 across both lanes; the peak moves.
        for _ in 0..3 {
            tl.record_shed(0, ms(250));
        }
        tl.record_shed(1, ms(260));
        assert_eq!(tl.window_shed(2), 4, "lanes merge window-wise");
        assert_eq!(tl.peak_window_shed(), 4);
        assert_eq!(
            MetricsTimeline::new(SimDuration::from_millis(100), 1).peak_window_shed(),
            0
        );
    }

    #[test]
    fn windows_bucket_by_interval_per_shard() {
        let tl = sample_timeline();
        assert_eq!(tl.shards(), 2);
        assert_eq!(tl.window_count(), 3, "events reach the 200-300 ms window");
        assert_eq!(tl.lane(0)[0].dispatched, 1);
        assert_eq!(tl.lane(0)[1].dispatched, 1);
        assert_eq!(tl.lane(0)[0].completed, 1);
        assert_eq!(tl.lane(1)[0].shed, 1);
        assert_eq!(tl.lane(1)[2].backpressure, 1);
        assert_eq!(tl.lane(1)[0].peak_depth, 7, "depth gauge keeps the max");
        assert_eq!(tl.dispatched_total(), 3);
        assert_eq!(tl.completed_total(), 2);
        assert_eq!(tl.shed_total(), 1);
    }

    #[test]
    fn per_window_quantiles_come_from_the_window_delta() {
        let tl = sample_timeline();
        // Window 0 on shard 0 saw one 2 ms completion; window 1 one 10 ms.
        assert!(tl.lane(0)[0].latency.quantile(0.99) >= 2_000_000);
        assert!(tl.lane(0)[0].latency.quantile(0.99) < 10_000_000);
        assert!(tl.lane(0)[1].latency.quantile(0.5) >= 10_000_000);
        // Merged lane view covers both.
        let h = tl.shard_latency(0);
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn stage_histograms_decompose_the_window_latency() {
        let tl = sample_timeline();
        let w = &tl.lane(0)[0];
        assert_eq!(w.queue_wait.count(), 1);
        assert_eq!(w.service.count(), 1);
        assert_eq!(w.completion_transit.count(), 1);
        // queue_wait + service never exceeds the end-to-end sample.
        assert!(w.queue_wait.max() + w.service.max() <= w.latency.max());
        for stage in Stage::ALL {
            assert_eq!(w.stage(stage).count(), 1);
            let merged = tl.shard_stage_latency(0, stage);
            assert_eq!(merged.count(), 2, "both windows merge for {stage:?}");
            assert_eq!(tl.stage_latency(stage).count(), 2, "lane 1 is empty");
        }
        assert_eq!(Stage::QueueWait.name(), "queue_wait");
        assert_eq!(Stage::Service.name(), "service");
        assert_eq!(Stage::CompletionTransit.name(), "completion_transit");
    }

    #[test]
    fn absorb_merges_window_wise_and_conserves_counts() {
        let mut a = sample_timeline();
        let b = sample_timeline();
        let before = a.dispatched_total();
        a.absorb(&b);
        assert_eq!(a.dispatched_total(), before + b.dispatched_total());
        assert_eq!(a.lane(0)[0].dispatched, 2, "same window adds");
        assert_eq!(a.lane(1)[0].peak_depth, 7, "gauges take the max");
        assert_eq!(a.lane(0)[0].latency.count(), 2, "histogram deltas merge");
        assert_eq!(a.lane(0)[0].queue_wait.count(), 2, "stage deltas merge");
        assert_eq!(a.lane(0)[0].service.count(), 2);
        assert_eq!(a.lane(0)[0].completion_transit.count(), 2);
    }

    #[test]
    #[should_panic(expected = "interval mismatch")]
    fn absorb_rejects_mismatched_intervals() {
        let mut a = MetricsTimeline::new(SimDuration::from_millis(100), 1);
        let b = MetricsTimeline::new(SimDuration::from_millis(50), 1);
        a.absorb(&b);
    }

    #[test]
    fn past_the_cap_samples_clamp_and_count() {
        let mut tl = MetricsTimeline::new(SimDuration::from_nanos(1), 1);
        tl.record_dispatched(0, SimTime::from_nanos(MAX_WINDOWS as u64 + 50));
        assert_eq!(tl.clamped(), 1);
        assert_eq!(tl.window_count(), MAX_WINDOWS);
        assert_eq!(tl.lane(0)[MAX_WINDOWS - 1].dispatched, 1, "not lost");
    }

    #[test]
    fn jsonl_roundtrips_through_own_parser() {
        let tl = sample_timeline();
        let text = tl.to_jsonl("L25GC@0.9x");
        let lines: Vec<&str> = text.lines().collect();
        // Both lanes padded to the longest-touched window on export? No:
        // lanes export their own length; shard 0 has 2 windows, shard 1
        // has 3, plus the meta line.
        assert_eq!(lines.len(), 2 + 3 + 1);
        let mut dispatched = 0;
        for line in &lines {
            let parsed = parse_timeline_jsonl_line(line).expect("line parses");
            assert_eq!(json::to_string(&parsed.to_value()), *line, "round trip");
            if let TimelineLine::Window { dispatched: d, .. } = parsed {
                dispatched += d;
            }
        }
        assert_eq!(dispatched, tl.dispatched_total());
        match parse_timeline_jsonl_line(lines.last().unwrap()).unwrap() {
            TimelineLine::Meta {
                series,
                interval_ns,
                shards,
                windows,
                clamped,
                dispatcher_busy_ns,
                dispatcher_wall_ns,
            } => {
                assert_eq!(series, "L25GC@0.9x");
                assert_eq!(interval_ns, 100_000_000);
                assert_eq!(shards, 2);
                assert_eq!(windows, 3);
                assert_eq!(clamped, 0);
                assert_eq!(dispatcher_busy_ns, 0);
                assert_eq!(dispatcher_wall_ns, 0);
            }
            other => panic!("expected meta, got {other:?}"),
        }
        assert_eq!(
            parse_timeline_jsonl_line("{\"t\":\"mystery\"}"),
            Err(JsonlError::BadShape)
        );
    }

    #[test]
    fn csv_has_one_row_per_window() {
        let mut tl = sample_timeline();
        tl.record_busy(0, ms(10), ms(20));
        let text = tl.to_csv("s");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], timeline_csv_header().trim_end());
        assert_eq!(lines.len(), 1 + 2 + 3);
        assert!(lines[1].starts_with("s,0,0,0,1,1,0,0,"));
        assert!(
            lines[1].ends_with(",10000000,0,0,0,0,0"),
            "duty-cycle and batch columns trail the row: {}",
            lines[1]
        );
    }

    #[test]
    fn busy_spans_overlap_split_across_windows() {
        let mut tl = MetricsTimeline::new(SimDuration::from_millis(100), 1);
        // 70 ms..230 ms crosses two window boundaries.
        tl.record_busy(0, ms(70), ms(230));
        assert_eq!(tl.lane(0)[0].busy_ns, 30_000_000);
        assert_eq!(tl.lane(0)[1].busy_ns, 100_000_000);
        assert_eq!(tl.lane(0)[2].busy_ns, 30_000_000);
        // Occupancy integrates independently and counts overlap twice.
        tl.record_occupancy(0, ms(0), ms(100));
        tl.record_occupancy(0, ms(50), ms(100));
        assert_eq!(tl.lane(0)[0].occupancy_ns, 150_000_000);
        assert_eq!(tl.lane(0)[0].busy_ns, 30_000_000, "buckets are disjoint");
        // Empty and inverted spans record nothing.
        tl.record_busy(0, ms(5), ms(5));
        assert_eq!(tl.lane(0)[0].busy_ns, 30_000_000);
    }

    #[test]
    fn finalize_idle_tiles_every_window_exactly() {
        let mut tl = MetricsTimeline::new(SimDuration::from_millis(100), 2);
        tl.record_busy(0, ms(70), ms(230));
        // Horizon 250 ms: three windows, the last partial (50 ms).
        let horizon = SimDuration::from_millis(250);
        tl.finalize_idle(0, horizon, 0.25);
        tl.finalize_idle(1, horizon, 0.0);
        for shard in 0..2 {
            let lane = tl.lane(shard);
            assert_eq!(lane.len(), 3, "windows materialise up to the horizon");
            for (i, w) in lane.iter().enumerate() {
                let len = if i == 2 { 50_000_000 } else { 100_000_000 };
                assert_eq!(
                    w.busy_ns + w.blocked_ns + w.parked_ns,
                    len,
                    "shard {shard} window {i} tiles"
                );
            }
        }
        // The parked ratio splits only the idle remainder.
        let w = &tl.lane(0)[0];
        assert_eq!(w.busy_ns, 30_000_000);
        assert_eq!(w.parked_ns, 17_500_000, "25% of the 70 ms idle");
        assert_eq!(w.blocked_ns, 52_500_000);
        // The all-blocked shard parks nothing.
        assert!(tl.lane(1).iter().all(|w| w.parked_ns == 0));
        // Utilization: shard 0 was busy 160 ms of its 300 ms span.
        let u = tl.shard_utilization(0);
        assert!((u - 160.0 / 300.0).abs() < 1e-9, "{u}");
        assert_eq!(tl.shard_utilization(1), 0.0);
    }

    #[test]
    fn absorb_adds_duty_cycles_and_dispatcher_time() {
        let mut a = MetricsTimeline::new(SimDuration::from_millis(100), 1);
        a.record_busy(0, ms(0), ms(40));
        a.record_dispatcher_utilization(3, 10);
        let mut b = MetricsTimeline::new(SimDuration::from_millis(100), 1);
        b.record_busy(0, ms(20), ms(60));
        b.record_occupancy(0, ms(0), ms(10));
        b.record_dispatcher_utilization(5, 10);
        a.absorb(&b);
        assert_eq!(a.lane(0)[0].busy_ns, 80_000_000);
        assert_eq!(a.lane(0)[0].occupancy_ns, 10_000_000);
        assert_eq!(a.dispatcher_busy_ns(), 8);
        assert_eq!(a.dispatcher_wall_ns(), 20);
        assert!((a.dispatcher_utilization() - 0.4).abs() < 1e-9);
    }

    #[test]
    fn outage_samples_validate_and_flag_down_shards() {
        let text = format!(
            "{}{}",
            prometheus_header(),
            shard_outage_samples("amf-restart/queue", &[true, false])
        );
        validate_prometheus(&text).expect("outage exposition validates");
        assert!(text.contains("l25gc_shard_outage{series=\"amf-restart/queue\",shard=\"0\"} 1"));
        assert!(text.contains("l25gc_shard_outage{series=\"amf-restart/queue\",shard=\"1\"} 0"));
    }

    #[test]
    fn prometheus_output_validates_and_sums_match() {
        let tl = sample_timeline();
        let text = tl.to_prometheus("free5GC@1x");
        let samples = validate_prometheus(&text).expect("exposition is well-formed");
        // 8+ samples per shard (4 counters + peak + 3 quantiles) plus the
        // per-stage histogram series — count structurally, not exactly.
        assert!(samples >= 2 * 8 + 2, "got {samples}");
        assert!(text.contains("l25gc_dispatched_total{series=\"free5GC@1x\",shard=\"0\"} 2"));
        assert!(text.contains("l25gc_shed_total{series=\"free5GC@1x\",shard=\"1\"} 1"));
        // Per-stage histograms expose conformant series: a +Inf terminal
        // bucket and matching _sum/_count per (shard, stage).
        for stage in ["queue_wait", "service", "completion_transit"] {
            let labels = format!("series=\"free5GC@1x\",shard=\"0\",stage=\"{stage}\"");
            assert!(
                text.contains(&format!(
                    "l25gc_stage_latency_ns_bucket{{{labels},le=\"+Inf\"}} 2"
                )),
                "{stage} terminal bucket"
            );
            assert!(text.contains(&format!("l25gc_stage_latency_ns_count{{{labels}}} 2")));
        }
        let qw_sum = format!(
            "l25gc_stage_latency_ns_sum{{series=\"free5GC@1x\",shard=\"0\",stage=\"queue_wait\"}} {}",
            500_000 + 4_000_000
        );
        assert!(text.contains(&qw_sum), "exact stage sum");
        // Empty lanes still emit a terminated (all-zero) histogram.
        assert!(text.contains(
            "l25gc_stage_latency_ns_bucket{series=\"free5GC@1x\",shard=\"1\",stage=\"service\",le=\"+Inf\"} 0"
        ));
    }

    #[test]
    fn batch_lanes_flow_through_every_exporter() {
        let mut tl = MetricsTimeline::new(SimDuration::from_millis(100), 2);
        tl.record_batch_flush(0, ms(10), 32);
        tl.record_batch_flush(0, ms(150), 1);
        tl.record_batch_flush(1, ms(20), 8);
        assert_eq!(tl.batch_flush_total(), 3);
        assert_eq!(tl.batch_events_total(), 41);
        assert_eq!(tl.batch_fill().count(), 3);
        assert_eq!(tl.batch_fill().sum(), 41);

        // Absorb merges both the window counters and the fill histogram.
        let mut merged = MetricsTimeline::new(SimDuration::from_millis(100), 2);
        merged.absorb(&tl);
        merged.absorb(&tl);
        assert_eq!(merged.batch_events_total(), 82);
        assert_eq!(merged.batch_fill().count(), 6);

        // CSV: the two batch columns land in the right windows.
        let csv = tl.to_csv("b");
        assert!(
            csv.lines()
                .any(|l| l.starts_with("b,0,0,") && l.ends_with(",1,32")),
            "shard 0 window 0 carries the 32-burst: {csv}"
        );
        assert!(csv
            .lines()
            .any(|l| l.starts_with("b,0,1,") && l.ends_with(",1,1")));

        // JSONL round-trips the new fields; a legacy line without them
        // still parses, defaulting both to zero.
        let text = tl.to_jsonl("b");
        let first = text.lines().next().unwrap();
        match parse_timeline_jsonl_line(first).unwrap() {
            TimelineLine::Window {
                batch_flushes,
                batch_events,
                ..
            } => {
                assert_eq!(batch_flushes, 1);
                assert_eq!(batch_events, 32);
            }
            other => panic!("expected window, got {other:?}"),
        }
        let legacy = first.replace(",\"batch_flushes\":1,\"batch_events\":32", "");
        assert_ne!(legacy, *first, "fields were present to strip");
        match parse_timeline_jsonl_line(&legacy).unwrap() {
            TimelineLine::Window {
                batch_flushes,
                batch_events,
                ..
            } => {
                assert_eq!(batch_flushes, 0, "legacy lines default to zero");
                assert_eq!(batch_events, 0);
            }
            other => panic!("expected window, got {other:?}"),
        }

        // Prometheus: per-shard counters plus a conformant run-wide
        // fill histogram.
        let prom = tl.to_prometheus("b");
        validate_prometheus(&prom).expect("well-formed with batch lanes");
        assert!(prom.contains("l25gc_dispatch_batch_flushes_total{series=\"b\",shard=\"0\"} 2"));
        assert!(prom.contains("l25gc_dispatch_batch_events_total{series=\"b\",shard=\"1\"} 8"));
        assert!(prom.contains("l25gc_dispatch_batch_fill_bucket{series=\"b\",le=\"+Inf\"} 3"));
        assert!(prom.contains("l25gc_dispatch_batch_fill_sum{series=\"b\"} 41"));
        assert!(prom.contains("l25gc_dispatch_batch_fill_count{series=\"b\"} 3"));
    }

    #[test]
    fn prometheus_validator_rejects_malformed_lines() {
        assert!(validate_prometheus("no_type_decl{a=\"b\"} 1").is_err());
        assert!(validate_prometheus("# TYPE x counter\nx{unterminated 1").is_err());
        assert!(validate_prometheus("# TYPE x counter\nx{a=\"b\"} not_a_number").is_err());
        assert!(validate_prometheus("# bogus comment").is_err());
        let ok = "# HELP x help text\n# TYPE x gauge\nx{a=\"quoted \\\"v\\\"\"} 1.5\nx 2\n";
        assert_eq!(validate_prometheus(ok), Ok(2));
    }

    #[test]
    fn prometheus_validator_enforces_histogram_conformance() {
        let head = "# TYPE h histogram\n";
        // A well-formed run: monotone cumulative buckets, +Inf terminal,
        // then _sum and _count.
        let ok = format!(
            "{head}h_bucket{{le=\"1\"}} 1\nh_bucket{{le=\"4\"}} 3\n\
             h_bucket{{le=\"+Inf\"}} 3\nh_sum 6\nh_count 3\n"
        );
        assert_eq!(validate_prometheus(&ok), Ok(5));
        // Two runs with distinct label sets both validate.
        let ok2 = format!(
            "{head}h_bucket{{s=\"a\",le=\"1\"}} 1\nh_bucket{{s=\"a\",le=\"+Inf\"}} 1\n\
             h_bucket{{s=\"b\",le=\"+Inf\"}} 0\n"
        );
        assert_eq!(validate_prometheus(&ok2), Ok(3));
        // Non-monotone cumulative counts are rejected.
        let bad = format!(
            "{head}h_bucket{{le=\"1\"}} 5\nh_bucket{{le=\"4\"}} 3\nh_bucket{{le=\"+Inf\"}} 5\n"
        );
        let err = validate_prometheus(&bad).unwrap_err();
        assert!(err.contains("non-monotone"), "{err}");
        // A run must terminate with +Inf — whether closed by another
        // series, by a label-set change, or by end of input.
        let bad = format!("{head}h_bucket{{le=\"1\"}} 1\nh_count 1\n");
        assert!(validate_prometheus(&bad).unwrap_err().contains("+Inf"));
        let bad =
            format!("{head}h_bucket{{s=\"a\",le=\"1\"}} 1\nh_bucket{{s=\"b\",le=\"+Inf\"}} 0\n");
        assert!(validate_prometheus(&bad).unwrap_err().contains("+Inf"));
        let bad = format!("{head}h_bucket{{le=\"1\"}} 1\n");
        assert!(validate_prometheus(&bad).unwrap_err().contains("+Inf"));
        // Buckets need an le label; bare family names are undeclared.
        let bad = format!("{head}h_bucket{{a=\"b\"}} 1\n");
        assert!(validate_prometheus(&bad).unwrap_err().contains("le label"));
        let bad = format!("{head}h 1\n");
        assert!(validate_prometheus(&bad)
            .unwrap_err()
            .contains("no TYPE declaration"));
        // Nothing may follow the terminal inside the same run.
        let bad = format!("{head}h_bucket{{le=\"+Inf\"}} 2\nh_bucket{{le=\"9\"}} 2\n");
        assert!(validate_prometheus(&bad).unwrap_err().contains("terminal"));
    }
}
