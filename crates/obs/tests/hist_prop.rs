//! Property tests for the log2 histogram: the quantile error bound and
//! merge/concatenation equivalence on arbitrary sample sets.

use l25gc_obs::hist::{Log2Histogram, DEFAULT_BITS};
use proptest::prelude::*;

/// Exact nearest-rank quantile over a sorted copy.
fn exact_quantile(samples: &[u64], q: f64) -> u64 {
    let mut v = samples.to_vec();
    v.sort_unstable();
    let rank = ((q * v.len() as f64).ceil() as usize).max(1);
    v[rank.min(v.len()) - 1]
}

proptest! {
    /// `exact <= est <= exact + (exact >> bits)` for every quantile, on
    /// arbitrary samples spanning the full u64 range.
    #[test]
    fn quantile_error_is_bounded(
        samples in proptest::collection::vec(any::<u64>(), 1..400),
        q in 0.0f64..1.0,
    ) {
        let mut h = Log2Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let exact = exact_quantile(&samples, q);
        let est = h.quantile(q);
        prop_assert!(est >= exact, "q={} est={} exact={}", q, est, exact);
        prop_assert!(
            est - exact <= exact >> DEFAULT_BITS,
            "q={} est={} exact={}", q, est, exact
        );
    }

    /// Merging two histograms equals recording the concatenated stream.
    #[test]
    fn merge_is_concatenation(
        xs in proptest::collection::vec(any::<u64>(), 0..200),
        ys in proptest::collection::vec(any::<u64>(), 0..200),
    ) {
        let mut a = Log2Histogram::new();
        let mut b = Log2Histogram::new();
        let mut both = Log2Histogram::new();
        for &v in &xs {
            a.record(v);
            both.record(v);
        }
        for &v in &ys {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        prop_assert_eq!(a, both);
    }
}
