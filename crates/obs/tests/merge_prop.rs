//! Property tests for the merge algebra: `HistogramSet::absorb`,
//! `FlightRecorder::absorb`, `MetricsTimeline::absorb`, and
//! `Obs::absorb` must commute (up to ordering artifacts), associate, and
//! lose no counts — including the flight recorder's overwritten-event
//! accounting and the span log's dropped counts. This is what makes the
//! threaded backend's merge-at-join step equivalent to having recorded
//! everything in one place.

use l25gc_obs::timeline::MetricsTimeline;
use l25gc_obs::{EventKind, FlightRecorder, HistogramSet, Obs, ProcKind};
use l25gc_sim::{SimDuration, SimTime};
use proptest::prelude::*;

const NAMES: [&str; 4] = ["registration", "handover", "paging", "capacity_all"];
const PROCS: [ProcKind; 3] = [ProcKind::Registration, ProcKind::Handover, ProcKind::Paging];

/// One recording action replayed into a bundle — a compressed stand-in
/// for what a driver worker does on its hot path.
#[derive(Debug, Clone)]
enum Action {
    Hist {
        name: usize,
        v: u64,
    },
    Event {
        at: u64,
        value: u64,
    },
    Span {
        kind: usize,
        ue: u64,
        start: u64,
        dur: u64,
    },
}

fn action() -> impl Strategy<Value = Action> {
    prop_oneof![
        (0..NAMES.len(), any::<u64>()).prop_map(|(name, v)| Action::Hist { name, v }),
        (0u64..1_000, any::<u64>()).prop_map(|(at, value)| Action::Event { at, value }),
        (0..PROCS.len(), 0u64..100, 0u64..1_000, 0u64..1_000).prop_map(|(kind, ue, start, dur)| {
            Action::Span {
                kind,
                ue,
                start,
                dur,
            }
        }),
    ]
}

/// A small bundle (tight flight/span bounds so overwrite and drop
/// accounting is actually exercised) with `actions` replayed into it.
fn bundle(actions: &[Action]) -> Obs {
    let mut obs = Obs {
        flight: FlightRecorder::new(8),
        spans: l25gc_obs::SpanLog::with_capacity(4, 4),
        hists: HistogramSet::new(),
    };
    for a in actions {
        match *a {
            Action::Hist { name, v } => obs.hists.record(NAMES[name], v),
            Action::Event { at, value } => obs.event(
                SimTime::from_nanos(at),
                EventKind::Gauge {
                    name: "depth",
                    value,
                },
            ),
            Action::Span {
                kind,
                ue,
                start,
                dur,
            } => obs.spans.record_completed(
                PROCS[kind],
                ue,
                SimTime::from_nanos(start),
                SimTime::from_nanos(start + dur),
            ),
        }
    }
    obs
}

/// Everything an `Obs` has accounted for: histogram counts, events held
/// plus overwritten, spans/segments held plus dropped.
fn totals(o: &Obs) -> (u64, u64, u64) {
    let hist: u64 = o.hists.iter().map(|(_, h)| h.count()).sum();
    let events = o.flight.len() as u64 + o.flight.dropped();
    let spans = o.spans.spans().len() as u64
        + o.spans.dropped_spans()
        + o.spans.segments().len() as u64
        + o.spans.dropped_segments();
    (hist, events, spans)
}

fn actions() -> impl Strategy<Value = Vec<Action>> {
    proptest::collection::vec(action(), 0..40)
}

proptest! {
    /// Absorbing loses no accounting: every count in `b` — recorded or
    /// explicitly dropped — shows up in `a` afterwards.
    #[test]
    fn obs_absorb_conserves_all_counts(xs in actions(), ys in actions()) {
        let mut a = bundle(&xs);
        let b = bundle(&ys);
        let (ah, ae, asp) = totals(&a);
        let (bh, be, bsp) = totals(&b);
        a.absorb(&b);
        let (h, e, s) = totals(&a);
        prop_assert_eq!(h, ah + bh, "histogram counts conserved");
        prop_assert_eq!(e, ae + be, "event held+overwritten conserved");
        prop_assert_eq!(s, asp + bsp, "span/segment held+dropped conserved");
    }

    /// `HistogramSet::absorb` commutes up to creation order: for every
    /// name the merged histograms are identical whichever side absorbs.
    #[test]
    fn histogram_set_absorb_commutes(xs in actions(), ys in actions()) {
        let mut ab = bundle(&xs).hists;
        ab.absorb(&bundle(&ys).hists);
        let mut ba = bundle(&ys).hists;
        ba.absorb(&bundle(&xs).hists);
        for (name, h) in ab.iter() {
            prop_assert_eq!(Some(h), ba.get(name), "name {}", name);
        }
        prop_assert_eq!(ab.iter().count(), ba.iter().count());
    }

    /// `HistogramSet::absorb` associates: (a+b)+c == a+(b+c), including
    /// creation order (left-to-right first-seen in both groupings).
    #[test]
    fn histogram_set_absorb_associates(
        xs in actions(), ys in actions(), zs in actions(),
    ) {
        let (a, b, c) = (bundle(&xs).hists, bundle(&ys).hists, bundle(&zs).hists);
        let mut left = a.clone();
        left.absorb(&b);
        left.absorb(&c);
        let mut bc = b;
        bc.absorb(&c);
        let mut right = a;
        right.absorb(&bc);
        prop_assert_eq!(left, right);
    }

    /// Full-bundle absorb associates on the exact-state level for
    /// histograms, and on the accounting level for the bounded
    /// flight/span structures (where (a+b)+c and a+(b+c) may keep
    /// different *individual* events but must account for the same
    /// totals).
    #[test]
    fn obs_absorb_associates(xs in actions(), ys in actions(), zs in actions()) {
        let mut left = bundle(&xs);
        left.absorb(&bundle(&ys));
        left.absorb(&bundle(&zs));
        let mut bc = bundle(&ys);
        bc.absorb(&bundle(&zs));
        let mut right = bundle(&xs);
        right.absorb(&bc);
        prop_assert_eq!(left.hists, right.hists);
        prop_assert_eq!(totals(&left), totals(&right));
    }

    /// Timeline absorb is window-wise addition: dispatch/completion
    /// totals add, per-stage histograms merge, and splitting a stream
    /// across two timelines then merging equals recording it all in one.
    #[test]
    fn timeline_absorb_equals_single_recorder(
        events in proptest::collection::vec(
            (0u64..2_000_000_000, 0u16..4, 0u64..50_000_000), 0..60),
        split in 0usize..60,
    ) {
        let interval = SimDuration::from_millis(100);
        let mut one = MetricsTimeline::new(interval, 4);
        let mut a = MetricsTimeline::new(interval, 4);
        let mut b = MetricsTimeline::new(interval, 4);
        let split = split.min(events.len());
        for (i, &(at_ns, shard, lat)) in events.iter().enumerate() {
            let at = SimTime::from_nanos(at_ns);
            // Decompose the end-to-end latency into stages that tile it.
            let (qw, svc) = (lat / 3, lat / 2);
            let transit = lat - qw - svc;
            let part = if i < split { &mut a } else { &mut b };
            one.record_dispatched(shard, at);
            part.record_dispatched(shard, at);
            one.record_completion(shard, at, lat);
            part.record_completion(shard, at, lat);
            one.record_stages(shard, at, qw, svc, transit);
            part.record_stages(shard, at, qw, svc, transit);
        }
        a.absorb(&b);
        prop_assert_eq!(&a, &one, "merged halves equal the single recorder");
        prop_assert_eq!(a.dispatched_total(), events.len() as u64);
        for stage in l25gc_obs::Stage::ALL {
            prop_assert_eq!(
                a.stage_latency(stage).count(),
                events.len() as u64,
                "stage {:?} conserves counts",
                stage
            );
        }
    }

    /// Per-stage histogram merge commutes: absorbing a into b and b into
    /// a leaves identical per-window stage histograms.
    #[test]
    fn timeline_stage_absorb_commutes(
        xs in proptest::collection::vec(
            (0u64..1_000_000_000, 0u16..2, 0u64..10_000_000), 0..30),
        ys in proptest::collection::vec(
            (0u64..1_000_000_000, 0u16..2, 0u64..10_000_000), 0..30),
    ) {
        let interval = SimDuration::from_millis(100);
        let fill = |events: &[(u64, u16, u64)]| {
            let mut tl = MetricsTimeline::new(interval, 2);
            for &(at_ns, shard, lat) in events {
                let at = SimTime::from_nanos(at_ns);
                tl.record_completion(shard, at, lat);
                tl.record_stages(shard, at, lat / 4, lat / 2, lat / 4);
            }
            tl
        };
        let mut ab = fill(&xs);
        ab.absorb(&fill(&ys));
        let mut ba = fill(&ys);
        ba.absorb(&fill(&xs));
        prop_assert_eq!(ab, ba);
    }
}
