//! Property tests for the SLO engine: widening the budget — higher p99
//! budget, higher shed budget, or both — can only shrink the violated
//! window set, so recovery time is monotone non-increasing (treating
//! "never recovered" as infinite), and burn rates never increase.

use l25gc_obs::slo::{evaluate, SloSpec};
use l25gc_obs::MetricsTimeline;
use l25gc_sim::{SimDuration, SimTime};
use proptest::prelude::*;

/// A synthetic per-window workload: (completion latency ns, shed count).
fn workload() -> impl Strategy<Value = Vec<(u64, u8)>> {
    proptest::collection::vec((0u64..40_000_000, 0u8..4), 1..40)
}

/// Replays one latency sample and `shed` sheds into each window.
fn timeline(windows: &[(u64, u8)]) -> MetricsTimeline {
    let interval = SimDuration::from_millis(100);
    let mut tl = MetricsTimeline::new(interval, 2);
    for (w, &(lat, shed)) in windows.iter().enumerate() {
        let at = SimTime::from_nanos(w as u64 * interval.as_nanos() + 1);
        let shard = (w % 2) as u16;
        tl.record_dispatched(shard, at);
        tl.record_completion(shard, at, lat);
        for _ in 0..shed {
            tl.record_shed(shard, at);
        }
    }
    tl
}

/// `None` (never recovered) orders above every finite recovery.
fn as_ord(recovery: Option<u64>) -> u64 {
    recovery.unwrap_or(u64::MAX)
}

proptest! {
    /// Widening both budgets never worsens recovery, never grows the
    /// violated set, and never raises any window's burn rate.
    #[test]
    fn recovery_is_monotone_under_budget_widening(
        windows in workload(),
        p99_budget in 1_000_000u64..20_000_000,
        widen_p99 in 0u64..30_000_000,
        shed_budget in 0.0f64..50.0,
        widen_shed in 0.0f64..50.0,
    ) {
        let tl = timeline(&windows);
        let tight = SloSpec { p99_budget_ns: p99_budget, shed_budget_pct: shed_budget, clean_windows: 2 };
        let wide = SloSpec {
            p99_budget_ns: p99_budget + widen_p99,
            shed_budget_pct: shed_budget + widen_shed,
            clean_windows: 2,
        };
        let rt = evaluate(&tl, &tight);
        let rw = evaluate(&tl, &wide);
        prop_assert!(
            as_ord(rw.recovery_windows) <= as_ord(rt.recovery_windows),
            "widening {:?} -> {:?} grew recovery {:?} -> {:?}",
            tight, wide, rt.recovery_windows, rw.recovery_windows
        );
        prop_assert!(rw.violating_windows <= rt.violating_windows);
        for (t, w) in rt.windows.iter().zip(&rw.windows) {
            // A window violating the wide spec violates the tight one.
            prop_assert!(!w.violated || t.violated);
            prop_assert!(w.burn_rate <= t.burn_rate || t.burn_rate.is_infinite());
        }
    }

    /// The violation spans partition the violated windows: disjoint,
    /// ordered, contiguous runs whose members are exactly the violated
    /// verdicts; and a clean tail of at least `clean_windows` is what
    /// separates recovered from unrecovered.
    #[test]
    fn spans_tile_the_violated_set(windows in workload(), clean in 1u32..5) {
        let tl = timeline(&windows);
        let spec = SloSpec { p99_budget_ns: 5_000_000, shed_budget_pct: 1.0, clean_windows: clean };
        let report = evaluate(&tl, &spec);
        let mut from_spans = vec![false; report.window_count];
        let mut prev_last: Option<usize> = None;
        for s in &report.spans {
            prop_assert!(s.first <= s.last && s.last < report.window_count);
            if let Some(p) = prev_last {
                prop_assert!(s.first > p + 1, "spans are maximal and disjoint");
            }
            for slot in &mut from_spans[s.first..=s.last] {
                *slot = true;
            }
            prev_last = Some(s.last);
        }
        for v in &report.windows {
            prop_assert_eq!(v.violated, from_spans[v.window]);
        }
        match report.spans.last() {
            None => prop_assert_eq!(report.recovery_windows, Some(0)),
            Some(last) => {
                let clean_tail = report.window_count - 1 - last.last;
                let expected = (clean_tail >= clean as usize).then(|| {
                    (last.last - report.spans[0].first + 1) as u64
                });
                prop_assert_eq!(report.recovery_windows, expected);
            }
        }
    }
}
