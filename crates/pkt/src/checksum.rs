//! RFC 1071 Internet checksum, used by IPv4, UDP and TCP.

/// One's-complement sum over `data`, folded to 16 bits, starting from
/// `initial` (an already-folded partial sum, e.g. over a pseudo-header).
pub fn sum(initial: u32, data: &[u8]) -> u32 {
    let mut acc = initial;
    let mut chunks = data.chunks_exact(2);
    for chunk in &mut chunks {
        acc += u32::from(u16::from_be_bytes([chunk[0], chunk[1]]));
    }
    if let [last] = chunks.remainder() {
        acc += u32::from(u16::from_be_bytes([*last, 0]));
    }
    acc
}

/// Folds a 32-bit accumulator into a final 16-bit checksum value.
pub fn finish(mut acc: u32) -> u16 {
    while acc > 0xffff {
        acc = (acc & 0xffff) + (acc >> 16);
    }
    !(acc as u16)
}

/// Computes the checksum of `data` directly.
pub fn checksum(data: &[u8]) -> u16 {
    finish(sum(0, data))
}

/// Partial sum of the IPv4 pseudo-header used by UDP and TCP.
pub fn pseudo_header_v4(src: [u8; 4], dst: [u8; 4], protocol: u8, length: u16) -> u32 {
    let mut acc = 0u32;
    acc += u32::from(u16::from_be_bytes([src[0], src[1]]));
    acc += u32::from(u16::from_be_bytes([src[2], src[3]]));
    acc += u32::from(u16::from_be_bytes([dst[0], dst[1]]));
    acc += u32::from(u16::from_be_bytes([dst[2], dst[3]]));
    acc += u32::from(protocol);
    acc += u32::from(length);
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_example() {
        // Example from RFC 1071 §3: {0x0001, 0xf203, 0xf4f5, 0xf6f7}.
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(checksum(&data), !0xddf2);
    }

    #[test]
    fn odd_length_pads_with_zero() {
        assert_eq!(checksum(&[0xab]), finish(sum(0, &[0xab, 0x00])));
    }

    #[test]
    fn verifying_a_packet_including_its_checksum_yields_zero() {
        let mut data = vec![
            0x45, 0x00, 0x00, 0x1c, 0x00, 0x00, 0x00, 0x00, 0x40, 0x11, 0, 0,
        ];
        let c = checksum(&data);
        data[10..12].copy_from_slice(&c.to_be_bytes());
        assert_eq!(checksum(&data), 0);
    }

    #[test]
    fn empty_checksum_is_all_ones() {
        assert_eq!(checksum(&[]), 0xffff);
    }
}
