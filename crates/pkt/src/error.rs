//! Parse and emit errors shared by all wire formats in this crate.

use core::fmt;

/// Why a byte slice failed to parse as (or emit into) a given format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Error {
    /// The buffer is shorter than the fixed header, or shorter than a
    /// length field inside the header claims.
    Truncated,
    /// A version field holds a value this implementation does not speak.
    BadVersion,
    /// A field holds a value that is structurally invalid (bad length
    /// field, unknown mandatory IE, reserved bits set where forbidden).
    Malformed,
    /// A checksum did not verify.
    BadChecksum,
    /// The message type is not one this implementation understands.
    UnknownType,
    /// The output buffer is too small for the value being emitted.
    BufferTooSmall,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Error::Truncated => "buffer truncated",
            Error::BadVersion => "unsupported protocol version",
            Error::Malformed => "malformed field",
            Error::BadChecksum => "checksum mismatch",
            Error::UnknownType => "unknown message type",
            Error::BufferTooSmall => "output buffer too small",
        };
        f.write_str(s)
    }
}

impl std::error::Error for Error {}

/// Crate-wide result alias.
pub type Result<T> = core::result::Result<T, Error>;
