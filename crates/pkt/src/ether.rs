//! Ethernet II frames.
//!
//! [`Frame`] is a zero-copy view over any `AsRef<[u8]>`; setters are
//! available when the storage is also `AsMut<[u8]>` — the smoltcp idiom.

use crate::error::{Error, Result};
use core::fmt;

/// A MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);

    /// True for the broadcast address.
    pub fn is_broadcast(&self) -> bool {
        *self == Self::BROADCAST
    }

    /// True if the group bit (LSB of first octet) is set.
    pub fn is_multicast(&self) -> bool {
        self.0[0] & 0x01 != 0
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            b[0], b[1], b[2], b[3], b[4], b[5]
        )
    }
}

/// EtherType values this workspace uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EtherType {
    /// IPv4 (`0x0800`).
    Ipv4,
    /// ARP (`0x0806`).
    Arp,
    /// Anything else, carried verbatim.
    Other(u16),
}

impl From<u16> for EtherType {
    fn from(v: u16) -> Self {
        match v {
            0x0800 => EtherType::Ipv4,
            0x0806 => EtherType::Arp,
            other => EtherType::Other(other),
        }
    }
}

impl From<EtherType> for u16 {
    fn from(v: EtherType) -> u16 {
        match v {
            EtherType::Ipv4 => 0x0800,
            EtherType::Arp => 0x0806,
            EtherType::Other(o) => o,
        }
    }
}

/// Length of the Ethernet II header.
pub const HEADER_LEN: usize = 14;

/// A zero-copy view of an Ethernet II frame.
#[derive(Debug, Clone)]
pub struct Frame<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Frame<T> {
    /// Wraps a buffer without length validation.
    pub fn new_unchecked(buffer: T) -> Frame<T> {
        Frame { buffer }
    }

    /// Wraps a buffer, checking it is long enough for the header.
    pub fn new_checked(buffer: T) -> Result<Frame<T>> {
        if buffer.as_ref().len() < HEADER_LEN {
            return Err(Error::Truncated);
        }
        Ok(Frame { buffer })
    }

    /// Consumes the view, returning the underlying buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// Destination MAC address.
    pub fn dst(&self) -> MacAddr {
        let b = self.buffer.as_ref();
        MacAddr([b[0], b[1], b[2], b[3], b[4], b[5]])
    }

    /// Source MAC address.
    pub fn src(&self) -> MacAddr {
        let b = self.buffer.as_ref();
        MacAddr([b[6], b[7], b[8], b[9], b[10], b[11]])
    }

    /// EtherType of the payload.
    pub fn ethertype(&self) -> EtherType {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[12], b[13]]).into()
    }

    /// The payload following the header.
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[HEADER_LEN..]
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Frame<T> {
    /// Sets the destination MAC address.
    pub fn set_dst(&mut self, addr: MacAddr) {
        self.buffer.as_mut()[0..6].copy_from_slice(&addr.0);
    }

    /// Sets the source MAC address.
    pub fn set_src(&mut self, addr: MacAddr) {
        self.buffer.as_mut()[6..12].copy_from_slice(&addr.0);
    }

    /// Sets the EtherType.
    pub fn set_ethertype(&mut self, ty: EtherType) {
        self.buffer.as_mut()[12..14].copy_from_slice(&u16::from(ty).to_be_bytes());
    }

    /// Mutable access to the payload.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        &mut self.buffer.as_mut()[HEADER_LEN..]
    }
}

/// A parsed, owned representation of the header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Repr {
    /// Destination MAC.
    pub dst: MacAddr,
    /// Source MAC.
    pub src: MacAddr,
    /// Payload EtherType.
    pub ethertype: EtherType,
}

impl Repr {
    /// Parses the header of `frame`.
    pub fn parse<T: AsRef<[u8]>>(frame: &Frame<T>) -> Repr {
        Repr {
            dst: frame.dst(),
            src: frame.src(),
            ethertype: frame.ethertype(),
        }
    }

    /// Bytes this header occupies.
    pub const fn header_len(&self) -> usize {
        HEADER_LEN
    }

    /// Writes the header into `frame`.
    pub fn emit<T: AsRef<[u8]> + AsMut<[u8]>>(&self, frame: &mut Frame<T>) {
        frame.set_dst(self.dst);
        frame.set_src(self.src);
        frame.set_ethertype(self.ethertype);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let repr = Repr {
            dst: MacAddr([1, 2, 3, 4, 5, 6]),
            src: MacAddr([7, 8, 9, 10, 11, 12]),
            ethertype: EtherType::Ipv4,
        };
        let mut buf = [0u8; HEADER_LEN + 4];
        let mut f = Frame::new_unchecked(&mut buf[..]);
        repr.emit(&mut f);
        f.payload_mut().copy_from_slice(b"abcd");
        let f = Frame::new_checked(&buf[..]).unwrap();
        assert_eq!(Repr::parse(&f), repr);
        assert_eq!(f.payload(), b"abcd");
    }

    #[test]
    fn short_buffer_rejected() {
        assert_eq!(
            Frame::new_checked(&[0u8; 13][..]).unwrap_err(),
            Error::Truncated
        );
    }

    #[test]
    fn ethertype_mapping() {
        assert_eq!(u16::from(EtherType::Ipv4), 0x0800);
        assert_eq!(EtherType::from(0x0806), EtherType::Arp);
        assert_eq!(EtherType::from(0x1234), EtherType::Other(0x1234));
    }

    #[test]
    fn mac_predicates() {
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert!(MacAddr([0x01, 0, 0x5e, 0, 0, 1]).is_multicast());
        assert!(!MacAddr([0x02, 0, 0, 0, 0, 1]).is_broadcast());
        assert_eq!(
            format!("{}", MacAddr([0xde, 0xad, 0xbe, 0xef, 0, 1])),
            "de:ad:be:ef:00:01"
        );
    }
}
