//! GTP-U (GPRS Tunnelling Protocol, user plane) per 3GPP TS 29.281.
//!
//! The N3 interface between gNB and UPF carries user IP packets inside
//! GTP-U tunnels over UDP port 2152; the Tunnel Endpoint Identifier (TEID)
//! is the uplink session-lookup key in the UPF (see §2.1 of the paper).

use crate::error::{Error, Result};

/// Mandatory GTP-U header length (no optional fields).
pub const HEADER_LEN: usize = 8;
/// Header length when any of E/S/PN is set.
pub const HEADER_LEN_WITH_OPT: usize = 12;

/// GTP-U message types used by the 5GC datapath.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MessageType {
    /// Echo Request (path management).
    EchoRequest,
    /// Echo Response.
    EchoResponse,
    /// Error Indication (no session for TEID).
    ErrorIndication,
    /// End Marker (sent on the old path at handover).
    EndMarker,
    /// G-PDU: an encapsulated user packet.
    GPdu,
}

impl MessageType {
    fn to_byte(self) -> u8 {
        match self {
            MessageType::EchoRequest => 1,
            MessageType::EchoResponse => 2,
            MessageType::ErrorIndication => 26,
            MessageType::EndMarker => 254,
            MessageType::GPdu => 255,
        }
    }

    fn from_byte(b: u8) -> Result<MessageType> {
        Ok(match b {
            1 => MessageType::EchoRequest,
            2 => MessageType::EchoResponse,
            26 => MessageType::ErrorIndication,
            254 => MessageType::EndMarker,
            255 => MessageType::GPdu,
            _ => return Err(Error::UnknownType),
        })
    }
}

/// A zero-copy view of a GTP-U packet.
#[derive(Debug, Clone)]
pub struct Packet<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Packet<T> {
    /// Wraps a buffer without validation.
    pub fn new_unchecked(buffer: T) -> Packet<T> {
        Packet { buffer }
    }

    /// Wraps a buffer, validating version, length field and option bits.
    pub fn new_checked(buffer: T) -> Result<Packet<T>> {
        let p = Packet { buffer };
        let b = p.buffer.as_ref();
        if b.len() < HEADER_LEN {
            return Err(Error::Truncated);
        }
        if b[0] >> 5 != 1 {
            return Err(Error::BadVersion);
        }
        if b[0] & 0x10 == 0 {
            // PT must be 1 for GTP (0 is GTP').
            return Err(Error::Malformed);
        }
        if b.len() < p.header_len() {
            return Err(Error::Truncated);
        }
        let len = usize::from(u16::from_be_bytes([b[2], b[3]]));
        if b.len() < HEADER_LEN + len {
            return Err(Error::Truncated);
        }
        Ok(p)
    }

    /// Consumes the view, returning the underlying buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// True if any optional field (E/S/PN) is present.
    pub fn has_options(&self) -> bool {
        self.buffer.as_ref()[0] & 0x07 != 0
    }

    /// True if the sequence-number flag (S) is set.
    pub fn has_seq(&self) -> bool {
        self.buffer.as_ref()[0] & 0x02 != 0
    }

    /// Actual header length given the option bits.
    pub fn header_len(&self) -> usize {
        if self.has_options() {
            HEADER_LEN_WITH_OPT
        } else {
            HEADER_LEN
        }
    }

    /// Message type.
    pub fn msg_type(&self) -> Result<MessageType> {
        MessageType::from_byte(self.buffer.as_ref()[1])
    }

    /// The length field: bytes after the mandatory 8-byte header.
    pub fn len_field(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[2], b[3]])
    }

    /// Tunnel Endpoint Identifier.
    pub fn teid(&self) -> u32 {
        let b = self.buffer.as_ref();
        u32::from_be_bytes([b[4], b[5], b[6], b[7]])
    }

    /// Sequence number, if the S flag is set.
    pub fn seq(&self) -> Option<u16> {
        if self.has_seq() {
            let b = self.buffer.as_ref();
            Some(u16::from_be_bytes([b[8], b[9]]))
        } else {
            None
        }
    }

    /// The encapsulated payload (a user IP packet for G-PDU).
    pub fn payload(&self) -> &[u8] {
        let end = HEADER_LEN + usize::from(self.len_field());
        &self.buffer.as_ref()[self.header_len()..end]
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Packet<T> {
    /// Mutable access to the payload.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        let start = self.header_len();
        let end = HEADER_LEN + usize::from(self.len_field());
        &mut self.buffer.as_mut()[start..end]
    }
}

/// A parsed, owned GTP-U header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Repr {
    /// Message type.
    pub msg_type: MessageType,
    /// Tunnel endpoint identifier.
    pub teid: u32,
    /// Optional sequence number (sets the S flag when present).
    pub seq: Option<u16>,
    /// Payload length in bytes.
    pub payload_len: usize,
}

impl Repr {
    /// Parses a checked packet.
    pub fn parse<T: AsRef<[u8]>>(p: &Packet<T>) -> Result<Repr> {
        Ok(Repr {
            msg_type: p.msg_type()?,
            teid: p.teid(),
            seq: p.seq(),
            payload_len: HEADER_LEN + usize::from(p.len_field()) - p.header_len(),
        })
    }

    /// Bytes the emitted header occupies.
    pub fn header_len(&self) -> usize {
        if self.seq.is_some() {
            HEADER_LEN_WITH_OPT
        } else {
            HEADER_LEN
        }
    }

    /// Header + payload length.
    pub fn total_len(&self) -> usize {
        self.header_len() + self.payload_len
    }

    /// Writes the header into `p`'s buffer.
    pub fn emit<T: AsRef<[u8]> + AsMut<[u8]>>(&self, p: &mut Packet<T>) {
        let with_seq = self.seq.is_some();
        let b = p.buffer.as_mut();
        b[0] = (1 << 5) | 0x10 | if with_seq { 0x02 } else { 0 };
        b[1] = self.msg_type.to_byte();
        // Length counts everything after the mandatory header, including
        // the optional fields themselves.
        let len = self.total_len() - HEADER_LEN;
        b[2..4].copy_from_slice(&(len as u16).to_be_bytes());
        b[4..8].copy_from_slice(&self.teid.to_be_bytes());
        if let Some(seq) = self.seq {
            b[8..10].copy_from_slice(&seq.to_be_bytes());
            b[10] = 0; // N-PDU number (unused)
            b[11] = 0; // next extension header type: none
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpdu_roundtrip() {
        let repr = Repr {
            msg_type: MessageType::GPdu,
            teid: 0x0042_4242,
            seq: None,
            payload_len: 5,
        };
        let mut buf = vec![0u8; repr.total_len()];
        let mut p = Packet::new_unchecked(&mut buf[..]);
        repr.emit(&mut p);
        p.payload_mut().copy_from_slice(b"inner");
        let p = Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(Repr::parse(&p).unwrap(), repr);
        assert_eq!(p.payload(), b"inner");
        assert_eq!(p.teid(), 0x0042_4242);
    }

    #[test]
    fn roundtrip_with_sequence() {
        let repr = Repr {
            msg_type: MessageType::GPdu,
            teid: 7,
            seq: Some(0x1234),
            payload_len: 3,
        };
        let mut buf = vec![0u8; repr.total_len()];
        let mut p = Packet::new_unchecked(&mut buf[..]);
        repr.emit(&mut p);
        p.payload_mut().copy_from_slice(b"xyz");
        let p = Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(p.header_len(), HEADER_LEN_WITH_OPT);
        assert_eq!(p.seq(), Some(0x1234));
        assert_eq!(Repr::parse(&p).unwrap(), repr);
        assert_eq!(p.payload(), b"xyz");
    }

    #[test]
    fn end_marker_roundtrip() {
        let repr = Repr {
            msg_type: MessageType::EndMarker,
            teid: 99,
            seq: None,
            payload_len: 0,
        };
        let mut buf = vec![0u8; repr.total_len()];
        let mut p = Packet::new_unchecked(&mut buf[..]);
        repr.emit(&mut p);
        let p = Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(p.msg_type().unwrap(), MessageType::EndMarker);
    }

    #[test]
    fn wrong_version_rejected() {
        let mut buf = [0u8; HEADER_LEN];
        buf[0] = (2 << 5) | 0x10;
        assert_eq!(
            Packet::new_checked(&buf[..]).unwrap_err(),
            Error::BadVersion
        );
    }

    #[test]
    fn gtp_prime_rejected() {
        let mut buf = [0u8; HEADER_LEN];
        buf[0] = 1 << 5; // PT = 0
        assert_eq!(Packet::new_checked(&buf[..]).unwrap_err(), Error::Malformed);
    }

    #[test]
    fn truncated_payload_rejected() {
        let repr = Repr {
            msg_type: MessageType::GPdu,
            teid: 1,
            seq: None,
            payload_len: 10,
        };
        let mut buf = vec![0u8; repr.total_len()];
        let mut p = Packet::new_unchecked(&mut buf[..]);
        repr.emit(&mut p);
        assert_eq!(
            Packet::new_checked(&buf[..HEADER_LEN + 5]).unwrap_err(),
            Error::Truncated
        );
    }

    #[test]
    fn unknown_message_type() {
        let repr = Repr {
            msg_type: MessageType::GPdu,
            teid: 1,
            seq: None,
            payload_len: 0,
        };
        let mut buf = vec![0u8; repr.total_len()];
        let mut p = Packet::new_unchecked(&mut buf[..]);
        repr.emit(&mut p);
        buf[1] = 77;
        let p = Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(p.msg_type().unwrap_err(), Error::UnknownType);
    }
}
