//! IPv4 packets (RFC 791), without options.
//!
//! The UPF datapath parses inner IPv4 headers out of GTP-U payloads to feed
//! the PDR classifier, and emits outer IPv4 headers when encapsulating.

use crate::checksum;
use crate::error::{Error, Result};
use core::fmt;

/// An IPv4 address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Ipv4Addr(pub [u8; 4]);

impl Ipv4Addr {
    /// Constructs from four octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Self {
        Ipv4Addr([a, b, c, d])
    }

    /// The address as a big-endian `u32` (classifier key form).
    pub const fn to_u32(self) -> u32 {
        u32::from_be_bytes(self.0)
    }

    /// Constructs from a big-endian `u32`.
    pub const fn from_u32(v: u32) -> Self {
        Ipv4Addr(v.to_be_bytes())
    }
}

impl fmt::Display for Ipv4Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        write!(f, "{}.{}.{}.{}", b[0], b[1], b[2], b[3])
    }
}

/// IP protocol numbers used in this workspace.
pub mod protocol {
    /// ICMP.
    pub const ICMP: u8 = 1;
    /// TCP.
    pub const TCP: u8 = 6;
    /// UDP.
    pub const UDP: u8 = 17;
    /// SCTP (N1/N2 transport).
    pub const SCTP: u8 = 132;
}

/// Length of an IPv4 header without options.
pub const HEADER_LEN: usize = 20;

/// A zero-copy view of an IPv4 packet.
#[derive(Debug, Clone)]
pub struct Packet<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Packet<T> {
    /// Wraps a buffer without validation.
    pub fn new_unchecked(buffer: T) -> Packet<T> {
        Packet { buffer }
    }

    /// Wraps a buffer, validating version, header length and total length.
    pub fn new_checked(buffer: T) -> Result<Packet<T>> {
        let p = Packet { buffer };
        p.check()?;
        Ok(p)
    }

    fn check(&self) -> Result<()> {
        let b = self.buffer.as_ref();
        if b.len() < HEADER_LEN {
            return Err(Error::Truncated);
        }
        if b[0] >> 4 != 4 {
            return Err(Error::BadVersion);
        }
        let ihl = usize::from(b[0] & 0x0f) * 4;
        if ihl < HEADER_LEN || b.len() < ihl {
            return Err(Error::Malformed);
        }
        let total = usize::from(u16::from_be_bytes([b[2], b[3]]));
        if total < ihl || b.len() < total {
            return Err(Error::Truncated);
        }
        Ok(())
    }

    /// Consumes the view, returning the underlying buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// Header length in bytes (IHL × 4).
    pub fn header_len(&self) -> usize {
        usize::from(self.buffer.as_ref()[0] & 0x0f) * 4
    }

    /// Total packet length from the header.
    pub fn total_len(&self) -> usize {
        let b = self.buffer.as_ref();
        usize::from(u16::from_be_bytes([b[2], b[3]]))
    }

    /// DSCP (upper six bits of the ToS byte).
    pub fn dscp(&self) -> u8 {
        self.buffer.as_ref()[1] >> 2
    }

    /// The full ToS / traffic-class byte.
    pub fn tos(&self) -> u8 {
        self.buffer.as_ref()[1]
    }

    /// Time-to-live.
    pub fn ttl(&self) -> u8 {
        self.buffer.as_ref()[8]
    }

    /// Payload protocol number.
    pub fn protocol(&self) -> u8 {
        self.buffer.as_ref()[9]
    }

    /// Header checksum field.
    pub fn header_checksum(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[10], b[11]])
    }

    /// Source address.
    pub fn src(&self) -> Ipv4Addr {
        let b = self.buffer.as_ref();
        Ipv4Addr([b[12], b[13], b[14], b[15]])
    }

    /// Destination address.
    pub fn dst(&self) -> Ipv4Addr {
        let b = self.buffer.as_ref();
        Ipv4Addr([b[16], b[17], b[18], b[19]])
    }

    /// Verifies the header checksum.
    pub fn verify_checksum(&self) -> bool {
        let b = self.buffer.as_ref();
        checksum::checksum(&b[..self.header_len()]) == 0
    }

    /// Payload bytes (between header and `total_len`).
    pub fn payload(&self) -> &[u8] {
        let b = self.buffer.as_ref();
        &b[self.header_len()..self.total_len()]
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Packet<T> {
    /// Sets version=4 and IHL=5 (no options).
    pub fn set_version_ihl(&mut self) {
        self.buffer.as_mut()[0] = 0x45;
    }

    /// Sets the ToS byte.
    pub fn set_tos(&mut self, tos: u8) {
        self.buffer.as_mut()[1] = tos;
    }

    /// Sets the total length field.
    pub fn set_total_len(&mut self, len: u16) {
        self.buffer.as_mut()[2..4].copy_from_slice(&len.to_be_bytes());
    }

    /// Sets identification, flags and fragment offset to zero (DF clear).
    pub fn clear_frag(&mut self) {
        self.buffer.as_mut()[4..8].fill(0);
    }

    /// Sets the TTL.
    pub fn set_ttl(&mut self, ttl: u8) {
        self.buffer.as_mut()[8] = ttl;
    }

    /// Sets the payload protocol.
    pub fn set_protocol(&mut self, proto: u8) {
        self.buffer.as_mut()[9] = proto;
    }

    /// Sets the source address.
    pub fn set_src(&mut self, a: Ipv4Addr) {
        self.buffer.as_mut()[12..16].copy_from_slice(&a.0);
    }

    /// Sets the destination address.
    pub fn set_dst(&mut self, a: Ipv4Addr) {
        self.buffer.as_mut()[16..20].copy_from_slice(&a.0);
    }

    /// Recomputes and stores the header checksum.
    pub fn fill_checksum(&mut self) {
        let hlen = self.header_len();
        let b = self.buffer.as_mut();
        b[10..12].fill(0);
        let c = checksum::checksum(&b[..hlen]);
        b[10..12].copy_from_slice(&c.to_be_bytes());
    }

    /// Mutable payload bytes.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        let hlen = self.header_len();
        let total = self.total_len();
        &mut self.buffer.as_mut()[hlen..total]
    }
}

/// A parsed, owned IPv4 header (options unsupported).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Repr {
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Payload protocol.
    pub protocol: u8,
    /// ToS byte.
    pub tos: u8,
    /// Time-to-live.
    pub ttl: u8,
    /// Payload length in bytes.
    pub payload_len: usize,
}

impl Repr {
    /// Parses a checked packet into a `Repr`, verifying the checksum.
    pub fn parse<T: AsRef<[u8]>>(packet: &Packet<T>) -> Result<Repr> {
        if !packet.verify_checksum() {
            return Err(Error::BadChecksum);
        }
        Ok(Repr {
            src: packet.src(),
            dst: packet.dst(),
            protocol: packet.protocol(),
            tos: packet.tos(),
            ttl: packet.ttl(),
            payload_len: packet.total_len() - packet.header_len(),
        })
    }

    /// Bytes the emitted header occupies.
    pub const fn header_len(&self) -> usize {
        HEADER_LEN
    }

    /// Total length of header plus payload.
    pub fn total_len(&self) -> usize {
        HEADER_LEN + self.payload_len
    }

    /// Writes the header (and checksum) into `packet`.
    pub fn emit<T: AsRef<[u8]> + AsMut<[u8]>>(&self, packet: &mut Packet<T>) {
        packet.set_version_ihl();
        packet.set_tos(self.tos);
        packet.set_total_len(self.total_len() as u16);
        packet.clear_frag();
        packet.set_ttl(self.ttl);
        packet.set_protocol(self.protocol);
        packet.set_src(self.src);
        packet.set_dst(self.dst);
        packet.fill_checksum();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_repr() -> Repr {
        Repr {
            src: Ipv4Addr::new(10, 60, 0, 1),
            dst: Ipv4Addr::new(10, 100, 200, 3),
            protocol: protocol::UDP,
            tos: 0,
            ttl: 64,
            payload_len: 8,
        }
    }

    #[test]
    fn roundtrip() {
        let repr = sample_repr();
        let mut buf = vec![0u8; repr.total_len()];
        let mut p = Packet::new_unchecked(&mut buf[..]);
        repr.emit(&mut p);
        let p = Packet::new_checked(&buf[..]).unwrap();
        assert!(p.verify_checksum());
        assert_eq!(Repr::parse(&p).unwrap(), repr);
    }

    #[test]
    fn corrupt_checksum_detected() {
        let repr = sample_repr();
        let mut buf = vec![0u8; repr.total_len()];
        let mut p = Packet::new_unchecked(&mut buf[..]);
        repr.emit(&mut p);
        buf[12] ^= 0xff; // flip a source-address bit pattern
        let p = Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(Repr::parse(&p).unwrap_err(), Error::BadChecksum);
    }

    #[test]
    fn version_check() {
        let mut buf = [0u8; HEADER_LEN];
        buf[0] = 0x65; // version 6
        assert_eq!(
            Packet::new_checked(&buf[..]).unwrap_err(),
            Error::BadVersion
        );
    }

    #[test]
    fn truncation_checks() {
        assert_eq!(
            Packet::new_checked(&[0x45u8; 10][..]).unwrap_err(),
            Error::Truncated
        );
        // total_len larger than buffer
        let mut buf = [0u8; HEADER_LEN];
        buf[0] = 0x45;
        buf[2..4].copy_from_slice(&100u16.to_be_bytes());
        assert_eq!(Packet::new_checked(&buf[..]).unwrap_err(), Error::Truncated);
    }

    #[test]
    fn payload_respects_total_len() {
        let repr = sample_repr();
        // Oversized buffer: payload must stop at total_len.
        let mut buf = vec![0xffu8; repr.total_len() + 10];
        let mut p = Packet::new_unchecked(&mut buf[..]);
        repr.emit(&mut p);
        p.payload_mut().copy_from_slice(&[7u8; 8]);
        let p = Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(p.payload(), &[7u8; 8]);
    }

    #[test]
    fn addr_u32_roundtrip() {
        let a = Ipv4Addr::new(192, 168, 1, 77);
        assert_eq!(Ipv4Addr::from_u32(a.to_u32()), a);
        assert_eq!(format!("{a}"), "192.168.1.77");
    }
}
