//! # l25gc-pkt — wire formats for the L²5GC reproduction
//!
//! Zero-copy packet views in the smoltcp idiom: a `Packet<T: AsRef<[u8]>>`
//! wrapper with typed accessors, plus an owned `Repr` with `parse`/`emit`
//! for each format. The formats are those the 5G core datapath and N-plane
//! interfaces actually carry:
//!
//! - [`ether`], [`ipv4`], [`udp`], [`tcp`] — the classic stack; inner user
//!   packets and outer tunnel headers.
//! - [`gtpu`] — GTP-U tunnels on N3 (gNB ↔ UPF), keyed by TEID.
//! - [`pfcp`] — the N4 protocol (SMF ↔ UPF): session establishment,
//!   modification (UpdateFAR — the handover/paging workhorse), and
//!   downlink-data reports, with PDR/FAR rule IEs.
//! - [`nas`], [`ngap`] — simplified N1/N2 signalling used by the UE/RAN
//!   simulator, covering registration, PDU session setup, N2 handover,
//!   paging and context release.
//!
//! ```
//! use l25gc_pkt::gtpu;
//!
//! let repr = gtpu::Repr {
//!     msg_type: gtpu::MessageType::GPdu,
//!     teid: 0x42,
//!     seq: None,
//!     payload_len: 4,
//! };
//! let mut buf = vec![0u8; repr.total_len()];
//! let mut pkt = gtpu::Packet::new_unchecked(&mut buf[..]);
//! repr.emit(&mut pkt);
//! pkt.payload_mut().copy_from_slice(b"user");
//!
//! let parsed = gtpu::Packet::new_checked(&buf[..]).unwrap();
//! assert_eq!(parsed.teid(), 0x42);
//! assert_eq!(parsed.payload(), b"user");
//! ```

pub mod checksum;
pub mod error;
pub mod ether;
pub mod gtpu;
pub mod ipv4;
pub mod nas;
pub mod ngap;
pub mod pcap;
pub mod pfcp;
pub mod tcp;
pub mod udp;

pub use error::{Error, Result};
pub use ipv4::Ipv4Addr;
