//! Simplified NAS (Non-Access Stratum) messages, 3GPP TS 24.501.
//!
//! NAS PDUs ride inside NGAP messages between the UE and the AMF/SMF. The
//! paper's UE events need the registration, authentication, security-mode,
//! PDU-session and service-request message families; we encode them in a
//! compact fixed-layout binary form (type byte + fields) rather than the
//! full 3GPP IE grammar. Message *semantics* and sequence cardinalities
//! match TS 23.502 procedures; per-message byte size is in the right order
//! of magnitude so channel cost models see realistic payloads.

use crate::error::{Error, Result};

/// A NAS message, as exchanged on the N1 interface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NasMessage {
    /// UE → AMF: initial registration. Carries the subscriber identity.
    RegistrationRequest {
        /// Subscription identifier (SUPI, simplified to a u64).
        supi: u64,
    },
    /// AMF → UE: authentication challenge (RAND + the AUTN's sequence
    /// number, which the USIM needs to compute its response).
    AuthenticationRequest {
        /// Challenge nonce.
        rand: [u8; 16],
        /// AKA sequence number (AUTN payload, simplified).
        sqn: u64,
    },
    /// UE → AMF: challenge response.
    AuthenticationResponse {
        /// Response digest.
        res: [u8; 16],
    },
    /// AMF → UE: activate NAS security.
    SecurityModeCommand,
    /// UE → AMF: security activated.
    SecurityModeComplete,
    /// AMF → UE: registration accepted; carries the 5G-GUTI.
    RegistrationAccept {
        /// Assigned temporary identity.
        guti: u64,
    },
    /// UE → AMF: registration complete.
    RegistrationComplete,
    /// UE → SMF (via AMF): request a PDU session.
    PduSessionEstablishmentRequest {
        /// PDU session id chosen by the UE.
        session_id: u8,
    },
    /// SMF → UE: session accepted; carries the assigned UE IP.
    PduSessionEstablishmentAccept {
        /// PDU session id.
        session_id: u8,
        /// UE IPv4 address, big-endian.
        ue_ip: u32,
    },
    /// UE → AMF: service request (idle → connected, paging response).
    ServiceRequest {
        /// Temporary identity.
        guti: u64,
    },
    /// AMF → UE: service accept.
    ServiceAccept,
    /// UE → AMF: deregister from the network.
    DeregistrationRequest {
        /// Temporary identity.
        guti: u64,
    },
    /// AMF → UE: deregistration accepted.
    DeregistrationAccept,
}

impl NasMessage {
    fn discriminant(&self) -> u8 {
        match self {
            NasMessage::RegistrationRequest { .. } => 0x41,
            NasMessage::AuthenticationRequest { .. } => 0x56,
            NasMessage::AuthenticationResponse { .. } => 0x57,
            NasMessage::SecurityModeCommand => 0x5d,
            NasMessage::SecurityModeComplete => 0x5e,
            NasMessage::RegistrationAccept { .. } => 0x42,
            NasMessage::RegistrationComplete => 0x43,
            NasMessage::PduSessionEstablishmentRequest { .. } => 0xc1,
            NasMessage::PduSessionEstablishmentAccept { .. } => 0xc2,
            NasMessage::ServiceRequest { .. } => 0x4c,
            NasMessage::ServiceAccept => 0x4e,
            NasMessage::DeregistrationRequest { .. } => 0x45,
            NasMessage::DeregistrationAccept => 0x46,
        }
    }

    /// Encodes to bytes: `[type, fields...]`.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = vec![self.discriminant()];
        match self {
            NasMessage::RegistrationRequest { supi } => out.extend_from_slice(&supi.to_be_bytes()),
            NasMessage::AuthenticationRequest { rand, sqn } => {
                out.extend_from_slice(rand);
                out.extend_from_slice(&sqn.to_be_bytes());
            }
            NasMessage::AuthenticationResponse { res } => out.extend_from_slice(res),
            NasMessage::SecurityModeCommand
            | NasMessage::SecurityModeComplete
            | NasMessage::RegistrationComplete
            | NasMessage::ServiceAccept => {}
            NasMessage::RegistrationAccept { guti } => out.extend_from_slice(&guti.to_be_bytes()),
            NasMessage::PduSessionEstablishmentRequest { session_id } => out.push(*session_id),
            NasMessage::PduSessionEstablishmentAccept { session_id, ue_ip } => {
                out.push(*session_id);
                out.extend_from_slice(&ue_ip.to_be_bytes());
            }
            NasMessage::ServiceRequest { guti } => out.extend_from_slice(&guti.to_be_bytes()),
            NasMessage::DeregistrationRequest { guti } => {
                out.extend_from_slice(&guti.to_be_bytes())
            }
            NasMessage::DeregistrationAccept => {}
        }
        out
    }

    /// Decodes from bytes produced by [`NasMessage::encode`].
    pub fn decode(buf: &[u8]) -> Result<NasMessage> {
        let (&ty, rest) = buf.split_first().ok_or(Error::Truncated)?;
        let u64of = |b: &[u8]| -> Result<u64> {
            Ok(u64::from_be_bytes(
                b.get(..8).ok_or(Error::Truncated)?.try_into().expect("8"),
            ))
        };
        let arr16 = |b: &[u8]| -> Result<[u8; 16]> {
            Ok(b.get(..16).ok_or(Error::Truncated)?.try_into().expect("16"))
        };
        Ok(match ty {
            0x41 => NasMessage::RegistrationRequest { supi: u64of(rest)? },
            0x56 => {
                let rand = arr16(rest)?;
                let sqn = u64::from_be_bytes(
                    rest.get(16..24)
                        .ok_or(Error::Truncated)?
                        .try_into()
                        .expect("8"),
                );
                NasMessage::AuthenticationRequest { rand, sqn }
            }
            0x57 => NasMessage::AuthenticationResponse { res: arr16(rest)? },
            0x5d => NasMessage::SecurityModeCommand,
            0x5e => NasMessage::SecurityModeComplete,
            0x42 => NasMessage::RegistrationAccept { guti: u64of(rest)? },
            0x43 => NasMessage::RegistrationComplete,
            0xc1 => NasMessage::PduSessionEstablishmentRequest {
                session_id: *rest.first().ok_or(Error::Truncated)?,
            },
            0xc2 => {
                let session_id = *rest.first().ok_or(Error::Truncated)?;
                let ue_ip = u32::from_be_bytes(
                    rest.get(1..5)
                        .ok_or(Error::Truncated)?
                        .try_into()
                        .expect("4"),
                );
                NasMessage::PduSessionEstablishmentAccept { session_id, ue_ip }
            }
            0x4c => NasMessage::ServiceRequest { guti: u64of(rest)? },
            0x4e => NasMessage::ServiceAccept,
            0x45 => NasMessage::DeregistrationRequest { guti: u64of(rest)? },
            0x46 => NasMessage::DeregistrationAccept,
            _ => return Err(Error::UnknownType),
        })
    }

    /// Encoded size in bytes, used by channel cost models.
    pub fn wire_len(&self) -> usize {
        self.encode().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_messages() -> Vec<NasMessage> {
        vec![
            NasMessage::RegistrationRequest {
                supi: 208_930_000_000_001,
            },
            NasMessage::AuthenticationRequest {
                rand: [7u8; 16],
                sqn: 3,
            },
            NasMessage::AuthenticationResponse { res: [9u8; 16] },
            NasMessage::SecurityModeCommand,
            NasMessage::SecurityModeComplete,
            NasMessage::RegistrationAccept { guti: 0xdead },
            NasMessage::RegistrationComplete,
            NasMessage::PduSessionEstablishmentRequest { session_id: 1 },
            NasMessage::PduSessionEstablishmentAccept {
                session_id: 1,
                ue_ip: 0x0a3c_0001,
            },
            NasMessage::ServiceRequest { guti: 0xdead },
            NasMessage::ServiceAccept,
            NasMessage::DeregistrationRequest { guti: 0xdead },
            NasMessage::DeregistrationAccept,
        ]
    }

    #[test]
    fn all_variants_roundtrip() {
        for msg in all_messages() {
            let bytes = msg.encode();
            assert_eq!(NasMessage::decode(&bytes).unwrap(), msg, "{msg:?}");
            assert_eq!(msg.wire_len(), bytes.len());
        }
    }

    #[test]
    fn truncated_fields_rejected() {
        let full = NasMessage::RegistrationRequest { supi: 1 }.encode();
        for cut in 0..full.len() {
            assert!(NasMessage::decode(&full[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn unknown_type_rejected() {
        assert_eq!(
            NasMessage::decode(&[0xff, 0, 0]).unwrap_err(),
            Error::UnknownType
        );
        assert_eq!(NasMessage::decode(&[]).unwrap_err(), Error::Truncated);
    }

    #[test]
    fn discriminants_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for m in all_messages() {
            assert!(
                seen.insert(m.discriminant()),
                "duplicate discriminant for {m:?}"
            );
        }
    }
}
