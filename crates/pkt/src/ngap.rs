//! Simplified NGAP (NG Application Protocol) messages, 3GPP TS 38.413.
//!
//! NGAP runs on the N2 interface between gNB and AMF (over SCTP in real
//! deployments; the paper's UE/RAN simulator speaks exactly this). We model
//! the procedures the paper evaluates — initial UE registration, PDU
//! session resource setup, N2 handover, paging and UE context release — as
//! a typed enum with a compact binary encoding (full ASN.1 PER is out of
//! scope and irrelevant to the latency mechanisms under study).

use crate::error::{Error, Result};
use crate::nas::NasMessage;

/// Identifies a UE within NGAP signalling (RAN/AMF UE NGAP id pair,
/// collapsed to one id in this model).
pub type UeNgapId = u64;
/// Identifies a gNB.
pub type GnbId = u32;

/// Tunnel info handed around during session setup and handover.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TunnelInfo {
    /// Tunnel endpoint id.
    pub teid: u32,
    /// Endpoint IPv4 address (big-endian u32 form).
    pub addr: u32,
}

/// An NGAP message on the N2 interface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NgapMessage {
    /// gNB → AMF: first uplink NAS message from a UE.
    InitialUeMessage {
        /// NGAP UE id.
        ue: UeNgapId,
        /// Originating gNB.
        gnb: GnbId,
        /// Piggybacked NAS PDU.
        nas: NasMessage,
    },
    /// AMF → gNB: downlink NAS transport.
    DownlinkNasTransport {
        /// NGAP UE id.
        ue: UeNgapId,
        /// Piggybacked NAS PDU.
        nas: NasMessage,
    },
    /// gNB → AMF: uplink NAS transport.
    UplinkNasTransport {
        /// NGAP UE id.
        ue: UeNgapId,
        /// Piggybacked NAS PDU.
        nas: NasMessage,
    },
    /// AMF → gNB: establish the UE context (ends registration).
    InitialContextSetupRequest {
        /// NGAP UE id.
        ue: UeNgapId,
        /// Piggybacked NAS PDU (Registration Accept).
        nas: NasMessage,
    },
    /// gNB → AMF: context established.
    InitialContextSetupResponse {
        /// NGAP UE id.
        ue: UeNgapId,
    },
    /// AMF → gNB: set up data radio bearers + N3 tunnel for a session.
    PduSessionResourceSetupRequest {
        /// NGAP UE id.
        ue: UeNgapId,
        /// PDU session id.
        session_id: u8,
        /// UPF-side tunnel endpoint for uplink.
        uplink_tunnel: TunnelInfo,
        /// Piggybacked NAS PDU (PDU Session Establishment Accept).
        nas: NasMessage,
    },
    /// gNB → AMF: bearer ready; carries the gNB's downlink tunnel endpoint.
    PduSessionResourceSetupResponse {
        /// NGAP UE id.
        ue: UeNgapId,
        /// PDU session id.
        session_id: u8,
        /// gNB-side tunnel endpoint for downlink.
        downlink_tunnel: TunnelInfo,
    },
    /// Source gNB → AMF: UE should be handed over.
    HandoverRequired {
        /// NGAP UE id.
        ue: UeNgapId,
        /// Target gNB.
        target_gnb: GnbId,
    },
    /// AMF → target gNB: prepare resources for an incoming UE.
    HandoverRequest {
        /// NGAP UE id.
        ue: UeNgapId,
        /// PDU session id being moved.
        session_id: u8,
        /// UPF-side uplink tunnel the target should use.
        uplink_tunnel: TunnelInfo,
    },
    /// Target gNB → AMF: resources ready; carries the target's DL endpoint.
    HandoverRequestAcknowledge {
        /// NGAP UE id.
        ue: UeNgapId,
        /// PDU session id.
        session_id: u8,
        /// Target gNB's downlink tunnel endpoint.
        downlink_tunnel: TunnelInfo,
    },
    /// AMF → source gNB: execute the handover.
    HandoverCommand {
        /// NGAP UE id.
        ue: UeNgapId,
        /// Target gNB.
        target_gnb: GnbId,
    },
    /// Target gNB → AMF: UE has arrived on the target cell.
    HandoverNotify {
        /// NGAP UE id.
        ue: UeNgapId,
        /// The gNB the UE now camps on.
        gnb: GnbId,
    },
    /// AMF → gNB: page an idle UE.
    Paging {
        /// Temporary identity to page.
        guti: u64,
    },
    /// gNB → AMF: request release of an idle UE's context.
    UeContextReleaseRequest {
        /// NGAP UE id.
        ue: UeNgapId,
    },
    /// AMF → gNB: release the UE context.
    UeContextReleaseCommand {
        /// NGAP UE id.
        ue: UeNgapId,
    },
    /// gNB → AMF: context released.
    UeContextReleaseComplete {
        /// NGAP UE id.
        ue: UeNgapId,
    },
}

impl NgapMessage {
    fn discriminant(&self) -> u8 {
        use NgapMessage::*;
        match self {
            InitialUeMessage { .. } => 1,
            DownlinkNasTransport { .. } => 2,
            UplinkNasTransport { .. } => 3,
            InitialContextSetupRequest { .. } => 4,
            InitialContextSetupResponse { .. } => 5,
            PduSessionResourceSetupRequest { .. } => 6,
            PduSessionResourceSetupResponse { .. } => 7,
            HandoverRequired { .. } => 8,
            HandoverRequest { .. } => 9,
            HandoverRequestAcknowledge { .. } => 10,
            HandoverCommand { .. } => 11,
            HandoverNotify { .. } => 12,
            Paging { .. } => 13,
            UeContextReleaseRequest { .. } => 14,
            UeContextReleaseCommand { .. } => 15,
            UeContextReleaseComplete { .. } => 16,
        }
    }

    /// Encodes to bytes: `[type, fields..., nas?]`.
    pub fn encode(&self) -> Vec<u8> {
        use NgapMessage::*;
        let mut out = vec![self.discriminant()];
        let put_u64 = |out: &mut Vec<u8>, v: u64| out.extend_from_slice(&v.to_be_bytes());
        let put_u32 = |out: &mut Vec<u8>, v: u32| out.extend_from_slice(&v.to_be_bytes());
        let put_tun = |out: &mut Vec<u8>, t: &TunnelInfo| {
            out.extend_from_slice(&t.teid.to_be_bytes());
            out.extend_from_slice(&t.addr.to_be_bytes());
        };
        let put_nas = |out: &mut Vec<u8>, nas: &NasMessage| {
            let enc = nas.encode();
            out.extend_from_slice(&(enc.len() as u16).to_be_bytes());
            out.extend_from_slice(&enc);
        };
        match self {
            InitialUeMessage { ue, gnb, nas } => {
                put_u64(&mut out, *ue);
                put_u32(&mut out, *gnb);
                put_nas(&mut out, nas);
            }
            DownlinkNasTransport { ue, nas }
            | UplinkNasTransport { ue, nas }
            | InitialContextSetupRequest { ue, nas } => {
                put_u64(&mut out, *ue);
                put_nas(&mut out, nas);
            }
            InitialContextSetupResponse { ue }
            | UeContextReleaseRequest { ue }
            | UeContextReleaseCommand { ue }
            | UeContextReleaseComplete { ue } => put_u64(&mut out, *ue),
            PduSessionResourceSetupRequest {
                ue,
                session_id,
                uplink_tunnel,
                nas,
            } => {
                put_u64(&mut out, *ue);
                out.push(*session_id);
                put_tun(&mut out, uplink_tunnel);
                put_nas(&mut out, nas);
            }
            PduSessionResourceSetupResponse {
                ue,
                session_id,
                downlink_tunnel,
            } => {
                put_u64(&mut out, *ue);
                out.push(*session_id);
                put_tun(&mut out, downlink_tunnel);
            }
            HandoverRequired { ue, target_gnb } => {
                put_u64(&mut out, *ue);
                put_u32(&mut out, *target_gnb);
            }
            HandoverRequest {
                ue,
                session_id,
                uplink_tunnel,
            } => {
                put_u64(&mut out, *ue);
                out.push(*session_id);
                put_tun(&mut out, uplink_tunnel);
            }
            HandoverRequestAcknowledge {
                ue,
                session_id,
                downlink_tunnel,
            } => {
                put_u64(&mut out, *ue);
                out.push(*session_id);
                put_tun(&mut out, downlink_tunnel);
            }
            HandoverCommand { ue, target_gnb } => {
                put_u64(&mut out, *ue);
                put_u32(&mut out, *target_gnb);
            }
            HandoverNotify { ue, gnb } => {
                put_u64(&mut out, *ue);
                put_u32(&mut out, *gnb);
            }
            Paging { guti } => put_u64(&mut out, *guti),
        }
        out
    }

    /// Decodes from bytes produced by [`NgapMessage::encode`].
    pub fn decode(buf: &[u8]) -> Result<NgapMessage> {
        use NgapMessage::*;
        let (&ty, rest) = buf.split_first().ok_or(Error::Truncated)?;
        let mut r = Reader { buf: rest };
        Ok(match ty {
            1 => InitialUeMessage {
                ue: r.u64()?,
                gnb: r.u32()?,
                nas: r.nas()?,
            },
            2 => DownlinkNasTransport {
                ue: r.u64()?,
                nas: r.nas()?,
            },
            3 => UplinkNasTransport {
                ue: r.u64()?,
                nas: r.nas()?,
            },
            4 => InitialContextSetupRequest {
                ue: r.u64()?,
                nas: r.nas()?,
            },
            5 => InitialContextSetupResponse { ue: r.u64()? },
            6 => PduSessionResourceSetupRequest {
                ue: r.u64()?,
                session_id: r.u8()?,
                uplink_tunnel: r.tunnel()?,
                nas: r.nas()?,
            },
            7 => PduSessionResourceSetupResponse {
                ue: r.u64()?,
                session_id: r.u8()?,
                downlink_tunnel: r.tunnel()?,
            },
            8 => HandoverRequired {
                ue: r.u64()?,
                target_gnb: r.u32()?,
            },
            9 => HandoverRequest {
                ue: r.u64()?,
                session_id: r.u8()?,
                uplink_tunnel: r.tunnel()?,
            },
            10 => HandoverRequestAcknowledge {
                ue: r.u64()?,
                session_id: r.u8()?,
                downlink_tunnel: r.tunnel()?,
            },
            11 => HandoverCommand {
                ue: r.u64()?,
                target_gnb: r.u32()?,
            },
            12 => HandoverNotify {
                ue: r.u64()?,
                gnb: r.u32()?,
            },
            13 => Paging { guti: r.u64()? },
            14 => UeContextReleaseRequest { ue: r.u64()? },
            15 => UeContextReleaseCommand { ue: r.u64()? },
            16 => UeContextReleaseComplete { ue: r.u64()? },
            _ => return Err(Error::UnknownType),
        })
    }

    /// Encoded size in bytes, used by channel cost models.
    pub fn wire_len(&self) -> usize {
        self.encode().len()
    }
}

struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.buf.len() < n {
            return Err(Error::Truncated);
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn tunnel(&mut self) -> Result<TunnelInfo> {
        Ok(TunnelInfo {
            teid: self.u32()?,
            addr: self.u32()?,
        })
    }

    fn nas(&mut self) -> Result<NasMessage> {
        let len = usize::from(u16::from_be_bytes(self.take(2)?.try_into().expect("2")));
        NasMessage::decode(self.take(len)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_messages() -> Vec<NgapMessage> {
        use NgapMessage::*;
        let tun = TunnelInfo {
            teid: 0x100,
            addr: 0x0ac8_c866,
        };
        vec![
            InitialUeMessage {
                ue: 1,
                gnb: 10,
                nas: NasMessage::RegistrationRequest { supi: 5 },
            },
            DownlinkNasTransport {
                ue: 1,
                nas: NasMessage::SecurityModeCommand,
            },
            UplinkNasTransport {
                ue: 1,
                nas: NasMessage::SecurityModeComplete,
            },
            InitialContextSetupRequest {
                ue: 1,
                nas: NasMessage::RegistrationAccept { guti: 9 },
            },
            InitialContextSetupResponse { ue: 1 },
            PduSessionResourceSetupRequest {
                ue: 1,
                session_id: 1,
                uplink_tunnel: tun,
                nas: NasMessage::PduSessionEstablishmentAccept {
                    session_id: 1,
                    ue_ip: 7,
                },
            },
            PduSessionResourceSetupResponse {
                ue: 1,
                session_id: 1,
                downlink_tunnel: tun,
            },
            HandoverRequired {
                ue: 1,
                target_gnb: 11,
            },
            HandoverRequest {
                ue: 1,
                session_id: 1,
                uplink_tunnel: tun,
            },
            HandoverRequestAcknowledge {
                ue: 1,
                session_id: 1,
                downlink_tunnel: tun,
            },
            HandoverCommand {
                ue: 1,
                target_gnb: 11,
            },
            HandoverNotify { ue: 1, gnb: 11 },
            Paging { guti: 9 },
            UeContextReleaseRequest { ue: 1 },
            UeContextReleaseCommand { ue: 1 },
            UeContextReleaseComplete { ue: 1 },
        ]
    }

    #[test]
    fn all_variants_roundtrip() {
        for msg in all_messages() {
            let bytes = msg.encode();
            assert_eq!(NgapMessage::decode(&bytes).unwrap(), msg, "{msg:?}");
            assert_eq!(msg.wire_len(), bytes.len());
        }
    }

    #[test]
    fn every_truncation_fails_cleanly() {
        for msg in all_messages() {
            let bytes = msg.encode();
            for cut in 0..bytes.len() {
                assert!(
                    NgapMessage::decode(&bytes[..cut]).is_err(),
                    "{msg:?} cut at {cut}"
                );
            }
        }
    }

    #[test]
    fn unknown_type_rejected() {
        assert_eq!(NgapMessage::decode(&[200]).unwrap_err(), Error::UnknownType);
    }

    #[test]
    fn discriminants_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for m in all_messages() {
            assert!(
                seen.insert(m.discriminant()),
                "duplicate discriminant for {m:?}"
            );
        }
    }
}
