//! Pcap trace writing (classic `pcap` format, LINKTYPE_ETHERNET).
//!
//! The paper's artifact ships "scripts to generate GTP encapsulated data
//! plane pcap traces" for MoonGen to replay; this module is that
//! generator: it serializes fully-formed Ethernet/IPv4/UDP/GTP-U frames
//! with virtual-clock timestamps into a standard pcap byte stream any
//! tool (tcpdump, Wireshark, MoonGen) can read.

use std::io::{self, Write};

use crate::ether::{self, EtherType, MacAddr};
use crate::gtpu;
use crate::ipv4::{self, Ipv4Addr};
use crate::udp;
use l25gc_sim::SimTime;

/// Magic for microsecond-resolution classic pcap.
const PCAP_MAGIC: u32 = 0xa1b2_c3d4;
/// LINKTYPE_ETHERNET.
const LINKTYPE_ETHERNET: u32 = 1;

/// Writes pcap global + per-packet headers around raw frames.
pub struct PcapWriter<W: Write> {
    out: W,
    /// Frames written so far.
    pub frames: u64,
}

impl<W: Write> PcapWriter<W> {
    /// Creates a writer and emits the global header.
    pub fn new(mut out: W) -> io::Result<PcapWriter<W>> {
        out.write_all(&PCAP_MAGIC.to_le_bytes())?;
        out.write_all(&2u16.to_le_bytes())?; // version major
        out.write_all(&4u16.to_le_bytes())?; // version minor
        out.write_all(&0i32.to_le_bytes())?; // thiszone
        out.write_all(&0u32.to_le_bytes())?; // sigfigs
        out.write_all(&65_535u32.to_le_bytes())?; // snaplen
        out.write_all(&LINKTYPE_ETHERNET.to_le_bytes())?;
        Ok(PcapWriter { out, frames: 0 })
    }

    /// Writes one frame with a virtual-clock timestamp.
    pub fn write_frame(&mut self, at: SimTime, frame: &[u8]) -> io::Result<()> {
        let ns = at.as_nanos();
        let secs = (ns / 1_000_000_000) as u32;
        let usecs = ((ns % 1_000_000_000) / 1_000) as u32;
        self.out.write_all(&secs.to_le_bytes())?;
        self.out.write_all(&usecs.to_le_bytes())?;
        self.out.write_all(&(frame.len() as u32).to_le_bytes())?;
        self.out.write_all(&(frame.len() as u32).to_le_bytes())?;
        self.out.write_all(frame)?;
        self.frames += 1;
        Ok(())
    }

    /// Flushes and returns the underlying writer.
    pub fn finish(mut self) -> io::Result<W> {
        self.out.flush()?;
        Ok(self.out)
    }
}

/// Addressing for one end-to-end GTP flow in a trace.
#[derive(Debug, Clone, Copy)]
pub struct GtpFlow {
    /// Outer source MAC (the gNB-side NIC).
    pub src_mac: MacAddr,
    /// Outer destination MAC (the UPF NIC).
    pub dst_mac: MacAddr,
    /// Outer tunnel source (gNB N3 address).
    pub outer_src: Ipv4Addr,
    /// Outer tunnel destination (UPF N3 address).
    pub outer_dst: Ipv4Addr,
    /// GTP-U tunnel endpoint id.
    pub teid: u32,
    /// Inner packet source (UE IP for uplink).
    pub inner_src: Ipv4Addr,
    /// Inner packet destination (DN server for uplink).
    pub inner_dst: Ipv4Addr,
    /// Inner UDP destination port.
    pub inner_dport: u16,
}

/// Builds one complete GTP-U-encapsulated frame:
/// `Ether(IPv4(UDP:2152(GTP-U(IPv4(UDP(payload))))))`.
pub fn build_gtp_frame(flow: &GtpFlow, payload: &[u8]) -> Vec<u8> {
    // Inner UDP + IPv4.
    let inner_udp = udp::Repr {
        src_port: 40_000,
        dst_port: flow.inner_dport,
        payload_len: payload.len(),
    };
    let inner_ip = ipv4::Repr {
        src: flow.inner_src,
        dst: flow.inner_dst,
        protocol: ipv4::protocol::UDP,
        tos: 0,
        ttl: 64,
        payload_len: inner_udp.total_len(),
    };
    let mut inner = vec![0u8; inner_ip.total_len()];
    {
        let mut ip = ipv4::Packet::new_unchecked(&mut inner[..]);
        inner_ip.emit(&mut ip);
        let mut dgram = udp::Datagram::new_unchecked(ip.payload_mut());
        inner_udp.emit(&mut dgram);
        dgram.payload_mut().copy_from_slice(payload);
        dgram.fill_checksum(flow.inner_src, flow.inner_dst);
        ip.fill_checksum();
    }

    // GTP-U wrapper.
    let gtp = gtpu::Repr {
        msg_type: gtpu::MessageType::GPdu,
        teid: flow.teid,
        seq: None,
        payload_len: inner.len(),
    };
    let mut gtp_buf = vec![0u8; gtp.total_len()];
    {
        let mut p = gtpu::Packet::new_unchecked(&mut gtp_buf[..]);
        gtp.emit(&mut p);
        p.payload_mut().copy_from_slice(&inner);
    }

    // Outer UDP (2152) + IPv4 + Ethernet.
    let outer_udp = udp::Repr {
        src_port: udp::GTPU_PORT,
        dst_port: udp::GTPU_PORT,
        payload_len: gtp_buf.len(),
    };
    let outer_ip = ipv4::Repr {
        src: flow.outer_src,
        dst: flow.outer_dst,
        protocol: ipv4::protocol::UDP,
        tos: 0,
        ttl: 64,
        payload_len: outer_udp.total_len(),
    };
    let eth = ether::Repr {
        dst: flow.dst_mac,
        src: flow.src_mac,
        ethertype: EtherType::Ipv4,
    };
    let mut frame = vec![0u8; ether::HEADER_LEN + outer_ip.total_len()];
    {
        let mut e = ether::Frame::new_unchecked(&mut frame[..]);
        eth.emit(&mut e);
        let mut ip = ipv4::Packet::new_unchecked(e.payload_mut());
        outer_ip.emit(&mut ip);
        let mut dgram = udp::Datagram::new_unchecked(ip.payload_mut());
        outer_udp.emit(&mut dgram);
        dgram.payload_mut().copy_from_slice(&gtp_buf);
        dgram.fill_checksum(flow.outer_src, flow.outer_dst);
        ip.fill_checksum();
    }
    frame
}

#[cfg(test)]
mod tests {
    use super::*;
    use l25gc_sim::SimDuration;

    fn flow() -> GtpFlow {
        GtpFlow {
            src_mac: MacAddr([2, 0, 0, 0, 0, 1]),
            dst_mac: MacAddr([2, 0, 0, 0, 0, 2]),
            outer_src: Ipv4Addr::new(10, 200, 200, 101),
            outer_dst: Ipv4Addr::new(10, 200, 200, 102),
            teid: 0x100,
            inner_src: Ipv4Addr::new(10, 60, 0, 1),
            inner_dst: Ipv4Addr::new(10, 100, 200, 3),
            inner_dport: 5001,
        }
    }

    #[test]
    fn frame_parses_back_through_every_layer() {
        let frame = build_gtp_frame(&flow(), b"hello-upf");
        let e = ether::Frame::new_checked(&frame[..]).unwrap();
        assert_eq!(e.ethertype(), EtherType::Ipv4);
        let ip = ipv4::Packet::new_checked(e.payload()).unwrap();
        assert!(ip.verify_checksum());
        assert_eq!(ip.protocol(), ipv4::protocol::UDP);
        let dgram = udp::Datagram::new_checked(ip.payload()).unwrap();
        assert_eq!(dgram.dst_port(), udp::GTPU_PORT);
        assert!(dgram.verify_checksum(ip.src(), ip.dst()));
        let gtp = gtpu::Packet::new_checked(dgram.payload()).unwrap();
        assert_eq!(gtp.teid(), 0x100);
        let inner_ip = ipv4::Packet::new_checked(gtp.payload()).unwrap();
        assert!(inner_ip.verify_checksum());
        let inner = udp::Datagram::new_checked(inner_ip.payload()).unwrap();
        assert_eq!(inner.dst_port(), 5001);
        assert_eq!(inner.payload(), b"hello-upf");
    }

    #[test]
    fn pcap_stream_is_well_formed() {
        let mut buf = Vec::new();
        {
            let mut w = PcapWriter::new(&mut buf).unwrap();
            let f = build_gtp_frame(&flow(), &[0xab; 64]);
            for i in 0..10u64 {
                let t = SimTime::ZERO + SimDuration::from_micros(100 * i);
                w.write_frame(t, &f).unwrap();
            }
            assert_eq!(w.frames, 10);
            w.finish().unwrap();
        }
        // Global header.
        assert_eq!(
            u32::from_le_bytes(buf[0..4].try_into().unwrap()),
            PCAP_MAGIC
        );
        assert_eq!(
            u32::from_le_bytes(buf[20..24].try_into().unwrap()),
            LINKTYPE_ETHERNET
        );
        // First record header: ts=0, lengths equal.
        let cap = u32::from_le_bytes(buf[32..36].try_into().unwrap());
        let orig = u32::from_le_bytes(buf[36..40].try_into().unwrap());
        assert_eq!(cap, orig);
        // Total size adds up: 24 + 10 × (16 + framelen).
        assert_eq!(buf.len(), 24 + 10 * (16 + cap as usize));
    }

    #[test]
    fn timestamps_convert_to_sec_usec() {
        let mut buf = Vec::new();
        let mut w = PcapWriter::new(&mut buf).unwrap();
        let t = SimTime::from_nanos(3_000_123_456);
        w.write_frame(t, &[0u8; 14]).unwrap();
        w.finish().unwrap();
        let secs = u32::from_le_bytes(buf[24..28].try_into().unwrap());
        let usecs = u32::from_le_bytes(buf[28..32].try_into().unwrap());
        assert_eq!(secs, 3);
        assert_eq!(usecs, 123);
    }
}
