//! PFCP message header (3GPP TS 29.244 §7.2).
//!
//! Node-related messages (heartbeat, association) carry no SEID; session
//! messages set the S flag and carry the 8-byte SEID before the 3-byte
//! sequence number.

use crate::error::{Error, Result};

/// Header length without SEID.
pub const NODE_HEADER_LEN: usize = 8;
/// Header length with SEID (S flag set).
pub const SESSION_HEADER_LEN: usize = 16;

/// PFCP message types used by the 5GC (subset of TS 29.244 §7.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MsgType {
    /// Heartbeat Request (node).
    HeartbeatRequest,
    /// Heartbeat Response (node).
    HeartbeatResponse,
    /// Association Setup Request (node).
    AssociationSetupRequest,
    /// Association Setup Response (node).
    AssociationSetupResponse,
    /// Session Establishment Request.
    SessionEstablishmentRequest,
    /// Session Establishment Response.
    SessionEstablishmentResponse,
    /// Session Modification Request.
    SessionModificationRequest,
    /// Session Modification Response.
    SessionModificationResponse,
    /// Session Deletion Request.
    SessionDeletionRequest,
    /// Session Deletion Response.
    SessionDeletionResponse,
    /// Session Report Request (UPF → SMF, e.g. downlink data report).
    SessionReportRequest,
    /// Session Report Response.
    SessionReportResponse,
}

impl MsgType {
    /// The wire value.
    pub fn to_byte(self) -> u8 {
        match self {
            MsgType::HeartbeatRequest => 1,
            MsgType::HeartbeatResponse => 2,
            MsgType::AssociationSetupRequest => 5,
            MsgType::AssociationSetupResponse => 6,
            MsgType::SessionEstablishmentRequest => 50,
            MsgType::SessionEstablishmentResponse => 51,
            MsgType::SessionModificationRequest => 52,
            MsgType::SessionModificationResponse => 53,
            MsgType::SessionDeletionRequest => 54,
            MsgType::SessionDeletionResponse => 55,
            MsgType::SessionReportRequest => 56,
            MsgType::SessionReportResponse => 57,
        }
    }

    /// Parses the wire value.
    pub fn from_byte(b: u8) -> Result<MsgType> {
        Ok(match b {
            1 => MsgType::HeartbeatRequest,
            2 => MsgType::HeartbeatResponse,
            5 => MsgType::AssociationSetupRequest,
            6 => MsgType::AssociationSetupResponse,
            50 => MsgType::SessionEstablishmentRequest,
            51 => MsgType::SessionEstablishmentResponse,
            52 => MsgType::SessionModificationRequest,
            53 => MsgType::SessionModificationResponse,
            54 => MsgType::SessionDeletionRequest,
            55 => MsgType::SessionDeletionResponse,
            56 => MsgType::SessionReportRequest,
            57 => MsgType::SessionReportResponse,
            _ => return Err(Error::UnknownType),
        })
    }

    /// True for session-scoped messages, which carry a SEID.
    pub fn is_session(self) -> bool {
        self.to_byte() >= 50
    }
}

/// A parsed PFCP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    /// Message type; decides whether `seid` is present on the wire.
    pub msg_type: MsgType,
    /// Session endpoint identifier (session messages only).
    pub seid: Option<u64>,
    /// 24-bit transaction sequence number.
    pub seq: u32,
    /// Body length in bytes (everything after the header).
    pub body_len: usize,
}

impl Header {
    /// Length of this header on the wire.
    pub fn header_len(&self) -> usize {
        if self.seid.is_some() {
            SESSION_HEADER_LEN
        } else {
            NODE_HEADER_LEN
        }
    }

    /// Parses a header from the front of `buf`; returns it and the offset
    /// at which the body begins.
    pub fn parse(buf: &[u8]) -> Result<(Header, usize)> {
        if buf.len() < NODE_HEADER_LEN {
            return Err(Error::Truncated);
        }
        if buf[0] >> 5 != 1 {
            return Err(Error::BadVersion);
        }
        let s_flag = buf[0] & 0x01 != 0;
        let msg_type = MsgType::from_byte(buf[1])?;
        if s_flag != msg_type.is_session() {
            return Err(Error::Malformed);
        }
        // Wire length counts everything after the 4-byte prefix.
        let wire_len = usize::from(u16::from_be_bytes([buf[2], buf[3]]));
        let header_len = if s_flag {
            SESSION_HEADER_LEN
        } else {
            NODE_HEADER_LEN
        };
        if buf.len() < 4 + wire_len || 4 + wire_len < header_len {
            return Err(Error::Truncated);
        }
        let (seid, seq_off) = if s_flag {
            let seid = u64::from_be_bytes(buf[4..12].try_into().expect("8 bytes"));
            (Some(seid), 12)
        } else {
            (None, 4)
        };
        let seq = u32::from_be_bytes([0, buf[seq_off], buf[seq_off + 1], buf[seq_off + 2]]);
        Ok((
            Header {
                msg_type,
                seid,
                seq,
                body_len: 4 + wire_len - header_len,
            },
            header_len,
        ))
    }

    /// Emits the header into the front of `buf`, which must hold at least
    /// `header_len()` bytes. Panics if `seid.is_some()` disagrees with the
    /// message type's session-ness (a programming error, not input error).
    pub fn emit(&self, buf: &mut [u8]) -> Result<usize> {
        let hlen = self.header_len();
        assert_eq!(
            self.seid.is_some(),
            self.msg_type.is_session(),
            "SEID presence must match message type"
        );
        if buf.len() < hlen {
            return Err(Error::BufferTooSmall);
        }
        buf[0] = (1 << 5) | if self.seid.is_some() { 0x01 } else { 0 };
        buf[1] = self.msg_type.to_byte();
        let wire_len = hlen - 4 + self.body_len;
        buf[2..4].copy_from_slice(&(wire_len as u16).to_be_bytes());
        let seq_off = if let Some(seid) = self.seid {
            buf[4..12].copy_from_slice(&seid.to_be_bytes());
            12
        } else {
            4
        };
        let seq_bytes = self.seq.to_be_bytes();
        buf[seq_off..seq_off + 3].copy_from_slice(&seq_bytes[1..4]);
        buf[seq_off + 3] = 0; // spare
        Ok(hlen)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_header_roundtrip() {
        let h = Header {
            msg_type: MsgType::HeartbeatRequest,
            seid: None,
            seq: 0x00ab_cdef,
            body_len: 4,
        };
        let mut buf = vec![0u8; NODE_HEADER_LEN + 4];
        let n = h.emit(&mut buf).unwrap();
        assert_eq!(n, NODE_HEADER_LEN);
        let (parsed, off) = Header::parse(&buf).unwrap();
        assert_eq!(parsed, h);
        assert_eq!(off, NODE_HEADER_LEN);
    }

    #[test]
    fn session_header_roundtrip() {
        let h = Header {
            msg_type: MsgType::SessionEstablishmentRequest,
            seid: Some(0x1122_3344_5566_7788),
            seq: 42,
            body_len: 10,
        };
        let mut buf = vec![0u8; SESSION_HEADER_LEN + 10];
        let n = h.emit(&mut buf).unwrap();
        assert_eq!(n, SESSION_HEADER_LEN);
        let (parsed, off) = Header::parse(&buf).unwrap();
        assert_eq!(parsed, h);
        assert_eq!(off, SESSION_HEADER_LEN);
    }

    #[test]
    fn seq_is_24_bits() {
        let h = Header {
            msg_type: MsgType::HeartbeatRequest,
            seid: None,
            seq: 0xffff_ffff,
            body_len: 0,
        };
        let mut buf = vec![0u8; NODE_HEADER_LEN];
        h.emit(&mut buf).unwrap();
        let (parsed, _) = Header::parse(&buf).unwrap();
        assert_eq!(parsed.seq, 0x00ff_ffff);
    }

    #[test]
    fn s_flag_must_match_type() {
        // Session type with S=0 is malformed.
        let h = Header {
            msg_type: MsgType::HeartbeatRequest,
            seid: None,
            seq: 1,
            body_len: 0,
        };
        let mut buf = vec![0u8; NODE_HEADER_LEN];
        h.emit(&mut buf).unwrap();
        buf[1] = MsgType::SessionReportRequest.to_byte();
        assert_eq!(Header::parse(&buf).unwrap_err(), Error::Malformed);
    }

    #[test]
    fn bad_version_rejected() {
        let mut buf = vec![0u8; NODE_HEADER_LEN];
        buf[0] = 3 << 5;
        assert_eq!(Header::parse(&buf).unwrap_err(), Error::BadVersion);
    }

    #[test]
    fn truncated_body_rejected() {
        let h = Header {
            msg_type: MsgType::HeartbeatRequest,
            seid: None,
            seq: 1,
            body_len: 100,
        };
        let mut buf = vec![0u8; NODE_HEADER_LEN];
        h.emit(&mut buf).unwrap();
        assert_eq!(Header::parse(&buf).unwrap_err(), Error::Truncated);
    }
}
