//! PFCP Information Elements (TS 29.244 §8), TLV-encoded.
//!
//! This implements the IEs the 5GC procedures actually exchange: PDR/FAR
//! create & update groups, PDI with SDF filters, F-TEID, UE IP address,
//! apply actions (including BUFF, which L²5GC's smart handover piggybacks
//! on), and reporting IEs for downlink-data (paging) notifications.
//!
//! *Simplification, documented:* 3GPP encodes SDF filters as an IPFilterRule
//! string; we use a fixed 36-byte binary layout carrying the same match
//! fields (the classifier dimensions of Appendix A, Table 3). Flag octets
//! elsewhere follow the spec where practical.

use crate::error::{Error, Result};
use crate::ipv4::Ipv4Addr;

// IE type codes from TS 29.244 Table 8.1.2-1 (subset).
const IE_CREATE_PDR: u16 = 1;
const IE_PDI: u16 = 2;
const IE_CREATE_FAR: u16 = 3;
const IE_FORWARDING_PARAMETERS: u16 = 4;
const IE_CREATE_QER: u16 = 7;
const IE_UPDATE_PDR: u16 = 9;
const IE_UPDATE_FAR: u16 = 10;
const IE_UPDATE_FORWARDING_PARAMETERS: u16 = 11;
const IE_CAUSE: u16 = 19;
const IE_SOURCE_INTERFACE: u16 = 20;
const IE_FTEID: u16 = 21;
const IE_SDF_FILTER: u16 = 23;
const IE_PRECEDENCE: u16 = 29;
const IE_REPORT_TYPE: u16 = 39;
const IE_DESTINATION_INTERFACE: u16 = 42;
const IE_APPLY_ACTION: u16 = 44;
const IE_PDR_ID: u16 = 56;
const IE_FSEID: u16 = 57;
const IE_NODE_ID: u16 = 60;
const IE_DOWNLINK_DATA_REPORT: u16 = 83;
const IE_OUTER_HEADER_CREATION: u16 = 84;
const IE_UE_IP_ADDRESS: u16 = 93;
const IE_OUTER_HEADER_REMOVAL: u16 = 95;
const IE_FAR_ID: u16 = 108;
const IE_QER_ID: u16 = 109;
const IE_MBR: u16 = 26;
const IE_QFI: u16 = 124;

/// Appends one TLV IE built by `f` to `out`.
fn put_tlv(out: &mut Vec<u8>, ty: u16, f: impl FnOnce(&mut Vec<u8>)) {
    out.extend_from_slice(&ty.to_be_bytes());
    let len_pos = out.len();
    out.extend_from_slice(&[0, 0]);
    f(out);
    let len = (out.len() - len_pos - 2) as u16;
    out[len_pos..len_pos + 2].copy_from_slice(&len.to_be_bytes());
}

/// Iterates `(type, value)` pairs over an IE sequence.
struct IeReader<'a> {
    buf: &'a [u8],
}

impl<'a> IeReader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        IeReader { buf }
    }

    fn next_ie(&mut self) -> Result<Option<(u16, &'a [u8])>> {
        if self.buf.is_empty() {
            return Ok(None);
        }
        if self.buf.len() < 4 {
            return Err(Error::Truncated);
        }
        let ty = u16::from_be_bytes([self.buf[0], self.buf[1]]);
        let len = usize::from(u16::from_be_bytes([self.buf[2], self.buf[3]]));
        if self.buf.len() < 4 + len {
            return Err(Error::Truncated);
        }
        let value = &self.buf[4..4 + len];
        self.buf = &self.buf[4 + len..];
        Ok(Some((ty, value)))
    }
}

fn need(value: &[u8], n: usize) -> Result<()> {
    if value.len() < n {
        Err(Error::Truncated)
    } else {
        Ok(())
    }
}

/// Which side of the UPF a packet arrives on (PDI Source Interface).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interface {
    /// Access side: from the gNB (uplink).
    Access,
    /// Core side: from the data network (downlink).
    Core,
}

impl Interface {
    fn to_byte(self) -> u8 {
        match self {
            Interface::Access => 0,
            Interface::Core => 1,
        }
    }

    fn from_byte(b: u8) -> Result<Interface> {
        Ok(match b & 0x0f {
            0 => Interface::Access,
            1 => Interface::Core,
            _ => return Err(Error::Malformed),
        })
    }
}

/// Fully-qualified TEID: the local tunnel endpoint a PDR matches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FTeid {
    /// Tunnel endpoint identifier.
    pub teid: u32,
    /// Local IPv4 address of the endpoint.
    pub addr: Ipv4Addr,
}

impl FTeid {
    fn encode(&self, out: &mut Vec<u8>) {
        put_tlv(out, IE_FTEID, |b| {
            b.push(0x01); // flags: V4
            b.extend_from_slice(&self.teid.to_be_bytes());
            b.extend_from_slice(&self.addr.0);
        });
    }

    fn decode(value: &[u8]) -> Result<FTeid> {
        need(value, 9)?;
        if value[0] & 0x01 == 0 {
            return Err(Error::Malformed);
        }
        Ok(FTeid {
            teid: u32::from_be_bytes(value[1..5].try_into().expect("4 bytes")),
            addr: Ipv4Addr([value[5], value[6], value[7], value[8]]),
        })
    }
}

/// UE IP address (the downlink session-lookup key).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UeIpAddress {
    /// The UE's IPv4 address.
    pub addr: Ipv4Addr,
    /// True when the address is the packet *destination* (downlink match).
    pub is_destination: bool,
}

impl UeIpAddress {
    fn encode(&self, out: &mut Vec<u8>) {
        put_tlv(out, IE_UE_IP_ADDRESS, |b| {
            // flags: V4 | S/D
            b.push(0x02 | if self.is_destination { 0x04 } else { 0 });
            b.extend_from_slice(&self.addr.0);
        });
    }

    fn decode(value: &[u8]) -> Result<UeIpAddress> {
        need(value, 5)?;
        if value[0] & 0x02 == 0 {
            return Err(Error::Malformed);
        }
        Ok(UeIpAddress {
            addr: Ipv4Addr([value[1], value[2], value[3], value[4]]),
            is_destination: value[0] & 0x04 != 0,
        })
    }
}

/// A port range, inclusive. `0..=65535` means "any".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortRange {
    /// Lowest matching port.
    pub min: u16,
    /// Highest matching port.
    pub max: u16,
}

impl PortRange {
    /// The wildcard range matching every port.
    pub const ANY: PortRange = PortRange {
        min: 0,
        max: u16::MAX,
    };

    /// A range matching exactly one port.
    pub const fn exact(p: u16) -> PortRange {
        PortRange { min: p, max: p }
    }

    /// True if `p` falls within the range.
    pub fn contains(&self, p: u16) -> bool {
        self.min <= p && p <= self.max
    }
}

/// Service Data Flow filter: the match-field payload of a PDI.
///
/// Carries the classifier dimensions of Appendix A Table 3. Fixed 36-byte
/// binary layout (simplification of 3GPP's IPFilterRule string; see module
/// docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SdfFilter {
    /// Source address prefix value.
    pub src_addr: Ipv4Addr,
    /// Source prefix length (0 = wildcard, 32 = host).
    pub src_prefix: u8,
    /// Destination address prefix value.
    pub dst_addr: Ipv4Addr,
    /// Destination prefix length.
    pub dst_prefix: u8,
    /// Source port range.
    pub src_port: PortRange,
    /// Destination port range.
    pub dst_port: PortRange,
    /// IP protocol, or `None` for any.
    pub protocol: Option<u8>,
    /// Type-of-service value/mask pair.
    pub tos: u8,
    /// ToS mask (0 = wildcard).
    pub tos_mask: u8,
    /// IPsec SPI, or `None` for any.
    pub spi: Option<u32>,
    /// IPv6 flow label (20 bits), or `None` for any.
    pub flow_label: Option<u32>,
    /// SDF filter id, correlating filters across PDRs.
    pub filter_id: u32,
}

impl Default for SdfFilter {
    /// The match-everything filter.
    fn default() -> Self {
        SdfFilter {
            src_addr: Ipv4Addr::default(),
            src_prefix: 0,
            dst_addr: Ipv4Addr::default(),
            dst_prefix: 0,
            src_port: PortRange::ANY,
            dst_port: PortRange::ANY,
            protocol: None,
            tos: 0,
            tos_mask: 0,
            spi: None,
            flow_label: None,
            filter_id: 0,
        }
    }
}

impl SdfFilter {
    const WIRE_LEN: usize = 36;

    fn encode(&self, out: &mut Vec<u8>) {
        put_tlv(out, IE_SDF_FILTER, |b| {
            b.extend_from_slice(&self.src_addr.0);
            b.push(self.src_prefix);
            b.extend_from_slice(&self.dst_addr.0);
            b.push(self.dst_prefix);
            b.extend_from_slice(&self.src_port.min.to_be_bytes());
            b.extend_from_slice(&self.src_port.max.to_be_bytes());
            b.extend_from_slice(&self.dst_port.min.to_be_bytes());
            b.extend_from_slice(&self.dst_port.max.to_be_bytes());
            b.push(self.protocol.unwrap_or(0));
            b.push(self.protocol.is_some() as u8);
            b.push(self.tos);
            b.push(self.tos_mask);
            b.extend_from_slice(&self.spi.unwrap_or(0).to_be_bytes());
            b.push(self.spi.is_some() as u8);
            b.extend_from_slice(&self.flow_label.unwrap_or(0).to_be_bytes());
            b.push(self.flow_label.is_some() as u8);
            b.extend_from_slice(&self.filter_id.to_be_bytes());
        });
    }

    fn decode(v: &[u8]) -> Result<SdfFilter> {
        need(v, Self::WIRE_LEN)?;
        let u16at = |i: usize| u16::from_be_bytes([v[i], v[i + 1]]);
        let u32at = |i: usize| u32::from_be_bytes([v[i], v[i + 1], v[i + 2], v[i + 3]]);
        let src_prefix = v[4];
        let dst_prefix = v[9];
        if src_prefix > 32 || dst_prefix > 32 {
            return Err(Error::Malformed);
        }
        Ok(SdfFilter {
            src_addr: Ipv4Addr([v[0], v[1], v[2], v[3]]),
            src_prefix,
            dst_addr: Ipv4Addr([v[5], v[6], v[7], v[8]]),
            dst_prefix,
            src_port: PortRange {
                min: u16at(10),
                max: u16at(12),
            },
            dst_port: PortRange {
                min: u16at(14),
                max: u16at(16),
            },
            protocol: if v[19] != 0 { Some(v[18]) } else { None },
            tos: v[20],
            tos_mask: v[21],
            spi: if v[26] != 0 { Some(u32at(22)) } else { None },
            flow_label: if v[31] != 0 {
                Some(u32at(27) & 0x000f_ffff)
            } else {
                None
            },
            filter_id: u32at(32),
        })
    }
}

/// Packet Detection Information: where and what a PDR matches.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Pdi {
    /// Which interface packets arrive on. `None` defaults to Access.
    pub source_interface: Option<Interface>,
    /// Local F-TEID to match (uplink PDRs).
    pub f_teid: Option<FTeid>,
    /// UE IP to match (downlink PDRs).
    pub ue_ip: Option<UeIpAddress>,
    /// SDF filters for flow-level classification; empty = match all flows.
    pub sdf_filters: Vec<SdfFilter>,
    /// QoS Flow Identifier to match.
    pub qfi: Option<u8>,
}

impl Pdi {
    fn encode(&self, out: &mut Vec<u8>) {
        put_tlv(out, IE_PDI, |b| {
            if let Some(si) = self.source_interface {
                put_tlv(b, IE_SOURCE_INTERFACE, |b| b.push(si.to_byte()));
            }
            if let Some(ft) = &self.f_teid {
                ft.encode(b);
            }
            if let Some(ue) = &self.ue_ip {
                ue.encode(b);
            }
            for f in &self.sdf_filters {
                f.encode(b);
            }
            if let Some(qfi) = self.qfi {
                put_tlv(b, IE_QFI, |b| b.push(qfi & 0x3f));
            }
        });
    }

    fn decode(value: &[u8]) -> Result<Pdi> {
        let mut pdi = Pdi::default();
        let mut r = IeReader::new(value);
        while let Some((ty, v)) = r.next_ie()? {
            match ty {
                IE_SOURCE_INTERFACE => {
                    need(v, 1)?;
                    pdi.source_interface = Some(Interface::from_byte(v[0])?);
                }
                IE_FTEID => pdi.f_teid = Some(FTeid::decode(v)?),
                IE_UE_IP_ADDRESS => pdi.ue_ip = Some(UeIpAddress::decode(v)?),
                IE_SDF_FILTER => pdi.sdf_filters.push(SdfFilter::decode(v)?),
                IE_QFI => {
                    need(v, 1)?;
                    pdi.qfi = Some(v[0] & 0x3f);
                }
                _ => {} // unknown optional IEs are skipped
            }
        }
        Ok(pdi)
    }
}

/// FAR apply-action flags (TS 29.244 §8.2.26).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ApplyAction {
    /// Drop the packet.
    pub drop: bool,
    /// Forward the packet.
    pub forward: bool,
    /// Buffer the packet (paging; L²5GC also sets this during handover).
    pub buffer: bool,
    /// Notify the CP function (triggers a Session Report → paging).
    pub notify_cp: bool,
    /// Duplicate the packet.
    pub duplicate: bool,
}

impl ApplyAction {
    /// Plain forwarding.
    pub const FORW: ApplyAction = ApplyAction {
        drop: false,
        forward: true,
        buffer: false,
        notify_cp: false,
        duplicate: false,
    };
    /// Buffer and notify the control plane — the idle-mode (paging) action.
    pub const BUFF_NOCP: ApplyAction = ApplyAction {
        drop: false,
        forward: false,
        buffer: true,
        notify_cp: true,
        duplicate: false,
    };
    /// Buffer without notification — L²5GC's smart-handover action.
    pub const BUFF: ApplyAction = ApplyAction {
        drop: false,
        forward: false,
        buffer: true,
        notify_cp: false,
        duplicate: false,
    };
    /// Drop.
    pub const DROP: ApplyAction = ApplyAction {
        drop: true,
        forward: false,
        buffer: false,
        notify_cp: false,
        duplicate: false,
    };

    fn to_byte(self) -> u8 {
        (self.drop as u8)
            | (self.forward as u8) << 1
            | (self.buffer as u8) << 2
            | (self.notify_cp as u8) << 3
            | (self.duplicate as u8) << 4
    }

    fn from_byte(b: u8) -> ApplyAction {
        ApplyAction {
            drop: b & 0x01 != 0,
            forward: b & 0x02 != 0,
            buffer: b & 0x04 != 0,
            notify_cp: b & 0x08 != 0,
            duplicate: b & 0x10 != 0,
        }
    }
}

/// Outer header creation: GTP-U/UDP/IPv4 toward `addr` with `teid`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OuterHeaderCreation {
    /// TEID to stamp on the outgoing tunnel header.
    pub teid: u32,
    /// Remote tunnel endpoint (gNB for downlink).
    pub addr: Ipv4Addr,
}

impl OuterHeaderCreation {
    fn encode(&self, out: &mut Vec<u8>) {
        put_tlv(out, IE_OUTER_HEADER_CREATION, |b| {
            b.extend_from_slice(&0x0100u16.to_be_bytes()); // GTP-U/UDP/IPv4
            b.extend_from_slice(&self.teid.to_be_bytes());
            b.extend_from_slice(&self.addr.0);
        });
    }

    fn decode(v: &[u8]) -> Result<OuterHeaderCreation> {
        need(v, 10)?;
        Ok(OuterHeaderCreation {
            teid: u32::from_be_bytes(v[2..6].try_into().expect("4 bytes")),
            addr: Ipv4Addr([v[6], v[7], v[8], v[9]]),
        })
    }
}

/// Forwarding parameters inside a (Create/Update) FAR.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ForwardingParameters {
    /// Interface packets leave through.
    pub dest_interface: Interface,
    /// Tunnel header to add (downlink toward a gNB).
    pub outer_header_creation: Option<OuterHeaderCreation>,
}

impl ForwardingParameters {
    fn encode(&self, out: &mut Vec<u8>, ie_type: u16) {
        put_tlv(out, ie_type, |b| {
            put_tlv(b, IE_DESTINATION_INTERFACE, |b| {
                b.push(self.dest_interface.to_byte())
            });
            if let Some(ohc) = &self.outer_header_creation {
                ohc.encode(b);
            }
        });
    }

    fn decode(value: &[u8]) -> Result<ForwardingParameters> {
        let mut dest = None;
        let mut ohc = None;
        let mut r = IeReader::new(value);
        while let Some((ty, v)) = r.next_ie()? {
            match ty {
                IE_DESTINATION_INTERFACE => {
                    need(v, 1)?;
                    dest = Some(Interface::from_byte(v[0])?);
                }
                IE_OUTER_HEADER_CREATION => ohc = Some(OuterHeaderCreation::decode(v)?),
                _ => {}
            }
        }
        Ok(ForwardingParameters {
            dest_interface: dest.ok_or(Error::Malformed)?,
            outer_header_creation: ohc,
        })
    }
}

/// Create PDR grouped IE.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CreatePdr {
    /// Rule id, unique within the session.
    pub pdr_id: u16,
    /// Precedence: lower value = higher priority (TS 29.244).
    pub precedence: u32,
    /// What the rule matches.
    pub pdi: Pdi,
    /// Whether to strip the GTP-U header on match.
    pub outer_header_removal: bool,
    /// FAR carrying the action for matched packets.
    pub far_id: u32,
    /// Associated QoS enforcement rules.
    pub qer_ids: Vec<u32>,
}

impl CreatePdr {
    fn encode_grouped(&self, out: &mut Vec<u8>, ie_type: u16) {
        put_tlv(out, ie_type, |b| {
            put_tlv(b, IE_PDR_ID, |b| {
                b.extend_from_slice(&self.pdr_id.to_be_bytes())
            });
            put_tlv(b, IE_PRECEDENCE, |b| {
                b.extend_from_slice(&self.precedence.to_be_bytes())
            });
            self.pdi.encode(b);
            if self.outer_header_removal {
                put_tlv(b, IE_OUTER_HEADER_REMOVAL, |b| b.push(0)); // GTP-U/UDP/IPv4
            }
            put_tlv(b, IE_FAR_ID, |b| {
                b.extend_from_slice(&self.far_id.to_be_bytes())
            });
            for q in &self.qer_ids {
                put_tlv(b, IE_QER_ID, |b| b.extend_from_slice(&q.to_be_bytes()));
            }
        });
    }

    /// Encodes as a Create PDR IE.
    pub fn encode(&self, out: &mut Vec<u8>) {
        self.encode_grouped(out, IE_CREATE_PDR);
    }

    fn decode(value: &[u8]) -> Result<CreatePdr> {
        let mut pdr_id = None;
        let mut precedence = None;
        let mut pdi = None;
        let mut ohr = false;
        let mut far_id = None;
        let mut qer_ids = Vec::new();
        let mut r = IeReader::new(value);
        while let Some((ty, v)) = r.next_ie()? {
            match ty {
                IE_PDR_ID => {
                    need(v, 2)?;
                    pdr_id = Some(u16::from_be_bytes([v[0], v[1]]));
                }
                IE_PRECEDENCE => {
                    need(v, 4)?;
                    precedence = Some(u32::from_be_bytes(v[..4].try_into().expect("4")));
                }
                IE_PDI => pdi = Some(Pdi::decode(v)?),
                IE_OUTER_HEADER_REMOVAL => ohr = true,
                IE_FAR_ID => {
                    need(v, 4)?;
                    far_id = Some(u32::from_be_bytes(v[..4].try_into().expect("4")));
                }
                IE_QER_ID => {
                    need(v, 4)?;
                    qer_ids.push(u32::from_be_bytes(v[..4].try_into().expect("4")));
                }
                _ => {}
            }
        }
        Ok(CreatePdr {
            pdr_id: pdr_id.ok_or(Error::Malformed)?,
            precedence: precedence.ok_or(Error::Malformed)?,
            pdi: pdi.ok_or(Error::Malformed)?,
            outer_header_removal: ohr,
            far_id: far_id.ok_or(Error::Malformed)?,
            qer_ids,
        })
    }
}

/// Create FAR grouped IE.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CreateFar {
    /// Rule id referenced by PDRs.
    pub far_id: u32,
    /// What to do with matched packets.
    pub apply_action: ApplyAction,
    /// Where to forward (required when `apply_action.forward`).
    pub forwarding: Option<ForwardingParameters>,
}

impl CreateFar {
    fn encode_grouped(&self, out: &mut Vec<u8>, ie_type: u16, fwd_type: u16) {
        put_tlv(out, ie_type, |b| {
            put_tlv(b, IE_FAR_ID, |b| {
                b.extend_from_slice(&self.far_id.to_be_bytes())
            });
            put_tlv(b, IE_APPLY_ACTION, |b| b.push(self.apply_action.to_byte()));
            if let Some(fp) = &self.forwarding {
                fp.encode(b, fwd_type);
            }
        });
    }

    /// Encodes as a Create FAR IE.
    pub fn encode(&self, out: &mut Vec<u8>) {
        self.encode_grouped(out, IE_CREATE_FAR, IE_FORWARDING_PARAMETERS);
    }

    fn decode(value: &[u8]) -> Result<CreateFar> {
        let mut far_id = None;
        let mut action = None;
        let mut fwd = None;
        let mut r = IeReader::new(value);
        while let Some((ty, v)) = r.next_ie()? {
            match ty {
                IE_FAR_ID => {
                    need(v, 4)?;
                    far_id = Some(u32::from_be_bytes(v[..4].try_into().expect("4")));
                }
                IE_APPLY_ACTION => {
                    need(v, 1)?;
                    action = Some(ApplyAction::from_byte(v[0]));
                }
                IE_FORWARDING_PARAMETERS | IE_UPDATE_FORWARDING_PARAMETERS => {
                    fwd = Some(ForwardingParameters::decode(v)?);
                }
                _ => {}
            }
        }
        Ok(CreateFar {
            far_id: far_id.ok_or(Error::Malformed)?,
            apply_action: action.ok_or(Error::Malformed)?,
            forwarding: fwd,
        })
    }
}

/// Update FAR grouped IE — the workhorse of paging wake-up and L²5GC's
/// smart-handover re-pointing ("UpdateFAR" in Fig 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpdateFar {
    /// FAR to update.
    pub far_id: u32,
    /// New apply action, if changing.
    pub apply_action: Option<ApplyAction>,
    /// New forwarding parameters (e.g. target gNB's F-TEID after handover).
    pub forwarding: Option<ForwardingParameters>,
}

impl UpdateFar {
    /// Encodes as an Update FAR IE.
    pub fn encode(&self, out: &mut Vec<u8>) {
        put_tlv(out, IE_UPDATE_FAR, |b| {
            put_tlv(b, IE_FAR_ID, |b| {
                b.extend_from_slice(&self.far_id.to_be_bytes())
            });
            if let Some(a) = self.apply_action {
                put_tlv(b, IE_APPLY_ACTION, |b| b.push(a.to_byte()));
            }
            if let Some(fp) = &self.forwarding {
                fp.encode(b, IE_UPDATE_FORWARDING_PARAMETERS);
            }
        });
    }

    fn decode(value: &[u8]) -> Result<UpdateFar> {
        let mut far_id = None;
        let mut action = None;
        let mut fwd = None;
        let mut r = IeReader::new(value);
        while let Some((ty, v)) = r.next_ie()? {
            match ty {
                IE_FAR_ID => {
                    need(v, 4)?;
                    far_id = Some(u32::from_be_bytes(v[..4].try_into().expect("4")));
                }
                IE_APPLY_ACTION => {
                    need(v, 1)?;
                    action = Some(ApplyAction::from_byte(v[0]));
                }
                IE_UPDATE_FORWARDING_PARAMETERS => fwd = Some(ForwardingParameters::decode(v)?),
                _ => {}
            }
        }
        Ok(UpdateFar {
            far_id: far_id.ok_or(Error::Malformed)?,
            apply_action: action,
            forwarding: fwd,
        })
    }
}

/// Update PDR grouped IE.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpdatePdr {
    /// PDR to update.
    pub pdr_id: u16,
    /// New precedence, if changing.
    pub precedence: Option<u32>,
    /// New PDI, if changing.
    pub pdi: Option<Pdi>,
    /// New FAR binding, if changing.
    pub far_id: Option<u32>,
}

impl UpdatePdr {
    /// Encodes as an Update PDR IE.
    pub fn encode(&self, out: &mut Vec<u8>) {
        put_tlv(out, IE_UPDATE_PDR, |b| {
            put_tlv(b, IE_PDR_ID, |b| {
                b.extend_from_slice(&self.pdr_id.to_be_bytes())
            });
            if let Some(p) = self.precedence {
                put_tlv(b, IE_PRECEDENCE, |b| b.extend_from_slice(&p.to_be_bytes()));
            }
            if let Some(pdi) = &self.pdi {
                pdi.encode(b);
            }
            if let Some(f) = self.far_id {
                put_tlv(b, IE_FAR_ID, |b| b.extend_from_slice(&f.to_be_bytes()));
            }
        });
    }

    fn decode(value: &[u8]) -> Result<UpdatePdr> {
        let mut pdr_id = None;
        let mut precedence = None;
        let mut pdi = None;
        let mut far_id = None;
        let mut r = IeReader::new(value);
        while let Some((ty, v)) = r.next_ie()? {
            match ty {
                IE_PDR_ID => {
                    need(v, 2)?;
                    pdr_id = Some(u16::from_be_bytes([v[0], v[1]]));
                }
                IE_PRECEDENCE => {
                    need(v, 4)?;
                    precedence = Some(u32::from_be_bytes(v[..4].try_into().expect("4")));
                }
                IE_PDI => pdi = Some(Pdi::decode(v)?),
                IE_FAR_ID => {
                    need(v, 4)?;
                    far_id = Some(u32::from_be_bytes(v[..4].try_into().expect("4")));
                }
                _ => {}
            }
        }
        Ok(UpdatePdr {
            pdr_id: pdr_id.ok_or(Error::Malformed)?,
            precedence,
            pdi,
            far_id,
        })
    }
}

/// Create QER grouped IE (simplified: QER id + session MBR; GBR and
/// gate status are out of scope for the experiments).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CreateQer {
    /// Rule id referenced by PDRs.
    pub qer_id: u32,
    /// Maximum bit rate in bits/s; 0 = unlimited.
    pub mbr_bps: u64,
}

impl CreateQer {
    /// Encodes as a Create QER IE.
    pub fn encode(&self, out: &mut Vec<u8>) {
        put_tlv(out, IE_CREATE_QER, |b| {
            put_tlv(b, IE_QER_ID, |b| {
                b.extend_from_slice(&self.qer_id.to_be_bytes())
            });
            put_tlv(b, IE_MBR, |b| {
                b.extend_from_slice(&self.mbr_bps.to_be_bytes())
            });
        });
    }

    fn decode(value: &[u8]) -> Result<CreateQer> {
        let mut qer_id = None;
        let mut mbr = 0u64;
        let mut r = IeReader::new(value);
        while let Some((ty, v)) = r.next_ie()? {
            match ty {
                IE_QER_ID => {
                    need(v, 4)?;
                    qer_id = Some(u32::from_be_bytes(v[..4].try_into().expect("4")));
                }
                IE_MBR => {
                    need(v, 8)?;
                    mbr = u64::from_be_bytes(v[..8].try_into().expect("8"));
                }
                _ => {}
            }
        }
        Ok(CreateQer {
            qer_id: qer_id.ok_or(Error::Malformed)?,
            mbr_bps: mbr,
        })
    }
}

/// PFCP cause values (subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cause {
    /// Request accepted.
    Accepted,
    /// Request rejected for an unspecified reason.
    Rejected,
    /// Referenced session was not found.
    SessionNotFound,
    /// A mandatory IE was missing.
    MandatoryIeMissing,
}

impl Cause {
    fn to_byte(self) -> u8 {
        match self {
            Cause::Accepted => 1,
            Cause::Rejected => 64,
            Cause::SessionNotFound => 65,
            Cause::MandatoryIeMissing => 66,
        }
    }

    fn from_byte(b: u8) -> Result<Cause> {
        Ok(match b {
            1 => Cause::Accepted,
            64 => Cause::Rejected,
            65 => Cause::SessionNotFound,
            66 => Cause::MandatoryIeMissing,
            _ => return Err(Error::Malformed),
        })
    }
}

/// What a Session Report announces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReportType {
    /// Downlink data arrived for a buffering session (paging trigger).
    pub downlink_data: bool,
}

/// The body IEs a PFCP message may carry, in decoded form.
///
/// A flat container keeps encode/decode simple; which fields are meaningful
/// depends on the message type (see `pfcp::msg`).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct IeSet {
    /// Node id of the sender (IPv4 form only).
    pub node_id: Option<Ipv4Addr>,
    /// CP/UP F-SEID: session id + address.
    pub f_seid: Option<(u64, Ipv4Addr)>,
    /// Cause (responses).
    pub cause: Option<Cause>,
    /// PDRs to create.
    pub create_pdrs: Vec<CreatePdr>,
    /// FARs to create.
    pub create_fars: Vec<CreateFar>,
    /// QERs to create.
    pub create_qers: Vec<CreateQer>,
    /// PDRs to update.
    pub update_pdrs: Vec<UpdatePdr>,
    /// FARs to update.
    pub update_fars: Vec<UpdateFar>,
    /// Report type (Session Report Request).
    pub report_downlink_data: bool,
    /// PDR that triggered a downlink-data report.
    pub downlink_data_pdr: Option<u16>,
}

impl IeSet {
    /// Encodes all present IEs into `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        if let Some(nid) = self.node_id {
            put_tlv(out, IE_NODE_ID, |b| {
                b.push(0); // IPv4 node id type
                b.extend_from_slice(&nid.0);
            });
        }
        if let Some((seid, addr)) = self.f_seid {
            put_tlv(out, IE_FSEID, |b| {
                b.push(0x02); // V4
                b.extend_from_slice(&seid.to_be_bytes());
                b.extend_from_slice(&addr.0);
            });
        }
        if let Some(c) = self.cause {
            put_tlv(out, IE_CAUSE, |b| b.push(c.to_byte()));
        }
        for p in &self.create_pdrs {
            p.encode(out);
        }
        for f in &self.create_fars {
            f.encode(out);
        }
        for q in &self.create_qers {
            q.encode(out);
        }
        for p in &self.update_pdrs {
            p.encode(out);
        }
        for f in &self.update_fars {
            f.encode(out);
        }
        if self.report_downlink_data {
            put_tlv(out, IE_REPORT_TYPE, |b| b.push(0x01)); // DLDR bit
            if let Some(pdr) = self.downlink_data_pdr {
                put_tlv(out, IE_DOWNLINK_DATA_REPORT, |b| {
                    put_tlv(b, IE_PDR_ID, |b| b.extend_from_slice(&pdr.to_be_bytes()));
                });
            }
        }
    }

    /// Decodes a message body into an `IeSet`. Unknown IEs are skipped
    /// (forward compatibility, like real PFCP stacks).
    pub fn decode(body: &[u8]) -> Result<IeSet> {
        let mut set = IeSet::default();
        let mut r = IeReader::new(body);
        while let Some((ty, v)) = r.next_ie()? {
            match ty {
                IE_NODE_ID => {
                    need(v, 5)?;
                    set.node_id = Some(Ipv4Addr([v[1], v[2], v[3], v[4]]));
                }
                IE_FSEID => {
                    need(v, 13)?;
                    let seid = u64::from_be_bytes(v[1..9].try_into().expect("8"));
                    set.f_seid = Some((seid, Ipv4Addr([v[9], v[10], v[11], v[12]])));
                }
                IE_CAUSE => {
                    need(v, 1)?;
                    set.cause = Some(Cause::from_byte(v[0])?);
                }
                IE_CREATE_PDR => set.create_pdrs.push(CreatePdr::decode(v)?),
                IE_CREATE_FAR => set.create_fars.push(CreateFar::decode(v)?),
                IE_CREATE_QER => set.create_qers.push(CreateQer::decode(v)?),
                IE_UPDATE_PDR => set.update_pdrs.push(UpdatePdr::decode(v)?),
                IE_UPDATE_FAR => set.update_fars.push(UpdateFar::decode(v)?),
                IE_REPORT_TYPE => {
                    need(v, 1)?;
                    set.report_downlink_data = v[0] & 0x01 != 0;
                }
                IE_DOWNLINK_DATA_REPORT => {
                    let mut inner = IeReader::new(v);
                    while let Some((ity, iv)) = inner.next_ie()? {
                        if ity == IE_PDR_ID {
                            need(iv, 2)?;
                            set.downlink_data_pdr = Some(u16::from_be_bytes([iv[0], iv[1]]));
                        }
                    }
                }
                _ => {}
            }
        }
        Ok(set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ul_pdr() -> CreatePdr {
        CreatePdr {
            pdr_id: 1,
            precedence: 255,
            pdi: Pdi {
                source_interface: Some(Interface::Access),
                f_teid: Some(FTeid {
                    teid: 0x100,
                    addr: Ipv4Addr::new(10, 200, 200, 102),
                }),
                ue_ip: None,
                sdf_filters: vec![],
                qfi: Some(9),
            },
            outer_header_removal: true,
            far_id: 1,
            qer_ids: vec![1],
        }
    }

    fn dl_pdr() -> CreatePdr {
        CreatePdr {
            pdr_id: 2,
            precedence: 255,
            pdi: Pdi {
                source_interface: Some(Interface::Core),
                f_teid: None,
                ue_ip: Some(UeIpAddress {
                    addr: Ipv4Addr::new(10, 60, 0, 1),
                    is_destination: true,
                }),
                sdf_filters: vec![SdfFilter {
                    dst_port: PortRange::exact(443),
                    protocol: Some(6),
                    filter_id: 7,
                    ..SdfFilter::default()
                }],
                qfi: None,
            },
            outer_header_removal: false,
            far_id: 2,
            qer_ids: vec![],
        }
    }

    #[test]
    fn create_pdr_roundtrip() {
        for pdr in [ul_pdr(), dl_pdr()] {
            let mut buf = Vec::new();
            pdr.encode(&mut buf);
            let set = IeSet::decode(&buf).unwrap();
            assert_eq!(set.create_pdrs, vec![pdr]);
        }
    }

    #[test]
    fn create_far_roundtrip() {
        let far = CreateFar {
            far_id: 2,
            apply_action: ApplyAction::FORW,
            forwarding: Some(ForwardingParameters {
                dest_interface: Interface::Access,
                outer_header_creation: Some(OuterHeaderCreation {
                    teid: 0x200,
                    addr: Ipv4Addr::new(10, 200, 200, 101),
                }),
            }),
        };
        let mut buf = Vec::new();
        far.encode(&mut buf);
        let set = IeSet::decode(&buf).unwrap();
        assert_eq!(set.create_fars, vec![far]);
    }

    #[test]
    fn update_far_buffering_roundtrip() {
        // The smart-handover piggyback: switch the FAR to BUFF.
        let upd = UpdateFar {
            far_id: 2,
            apply_action: Some(ApplyAction::BUFF),
            forwarding: None,
        };
        let mut buf = Vec::new();
        upd.encode(&mut buf);
        let set = IeSet::decode(&buf).unwrap();
        assert_eq!(set.update_fars, vec![upd]);
        assert!(set.update_fars[0].apply_action.unwrap().buffer);
    }

    #[test]
    fn update_pdr_roundtrip() {
        let upd = UpdatePdr {
            pdr_id: 1,
            precedence: Some(10),
            pdi: Some(Pdi {
                source_interface: Some(Interface::Access),
                ..Pdi::default()
            }),
            far_id: Some(3),
        };
        let mut buf = Vec::new();
        upd.encode(&mut buf);
        let set = IeSet::decode(&buf).unwrap();
        assert_eq!(set.update_pdrs, vec![upd]);
    }

    #[test]
    fn sdf_filter_full_roundtrip() {
        let f = SdfFilter {
            src_addr: Ipv4Addr::new(192, 168, 0, 0),
            src_prefix: 16,
            dst_addr: Ipv4Addr::new(10, 60, 0, 1),
            dst_prefix: 32,
            src_port: PortRange {
                min: 1024,
                max: 65535,
            },
            dst_port: PortRange::exact(53),
            protocol: Some(17),
            tos: 0xb8,
            tos_mask: 0xfc,
            spi: Some(0xdeadbeef),
            flow_label: Some(0xabcde),
            filter_id: 99,
        };
        let mut buf = Vec::new();
        f.encode(&mut buf);
        let mut r = IeReader::new(&buf);
        let (ty, v) = r.next_ie().unwrap().unwrap();
        assert_eq!(ty, IE_SDF_FILTER);
        assert_eq!(SdfFilter::decode(v).unwrap(), f);
    }

    #[test]
    fn bad_prefix_rejected() {
        let f = SdfFilter::default();
        let mut buf = Vec::new();
        f.encode(&mut buf);
        // Corrupt the src prefix length (offset: 4 TLV header + 4 addr).
        buf[8] = 40;
        let mut r = IeReader::new(&buf);
        let (_, v) = r.next_ie().unwrap().unwrap();
        assert_eq!(SdfFilter::decode(v).unwrap_err(), Error::Malformed);
    }

    #[test]
    fn ie_set_session_establishment_shape() {
        let set = IeSet {
            node_id: Some(Ipv4Addr::new(10, 200, 200, 1)),
            f_seid: Some((0x77, Ipv4Addr::new(10, 200, 200, 1))),
            create_pdrs: vec![ul_pdr(), dl_pdr()],
            create_fars: vec![CreateFar {
                far_id: 1,
                apply_action: ApplyAction::FORW,
                forwarding: Some(ForwardingParameters {
                    dest_interface: Interface::Core,
                    outer_header_creation: None,
                }),
            }],
            ..IeSet::default()
        };
        let mut buf = Vec::new();
        set.encode(&mut buf);
        let parsed = IeSet::decode(&buf).unwrap();
        assert_eq!(parsed, set);
    }

    #[test]
    fn downlink_data_report_roundtrip() {
        let set = IeSet {
            report_downlink_data: true,
            downlink_data_pdr: Some(2),
            ..IeSet::default()
        };
        let mut buf = Vec::new();
        set.encode(&mut buf);
        let parsed = IeSet::decode(&buf).unwrap();
        assert!(parsed.report_downlink_data);
        assert_eq!(parsed.downlink_data_pdr, Some(2));
    }

    #[test]
    fn truncated_tlv_rejected() {
        let buf = [0x00, 0x01, 0x00]; // 3 bytes: not even a TLV header
        assert_eq!(IeSet::decode(&buf).unwrap_err(), Error::Truncated);
        let buf = [0x00, 0x01, 0x00, 0x08, 0x00]; // claims 8 value bytes, has 1
        assert_eq!(IeSet::decode(&buf).unwrap_err(), Error::Truncated);
    }

    #[test]
    fn unknown_ies_are_skipped() {
        let mut buf = Vec::new();
        put_tlv(&mut buf, 999, |b| b.extend_from_slice(&[1, 2, 3]));
        put_tlv(&mut buf, IE_CAUSE, |b| b.push(1));
        let set = IeSet::decode(&buf).unwrap();
        assert_eq!(set.cause, Some(Cause::Accepted));
    }

    #[test]
    fn apply_action_bits() {
        assert_eq!(
            ApplyAction::from_byte(ApplyAction::BUFF_NOCP.to_byte()),
            ApplyAction::BUFF_NOCP
        );
        assert_eq!(ApplyAction::DROP.to_byte(), 0x01);
        assert_eq!(ApplyAction::FORW.to_byte(), 0x02);
        assert_eq!(ApplyAction::BUFF.to_byte(), 0x04);
    }

    #[test]
    fn port_range_contains() {
        assert!(PortRange::ANY.contains(0));
        assert!(PortRange::ANY.contains(65535));
        assert!(PortRange::exact(80).contains(80));
        assert!(!PortRange::exact(80).contains(81));
    }
}
