//! PFCP — Packet Forwarding Control Protocol (3GPP TS 29.244).
//!
//! The N4 interface between SMF (CP function) and UPF (UP function). The
//! paper keeps PFCP as the N4 message format in L²5GC — only the transport
//! underneath changes from a kernel UDP socket to shared memory — so the
//! same encoder/decoder serves both the free5GC baseline and L²5GC.

pub mod header;
pub mod ie;

pub use header::{Header, MsgType};
pub use ie::{
    ApplyAction, Cause, CreateFar, CreatePdr, CreateQer, FTeid, ForwardingParameters, IeSet,
    Interface, OuterHeaderCreation, Pdi, PortRange, SdfFilter, UeIpAddress, UpdateFar, UpdatePdr,
};

use crate::error::Result;

/// A complete PFCP message: header plus decoded IE body.
#[derive(Debug, Clone, PartialEq)]
pub struct Message {
    /// Message type; decides header shape and meaningful IEs.
    pub msg_type: MsgType,
    /// SEID for session-scoped messages.
    pub seid: Option<u64>,
    /// 24-bit transaction sequence number.
    pub seq: u32,
    /// Body IEs.
    pub ies: IeSet,
}

impl Message {
    /// Creates a session-scoped message.
    pub fn session(msg_type: MsgType, seid: u64, seq: u32, ies: IeSet) -> Message {
        debug_assert!(msg_type.is_session());
        Message {
            msg_type,
            seid: Some(seid),
            seq,
            ies,
        }
    }

    /// Creates a node-scoped message.
    pub fn node(msg_type: MsgType, seq: u32, ies: IeSet) -> Message {
        debug_assert!(!msg_type.is_session());
        Message {
            msg_type,
            seid: None,
            seq,
            ies,
        }
    }

    /// Encodes the whole message to bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::new();
        self.ies.encode(&mut body);
        let header = Header {
            msg_type: self.msg_type,
            seid: self.seid,
            seq: self.seq,
            body_len: body.len(),
        };
        let mut out = vec![0u8; header.header_len() + body.len()];
        let off = header.emit(&mut out).expect("sized buffer");
        out[off..].copy_from_slice(&body);
        out
    }

    /// Decodes a message from bytes.
    pub fn decode(buf: &[u8]) -> Result<Message> {
        let (header, off) = Header::parse(buf)?;
        let body = &buf[off..off + header.body_len];
        let ies = IeSet::decode(body)?;
        Ok(Message {
            msg_type: header.msg_type,
            seid: header.seid,
            seq: header.seq,
            ies,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ipv4::Ipv4Addr;

    #[test]
    fn session_establishment_request_roundtrip() {
        let msg = Message::session(
            MsgType::SessionEstablishmentRequest,
            0x55,
            1,
            IeSet {
                node_id: Some(Ipv4Addr::new(10, 200, 200, 1)),
                f_seid: Some((0x55, Ipv4Addr::new(10, 200, 200, 1))),
                create_pdrs: vec![CreatePdr {
                    pdr_id: 1,
                    precedence: 255,
                    pdi: Pdi {
                        source_interface: Some(Interface::Access),
                        f_teid: Some(FTeid {
                            teid: 1,
                            addr: Ipv4Addr::new(10, 200, 200, 102),
                        }),
                        ..Pdi::default()
                    },
                    outer_header_removal: true,
                    far_id: 1,
                    qer_ids: vec![],
                }],
                create_fars: vec![CreateFar {
                    far_id: 1,
                    apply_action: ApplyAction::FORW,
                    forwarding: Some(ForwardingParameters {
                        dest_interface: Interface::Core,
                        outer_header_creation: None,
                    }),
                }],
                ..IeSet::default()
            },
        );
        let bytes = msg.encode();
        assert_eq!(Message::decode(&bytes).unwrap(), msg);
    }

    #[test]
    fn heartbeat_roundtrip() {
        let msg = Message::node(MsgType::HeartbeatRequest, 7, IeSet::default());
        let bytes = msg.encode();
        assert_eq!(Message::decode(&bytes).unwrap(), msg);
    }

    #[test]
    fn session_report_request_roundtrip() {
        let msg = Message::session(
            MsgType::SessionReportRequest,
            0x99,
            3,
            IeSet {
                report_downlink_data: true,
                downlink_data_pdr: Some(2),
                ..IeSet::default()
            },
        );
        let bytes = msg.encode();
        let parsed = Message::decode(&bytes).unwrap();
        assert_eq!(parsed, msg);
        assert!(parsed.ies.report_downlink_data);
    }

    #[test]
    fn response_with_cause_roundtrip() {
        let msg = Message::session(
            MsgType::SessionModificationResponse,
            0x42,
            9,
            IeSet {
                cause: Some(Cause::Accepted),
                ..IeSet::default()
            },
        );
        let bytes = msg.encode();
        assert_eq!(Message::decode(&bytes).unwrap(), msg);
    }

    #[test]
    fn decode_garbage_fails_cleanly() {
        assert!(Message::decode(&[0u8; 3]).is_err());
        assert!(Message::decode(&[0xff; 64]).is_err());
    }
}
