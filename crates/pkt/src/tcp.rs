//! TCP segment headers (RFC 793).
//!
//! Only the header view is provided here — enough for the UPF's PDR
//! classifier to extract ports/flags from inner packets and for traffic
//! generators to stamp segments. TCP *behaviour* (cwnd, RTO) is modeled in
//! `l25gc-ran::tcp`, which is where the paper's QoE experiments live.

use crate::checksum;
use crate::error::{Error, Result};
use crate::ipv4::Ipv4Addr;

/// Minimum TCP header length (no options).
pub const HEADER_LEN: usize = 20;

/// TCP flag bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Flags {
    /// FIN: sender is done.
    pub fin: bool,
    /// SYN: synchronize sequence numbers.
    pub syn: bool,
    /// RST: reset the connection.
    pub rst: bool,
    /// PSH: push buffered data to the application.
    pub psh: bool,
    /// ACK: acknowledgment field is valid.
    pub ack: bool,
}

impl Flags {
    fn to_byte(self) -> u8 {
        (self.fin as u8)
            | (self.syn as u8) << 1
            | (self.rst as u8) << 2
            | (self.psh as u8) << 3
            | (self.ack as u8) << 4
    }

    fn from_byte(b: u8) -> Flags {
        Flags {
            fin: b & 0x01 != 0,
            syn: b & 0x02 != 0,
            rst: b & 0x04 != 0,
            psh: b & 0x08 != 0,
            ack: b & 0x10 != 0,
        }
    }
}

/// A zero-copy view of a TCP segment.
#[derive(Debug, Clone)]
pub struct Segment<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Segment<T> {
    /// Wraps a buffer without validation.
    pub fn new_unchecked(buffer: T) -> Segment<T> {
        Segment { buffer }
    }

    /// Wraps a buffer, validating the fixed header and data offset.
    pub fn new_checked(buffer: T) -> Result<Segment<T>> {
        let s = Segment { buffer };
        let b = s.buffer.as_ref();
        if b.len() < HEADER_LEN {
            return Err(Error::Truncated);
        }
        let off = s.header_len();
        if off < HEADER_LEN || b.len() < off {
            return Err(Error::Malformed);
        }
        Ok(s)
    }

    /// Consumes the view, returning the underlying buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[0], b[1]])
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[2], b[3]])
    }

    /// Sequence number.
    pub fn seq(&self) -> u32 {
        let b = self.buffer.as_ref();
        u32::from_be_bytes([b[4], b[5], b[6], b[7]])
    }

    /// Acknowledgment number.
    pub fn ack_num(&self) -> u32 {
        let b = self.buffer.as_ref();
        u32::from_be_bytes([b[8], b[9], b[10], b[11]])
    }

    /// Header length from the data-offset field, in bytes.
    pub fn header_len(&self) -> usize {
        usize::from(self.buffer.as_ref()[12] >> 4) * 4
    }

    /// Flag bits.
    pub fn flags(&self) -> Flags {
        Flags::from_byte(self.buffer.as_ref()[13])
    }

    /// Advertised receive window.
    pub fn window(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[14], b[15]])
    }

    /// Payload after the header.
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[self.header_len()..]
    }

    /// Verifies the checksum with the IPv4 pseudo-header.
    pub fn verify_checksum(&self, src: Ipv4Addr, dst: Ipv4Addr) -> bool {
        let b = self.buffer.as_ref();
        let acc =
            checksum::pseudo_header_v4(src.0, dst.0, crate::ipv4::protocol::TCP, b.len() as u16);
        checksum::finish(checksum::sum(acc, b)) == 0
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Segment<T> {
    /// Sets the source port.
    pub fn set_src_port(&mut self, p: u16) {
        self.buffer.as_mut()[0..2].copy_from_slice(&p.to_be_bytes());
    }

    /// Sets the destination port.
    pub fn set_dst_port(&mut self, p: u16) {
        self.buffer.as_mut()[2..4].copy_from_slice(&p.to_be_bytes());
    }

    /// Sets the sequence number.
    pub fn set_seq(&mut self, v: u32) {
        self.buffer.as_mut()[4..8].copy_from_slice(&v.to_be_bytes());
    }

    /// Sets the acknowledgment number.
    pub fn set_ack_num(&mut self, v: u32) {
        self.buffer.as_mut()[8..12].copy_from_slice(&v.to_be_bytes());
    }

    /// Sets data offset to 5 words (no options).
    pub fn set_header_len_no_options(&mut self) {
        self.buffer.as_mut()[12] = 5 << 4;
    }

    /// Sets the flag bits.
    pub fn set_flags(&mut self, f: Flags) {
        self.buffer.as_mut()[13] = f.to_byte();
    }

    /// Sets the advertised window.
    pub fn set_window(&mut self, w: u16) {
        self.buffer.as_mut()[14..16].copy_from_slice(&w.to_be_bytes());
    }

    /// Mutable payload after the header.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        let off = self.header_len();
        &mut self.buffer.as_mut()[off..]
    }

    /// Computes and stores the checksum over the whole segment.
    pub fn fill_checksum(&mut self, src: Ipv4Addr, dst: Ipv4Addr) {
        let b = self.buffer.as_mut();
        b[16..18].fill(0);
        let acc =
            checksum::pseudo_header_v4(src.0, dst.0, crate::ipv4::protocol::TCP, b.len() as u16);
        let c = checksum::finish(checksum::sum(acc, b));
        b[16..18].copy_from_slice(&c.to_be_bytes());
    }
}

/// A parsed, owned TCP header (no options).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Repr {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgment number (meaningful when `flags.ack`).
    pub ack_num: u32,
    /// Flag bits.
    pub flags: Flags,
    /// Advertised window.
    pub window: u16,
}

impl Repr {
    /// Parses a checked segment.
    pub fn parse<T: AsRef<[u8]>>(seg: &Segment<T>) -> Repr {
        Repr {
            src_port: seg.src_port(),
            dst_port: seg.dst_port(),
            seq: seg.seq(),
            ack_num: seg.ack_num(),
            flags: seg.flags(),
            window: seg.window(),
        }
    }

    /// Bytes the emitted header occupies.
    pub const fn header_len(&self) -> usize {
        HEADER_LEN
    }

    /// Writes the header into `seg` (checksum left zero; call
    /// [`Segment::fill_checksum`] after the payload is in place).
    pub fn emit<T: AsRef<[u8]> + AsMut<[u8]>>(&self, seg: &mut Segment<T>) {
        seg.set_src_port(self.src_port);
        seg.set_dst_port(self.dst_port);
        seg.set_seq(self.seq);
        seg.set_ack_num(self.ack_num);
        seg.set_header_len_no_options();
        seg.set_flags(self.flags);
        seg.set_window(self.window);
        let b = seg.buffer.as_mut();
        b[16..18].fill(0); // checksum
        b[18..20].fill(0); // urgent pointer
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let repr = Repr {
            src_port: 443,
            dst_port: 50123,
            seq: 0xdead_beef,
            ack_num: 0x0102_0304,
            flags: Flags {
                ack: true,
                psh: true,
                ..Flags::default()
            },
            window: 65535,
        };
        let mut buf = [0u8; HEADER_LEN + 3];
        let mut s = Segment::new_unchecked(&mut buf[..]);
        repr.emit(&mut s);
        s.payload_mut().copy_from_slice(b"abc");
        let src = Ipv4Addr::new(10, 0, 0, 1);
        let dst = Ipv4Addr::new(10, 0, 0, 2);
        s.fill_checksum(src, dst);
        let s = Segment::new_checked(&buf[..]).unwrap();
        assert!(s.verify_checksum(src, dst));
        assert_eq!(Repr::parse(&s), repr);
        assert_eq!(s.payload(), b"abc");
    }

    #[test]
    fn flags_byte_mapping() {
        let f = Flags {
            fin: true,
            syn: false,
            rst: true,
            psh: false,
            ack: true,
        };
        assert_eq!(Flags::from_byte(f.to_byte()), f);
        assert!(Flags::from_byte(0x12).ack);
        assert!(Flags::from_byte(0x12).syn);
    }

    #[test]
    fn bad_data_offset_rejected() {
        let mut buf = [0u8; HEADER_LEN];
        buf[12] = 4 << 4; // offset 16 bytes < 20
        assert_eq!(
            Segment::new_checked(&buf[..]).unwrap_err(),
            Error::Malformed
        );
        buf[12] = 8 << 4; // offset 32 bytes > buffer
        assert_eq!(
            Segment::new_checked(&buf[..]).unwrap_err(),
            Error::Malformed
        );
    }

    #[test]
    fn corrupt_segment_fails_checksum() {
        let repr = Repr {
            src_port: 1,
            dst_port: 2,
            seq: 3,
            ack_num: 0,
            flags: Flags {
                syn: true,
                ..Flags::default()
            },
            window: 100,
        };
        let mut buf = [0u8; HEADER_LEN];
        let mut s = Segment::new_unchecked(&mut buf[..]);
        repr.emit(&mut s);
        let src = Ipv4Addr::new(9, 9, 9, 9);
        let dst = Ipv4Addr::new(8, 8, 8, 8);
        s.fill_checksum(src, dst);
        buf[4] ^= 0xff;
        let s = Segment::new_checked(&buf[..]).unwrap();
        assert!(!s.verify_checksum(src, dst));
    }
}
