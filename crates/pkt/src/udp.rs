//! UDP datagrams (RFC 768).

use crate::checksum;
use crate::error::{Error, Result};
use crate::ipv4::Ipv4Addr;

/// UDP header length.
pub const HEADER_LEN: usize = 8;

/// The well-known GTP-U port (outer tunnel header).
pub const GTPU_PORT: u16 = 2152;
/// The well-known PFCP port (N4 interface).
pub const PFCP_PORT: u16 = 8805;

/// A zero-copy view of a UDP datagram.
#[derive(Debug, Clone)]
pub struct Datagram<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Datagram<T> {
    /// Wraps a buffer without validation.
    pub fn new_unchecked(buffer: T) -> Datagram<T> {
        Datagram { buffer }
    }

    /// Wraps a buffer, validating the header and length field.
    pub fn new_checked(buffer: T) -> Result<Datagram<T>> {
        let d = Datagram { buffer };
        let b = d.buffer.as_ref();
        if b.len() < HEADER_LEN {
            return Err(Error::Truncated);
        }
        let len = usize::from(u16::from_be_bytes([b[4], b[5]]));
        if len < HEADER_LEN || b.len() < len {
            return Err(Error::Truncated);
        }
        Ok(d)
    }

    /// Consumes the view, returning the underlying buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[0], b[1]])
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[2], b[3]])
    }

    /// The header length field value.
    pub fn len_field(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[4], b[5]])
    }

    /// The checksum field value (0 = not computed).
    pub fn checksum_field(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[6], b[7]])
    }

    /// Payload bytes, bounded by the length field.
    pub fn payload(&self) -> &[u8] {
        let len = usize::from(self.len_field());
        &self.buffer.as_ref()[HEADER_LEN..len]
    }

    /// Verifies the checksum with the IPv4 pseudo-header; a zero checksum
    /// field means "not computed" and always verifies (RFC 768).
    pub fn verify_checksum(&self, src: Ipv4Addr, dst: Ipv4Addr) -> bool {
        if self.checksum_field() == 0 {
            return true;
        }
        let b = self.buffer.as_ref();
        let len = usize::from(self.len_field());
        let acc = checksum::pseudo_header_v4(src.0, dst.0, crate::ipv4::protocol::UDP, len as u16);
        checksum::finish(checksum::sum(acc, &b[..len])) == 0
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Datagram<T> {
    /// Sets the source port.
    pub fn set_src_port(&mut self, p: u16) {
        self.buffer.as_mut()[0..2].copy_from_slice(&p.to_be_bytes());
    }

    /// Sets the destination port.
    pub fn set_dst_port(&mut self, p: u16) {
        self.buffer.as_mut()[2..4].copy_from_slice(&p.to_be_bytes());
    }

    /// Sets the length field.
    pub fn set_len_field(&mut self, len: u16) {
        self.buffer.as_mut()[4..6].copy_from_slice(&len.to_be_bytes());
    }

    /// Mutable payload bytes.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        let len = usize::from(self.len_field());
        &mut self.buffer.as_mut()[HEADER_LEN..len]
    }

    /// Computes and stores the checksum using the IPv4 pseudo-header. Per
    /// RFC 768 a computed checksum of zero is transmitted as `0xffff`.
    pub fn fill_checksum(&mut self, src: Ipv4Addr, dst: Ipv4Addr) {
        let len = usize::from(self.len_field());
        let b = self.buffer.as_mut();
        b[6..8].fill(0);
        let acc = checksum::pseudo_header_v4(src.0, dst.0, crate::ipv4::protocol::UDP, len as u16);
        let mut c = checksum::finish(checksum::sum(acc, &b[..len]));
        if c == 0 {
            c = 0xffff;
        }
        b[6..8].copy_from_slice(&c.to_be_bytes());
    }
}

/// A parsed, owned UDP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Repr {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Payload length in bytes.
    pub payload_len: usize,
}

impl Repr {
    /// Parses a checked datagram.
    pub fn parse<T: AsRef<[u8]>>(dgram: &Datagram<T>) -> Repr {
        Repr {
            src_port: dgram.src_port(),
            dst_port: dgram.dst_port(),
            payload_len: usize::from(dgram.len_field()) - HEADER_LEN,
        }
    }

    /// Bytes the emitted header occupies.
    pub const fn header_len(&self) -> usize {
        HEADER_LEN
    }

    /// Header + payload length.
    pub fn total_len(&self) -> usize {
        HEADER_LEN + self.payload_len
    }

    /// Writes the header (ports + length; checksum left zero) into `dgram`.
    pub fn emit<T: AsRef<[u8]> + AsMut<[u8]>>(&self, dgram: &mut Datagram<T>) {
        dgram.set_src_port(self.src_port);
        dgram.set_dst_port(self.dst_port);
        dgram.set_len_field(self.total_len() as u16);
        dgram.buffer.as_mut()[6..8].fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_with_checksum() {
        let repr = Repr {
            src_port: 2152,
            dst_port: 2152,
            payload_len: 4,
        };
        let mut buf = vec![0u8; repr.total_len()];
        let mut d = Datagram::new_unchecked(&mut buf[..]);
        repr.emit(&mut d);
        d.payload_mut().copy_from_slice(b"gtpu");
        let src = Ipv4Addr::new(10, 0, 0, 1);
        let dst = Ipv4Addr::new(10, 0, 0, 2);
        d.fill_checksum(src, dst);
        let d = Datagram::new_checked(&buf[..]).unwrap();
        assert!(d.verify_checksum(src, dst));
        assert_eq!(Repr::parse(&d), repr);
        assert_eq!(d.payload(), b"gtpu");
    }

    #[test]
    fn zero_checksum_always_verifies() {
        let repr = Repr {
            src_port: 1,
            dst_port: 2,
            payload_len: 0,
        };
        let mut buf = vec![0u8; repr.total_len()];
        let mut d = Datagram::new_unchecked(&mut buf[..]);
        repr.emit(&mut d);
        let d = Datagram::new_checked(&buf[..]).unwrap();
        assert!(d.verify_checksum(Ipv4Addr::default(), Ipv4Addr::default()));
    }

    #[test]
    fn corrupt_payload_fails_checksum() {
        let repr = Repr {
            src_port: 5,
            dst_port: 6,
            payload_len: 4,
        };
        let mut buf = vec![0u8; repr.total_len()];
        let mut d = Datagram::new_unchecked(&mut buf[..]);
        repr.emit(&mut d);
        d.payload_mut().copy_from_slice(b"data");
        let src = Ipv4Addr::new(1, 1, 1, 1);
        let dst = Ipv4Addr::new(2, 2, 2, 2);
        d.fill_checksum(src, dst);
        buf[HEADER_LEN] ^= 0x01;
        let d = Datagram::new_checked(&buf[..]).unwrap();
        assert!(!d.verify_checksum(src, dst));
    }

    #[test]
    fn truncated_rejected() {
        assert_eq!(
            Datagram::new_checked(&[0u8; 4][..]).unwrap_err(),
            Error::Truncated
        );
        let mut buf = [0u8; 8];
        buf[4..6].copy_from_slice(&20u16.to_be_bytes()); // claims 20 bytes
        assert_eq!(
            Datagram::new_checked(&buf[..]).unwrap_err(),
            Error::Truncated
        );
    }
}
