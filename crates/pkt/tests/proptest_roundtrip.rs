//! Property tests: every wire format must roundtrip arbitrary field values,
//! and parsers must never panic on arbitrary bytes.

use l25gc_pkt::{gtpu, ipv4, pfcp, tcp, udp, Ipv4Addr};
use proptest::prelude::*;

fn arb_addr() -> impl Strategy<Value = Ipv4Addr> {
    any::<[u8; 4]>().prop_map(Ipv4Addr)
}

proptest! {
    #[test]
    fn ipv4_roundtrips(
        src in arb_addr(),
        dst in arb_addr(),
        protocol in any::<u8>(),
        tos in any::<u8>(),
        ttl in any::<u8>(),
        payload in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let repr = ipv4::Repr { src, dst, protocol, tos, ttl, payload_len: payload.len() };
        let mut buf = vec![0u8; repr.total_len()];
        let mut p = ipv4::Packet::new_unchecked(&mut buf[..]);
        repr.emit(&mut p);
        p.payload_mut().copy_from_slice(&payload);
        // emit writes checksum before payload; recompute after payload fill
        p.fill_checksum();
        let p = ipv4::Packet::new_checked(&buf[..]).unwrap();
        prop_assert_eq!(ipv4::Repr::parse(&p).unwrap(), repr);
        prop_assert_eq!(p.payload(), &payload[..]);
    }

    #[test]
    fn udp_roundtrips(
        src_port in any::<u16>(),
        dst_port in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 0..256),
        src in arb_addr(),
        dst in arb_addr(),
    ) {
        let repr = udp::Repr { src_port, dst_port, payload_len: payload.len() };
        let mut buf = vec![0u8; repr.total_len()];
        let mut d = udp::Datagram::new_unchecked(&mut buf[..]);
        repr.emit(&mut d);
        d.payload_mut().copy_from_slice(&payload);
        d.fill_checksum(src, dst);
        let d = udp::Datagram::new_checked(&buf[..]).unwrap();
        prop_assert!(d.verify_checksum(src, dst));
        prop_assert_eq!(udp::Repr::parse(&d), repr);
    }

    #[test]
    fn tcp_roundtrips(
        src_port in any::<u16>(),
        dst_port in any::<u16>(),
        seq in any::<u32>(),
        ack_num in any::<u32>(),
        window in any::<u16>(),
        flag_bits in 0u8..32,
        payload in proptest::collection::vec(any::<u8>(), 0..128),
        src in arb_addr(),
        dst in arb_addr(),
    ) {
        let flags = tcp::Flags {
            fin: flag_bits & 1 != 0,
            syn: flag_bits & 2 != 0,
            rst: flag_bits & 4 != 0,
            psh: flag_bits & 8 != 0,
            ack: flag_bits & 16 != 0,
        };
        let repr = tcp::Repr { src_port, dst_port, seq, ack_num, flags, window };
        let mut buf = vec![0u8; tcp::HEADER_LEN + payload.len()];
        let mut s = tcp::Segment::new_unchecked(&mut buf[..]);
        repr.emit(&mut s);
        s.payload_mut().copy_from_slice(&payload);
        s.fill_checksum(src, dst);
        let s = tcp::Segment::new_checked(&buf[..]).unwrap();
        prop_assert!(s.verify_checksum(src, dst));
        prop_assert_eq!(tcp::Repr::parse(&s), repr);
    }

    #[test]
    fn gtpu_roundtrips(
        teid in any::<u32>(),
        seq in proptest::option::of(any::<u16>()),
        payload in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let repr = gtpu::Repr {
            msg_type: gtpu::MessageType::GPdu,
            teid,
            seq,
            payload_len: payload.len(),
        };
        let mut buf = vec![0u8; repr.total_len()];
        let mut p = gtpu::Packet::new_unchecked(&mut buf[..]);
        repr.emit(&mut p);
        p.payload_mut().copy_from_slice(&payload);
        let p = gtpu::Packet::new_checked(&buf[..]).unwrap();
        prop_assert_eq!(gtpu::Repr::parse(&p).unwrap(), repr);
        prop_assert_eq!(p.payload(), &payload[..]);
    }

    #[test]
    fn pfcp_sdf_filter_roundtrips(
        src in arb_addr(),
        src_prefix in 0u8..=32,
        dst in arb_addr(),
        dst_prefix in 0u8..=32,
        sp_min in any::<u16>(),
        sp_len in any::<u16>(),
        dp_min in any::<u16>(),
        dp_len in any::<u16>(),
        protocol in proptest::option::of(any::<u8>()),
        tos in any::<u8>(),
        tos_mask in any::<u8>(),
        spi in proptest::option::of(any::<u32>()),
        flow_label in proptest::option::of(0u32..(1 << 20)),
        filter_id in any::<u32>(),
    ) {
        let filter = pfcp::SdfFilter {
            src_addr: src,
            src_prefix,
            dst_addr: dst,
            dst_prefix,
            src_port: pfcp::PortRange { min: sp_min, max: sp_min.saturating_add(sp_len) },
            dst_port: pfcp::PortRange { min: dp_min, max: dp_min.saturating_add(dp_len) },
            protocol,
            tos,
            tos_mask,
            spi,
            flow_label,
            filter_id,
        };
        let msg = pfcp::Message::session(
            pfcp::MsgType::SessionModificationRequest,
            1,
            1,
            pfcp::IeSet {
                update_pdrs: vec![pfcp::UpdatePdr {
                    pdr_id: 1,
                    precedence: None,
                    pdi: Some(pfcp::Pdi { sdf_filters: vec![filter], ..pfcp::Pdi::default() }),
                    far_id: None,
                }],
                ..pfcp::IeSet::default()
            },
        );
        let bytes = msg.encode();
        prop_assert_eq!(pfcp::Message::decode(&bytes).unwrap(), msg);
    }

    #[test]
    fn pfcp_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = pfcp::Message::decode(&bytes);
    }

    #[test]
    fn gtpu_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        if let Ok(p) = gtpu::Packet::new_checked(&bytes[..]) {
            let _ = gtpu::Repr::parse(&p);
        }
    }

    #[test]
    fn ipv4_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        if let Ok(p) = ipv4::Packet::new_checked(&bytes[..]) {
            let _ = ipv4::Repr::parse(&p);
        }
    }
}
