//! # l25gc-ran — the UE & RAN simulator and traffic side
//!
//! The paper evaluates L²5GC with a custom UE/RAN simulator speaking the
//! N1/N2 interfaces over SCTP (no PHY model) and MoonGen as the traffic
//! generator. This crate is both, plus the transport model the QoE
//! experiments need:
//!
//! - [`ran`] — gNB and UE state machines: NAS auth/security answers,
//!   PDU-session tunnel allocation, paging wake-up, handover execution,
//!   and the source-gNB limited buffer of the 3GPP hairpin baseline.
//! - [`traffic`] — CBR flows with per-packet RTT accounting (Figs 13/14,
//!   Tables 1/2).
//! - [`tcp`] — a Reno-style TCP model with Linux's 200 ms minimum RTO:
//!   the machinery behind the spurious-timeout results (Figs 12/15/16/17).
//! - [`webpage`] — the §5.4.1 page-load-time harness (six parallel
//!   connections fetching ~15 MB images).

pub mod ran;
pub mod tcp;
pub mod traffic;
pub mod webpage;

pub use ran::{Ran, RanGnb, RanUe};
pub use tcp::{TcpReceiver, TcpSender, ACK_SIZE, MIN_RTO, MSS};
pub use traffic::{echo, CbrFlow};
pub use webpage::{paper_page, PageLoad, WebObject};
