//! The UE & RAN simulator (paper §5.1.1): gNB and UE state machines
//! speaking NGAP/NAS toward the AMF over SCTP, plus the gNB data path
//! (GTP encapsulation toward the UPF, limited downlink buffering during
//! handover for the 3GPP hairpin baseline).
//!
//! Like the paper's simulator, the PHY is not modeled; air-interface
//! latencies are fixed delays from the shared cost model. NAS exchanges
//! between UE and gNB reuse the `Msg::Ngap` NAS-transport variants with
//! `Ue(_)` endpoints.

use std::collections::{HashMap, VecDeque};

use l25gc_core::msg::{DataPacket, Direction, Endpoint, Envelope, GnbId, Msg, UeId};
use l25gc_core::net::{HandoverScheme, Output};
use l25gc_nfv::cost::CostModel;
use l25gc_pkt::nas::NasMessage;
use l25gc_pkt::ngap::{NgapMessage, TunnelInfo};
use l25gc_sim::{Counters, SimDuration, SimTime};

/// A UE's RAN-side state.
#[derive(Debug, Clone)]
pub struct RanUe {
    /// Identity.
    pub ue: UeId,
    /// Subscription id used at registration.
    pub supi: u64,
    /// The gNB currently serving (or about to serve) this UE.
    pub serving_gnb: GnbId,
    /// True once registered.
    pub registered: bool,
    /// True while the UE has a radio connection.
    pub connected: bool,
    /// True once the PDU session is up.
    pub session_up: bool,
}

/// A gNB's state.
#[derive(Debug, Default)]
pub struct RanGnb {
    /// UPF-side uplink TEID per UE (stamped on uplink GTP packets).
    pub ul_teid: HashMap<UeId, u32>,
    /// Downlink tunnel id → UE.
    pub dl_teid_to_ue: HashMap<u32, UeId>,
    /// Next downlink TEID to allocate.
    next_dl_teid: u32,
    /// Per-UE downlink buffer used while the UE executes a handover away
    /// from this gNB (the 3GPP hairpin baseline buffers here; §2.3
    /// Challenge 2 sizes this at ~2 MB per UE).
    pub ho_buffer: HashMap<UeId, VecDeque<DataPacket>>,
    /// Buffer capacity in packets (paper: ~1300 full-MTU packets).
    pub buffer_cap: usize,
}

impl RanGnb {
    fn alloc_dl_teid(&mut self, ue: UeId) -> u32 {
        self.next_dl_teid += 1;
        let teid = 0x8000_0000 | self.next_dl_teid;
        self.dl_teid_to_ue.insert(teid, ue);
        teid
    }
}

/// The RAN: all gNBs and UEs.
#[derive(Debug)]
pub struct Ran {
    /// UEs by id.
    pub ues: HashMap<UeId, RanUe>,
    /// gNBs by id.
    pub gnbs: HashMap<GnbId, RanGnb>,
    /// Shared cost model (air-interface and SCTP delays).
    pub cost: CostModel,
    /// Handover data-routing scheme (mirrors the core's).
    pub scheme: HandoverScheme,
    /// Drop/delivery counters.
    pub counters: Counters,
    /// Data-plane delay gNB ↔ UE (the paper's "UE" is the traffic
    /// generator on the RAN server, so this is intra-host).
    pub ue_data_hop: SimDuration,
}

impl Ran {
    /// A RAN with `gnb_count` gNBs (ids `1..=gnb_count`).
    pub fn new(gnb_count: u32, cost: CostModel) -> Ran {
        let mut gnbs = HashMap::new();
        for id in 1..=gnb_count {
            gnbs.insert(
                id,
                RanGnb {
                    buffer_cap: 1300,
                    ..RanGnb::default()
                },
            );
        }
        Ran {
            ues: HashMap::new(),
            gnbs,
            cost,
            scheme: HandoverScheme::SmartBuffering,
            counters: Counters::new(),
            ue_data_hop: SimDuration::from_micros(1),
        }
    }

    /// Adds a UE camped on `gnb` (not yet registered).
    pub fn add_ue(&mut self, ue: UeId, supi: u64, gnb: GnbId) {
        assert!(self.gnbs.contains_key(&gnb), "unknown gNB {gnb}");
        self.ues.insert(
            ue,
            RanUe {
                ue,
                supi,
                serving_gnb: gnb,
                registered: false,
                connected: false,
                session_up: false,
            },
        );
    }

    // ---------------- UE event triggers ----------------

    /// The UE powers on and registers: RACH + RRC setup, then the first
    /// NAS message reaches the AMF.
    pub fn trigger_registration(&mut self, ue: UeId) -> Output {
        let u = self.ues.get_mut(&ue).expect("UE added");
        u.connected = true;
        let gnb = u.serving_gnb;
        let supi = u.supi;
        Output {
            delay: self.cost.ran_attach_fixed + self.cost.sctp_hop,
            env: Envelope::new(
                Endpoint::Gnb(gnb),
                Endpoint::Amf,
                Msg::Ngap(NgapMessage::InitialUeMessage {
                    ue,
                    gnb,
                    nas: NasMessage::RegistrationRequest { supi },
                }),
            ),
        }
    }

    /// The UE asks for a PDU session.
    pub fn trigger_session(&self, ue: UeId) -> Output {
        let u = &self.ues[&ue];
        assert!(u.registered, "session request requires registration");
        Output {
            delay: self.cost.ran_nas_rtt / 2 + self.cost.sctp_hop,
            env: Envelope::new(
                Endpoint::Gnb(u.serving_gnb),
                Endpoint::Amf,
                Msg::Ngap(NgapMessage::UplinkNasTransport {
                    ue,
                    nas: NasMessage::PduSessionEstablishmentRequest { session_id: 1 },
                }),
            ),
        }
    }

    /// The gNB notices UE inactivity and asks to release its context.
    pub fn trigger_idle(&self, ue: UeId) -> Output {
        let u = &self.ues[&ue];
        Output {
            delay: self.cost.sctp_hop,
            env: Envelope::new(
                Endpoint::Gnb(u.serving_gnb),
                Endpoint::Amf,
                Msg::Ngap(NgapMessage::UeContextReleaseRequest { ue }),
            ),
        }
    }

    /// The UE deregisters from the network (power-off style).
    pub fn trigger_deregistration(&self, ue: UeId) -> Output {
        let u = &self.ues[&ue];
        assert!(u.registered, "deregistration requires registration");
        Output {
            delay: self.cost.ran_nas_rtt / 2 + self.cost.sctp_hop,
            env: Envelope::new(
                Endpoint::Gnb(u.serving_gnb),
                Endpoint::Amf,
                Msg::Ngap(NgapMessage::UplinkNasTransport {
                    ue,
                    nas: NasMessage::DeregistrationRequest {
                        guti: 0xF000_0000_0000_0000 | u.supi,
                    },
                }),
            ),
        }
    }

    /// The source gNB decides (measurement report) to hand the UE over.
    pub fn trigger_handover(&self, ue: UeId, target: GnbId) -> Output {
        let u = &self.ues[&ue];
        assert!(self.gnbs.contains_key(&target), "unknown target gNB");
        assert_ne!(u.serving_gnb, target, "target must differ from serving");
        Output {
            delay: self.cost.sctp_hop,
            env: Envelope::new(
                Endpoint::Gnb(u.serving_gnb),
                Endpoint::Amf,
                Msg::Ngap(NgapMessage::HandoverRequired {
                    ue,
                    target_gnb: target,
                }),
            ),
        }
    }

    // ---------------- Envelope handling ----------------

    /// Handles a message delivered to a gNB or UE.
    pub fn handle(&mut self, env: Envelope, now: SimTime) -> Vec<Output> {
        match (env.to, env.msg) {
            (Endpoint::Gnb(gnb), Msg::Ngap(m)) => self.gnb_ngap(gnb, m, now),
            (Endpoint::Ue(ue), Msg::Ngap(m)) => self.ue_ngap(ue, m),
            (Endpoint::Gnb(gnb), Msg::Data(p)) => self.gnb_data(gnb, p),
            (to, msg) => panic!("RAN cannot handle {msg:?} at {to:?}"),
        }
    }

    fn gnb_ngap(&mut self, gnb: GnbId, m: NgapMessage, _now: SimTime) -> Vec<Output> {
        let air = self.cost.ran_nas_rtt / 2;
        let sctp = self.cost.sctp_hop;
        match m {
            NgapMessage::DownlinkNasTransport { ue, nas } => {
                // Relay NAS over the air.
                vec![Output {
                    delay: air,
                    env: Envelope::new(
                        Endpoint::Gnb(gnb),
                        Endpoint::Ue(ue),
                        Msg::Ngap(NgapMessage::DownlinkNasTransport { ue, nas }),
                    ),
                }]
            }
            NgapMessage::InitialContextSetupRequest { ue, nas } => {
                // Respond to the AMF and deliver the NAS accept to the UE.
                vec![
                    Output {
                        delay: sctp,
                        env: Envelope::new(
                            Endpoint::Gnb(gnb),
                            Endpoint::Amf,
                            Msg::Ngap(NgapMessage::InitialContextSetupResponse { ue }),
                        ),
                    },
                    Output {
                        delay: air,
                        env: Envelope::new(
                            Endpoint::Gnb(gnb),
                            Endpoint::Ue(ue),
                            Msg::Ngap(NgapMessage::DownlinkNasTransport { ue, nas }),
                        ),
                    },
                ]
            }
            NgapMessage::PduSessionResourceSetupRequest {
                ue,
                session_id,
                uplink_tunnel,
                nas,
            } => {
                let g = self.gnbs.get_mut(&gnb).expect("known gNB");
                g.ul_teid.insert(ue, uplink_tunnel.teid);
                let dl_teid = g.alloc_dl_teid(ue);
                vec![
                    Output {
                        delay: sctp,
                        env: Envelope::new(
                            Endpoint::Gnb(gnb),
                            Endpoint::Amf,
                            Msg::Ngap(NgapMessage::PduSessionResourceSetupResponse {
                                ue,
                                session_id,
                                downlink_tunnel: TunnelInfo {
                                    teid: dl_teid,
                                    addr: gnb,
                                },
                            }),
                        ),
                    },
                    Output {
                        delay: air,
                        env: Envelope::new(
                            Endpoint::Gnb(gnb),
                            Endpoint::Ue(ue),
                            Msg::Ngap(NgapMessage::DownlinkNasTransport { ue, nas }),
                        ),
                    },
                ]
            }
            NgapMessage::Paging { guti } => {
                // Find the idle UE by GUTI (suffix = SUPI in this model).
                let ue = self
                    .ues
                    .values()
                    .find(|u| (0xF000_0000_0000_0000 | u.supi) == guti)
                    .map(|u| u.ue)
                    .expect("paged UE exists");
                vec![Output {
                    delay: air,
                    env: Envelope::new(
                        Endpoint::Gnb(gnb),
                        Endpoint::Ue(ue),
                        Msg::Ngap(NgapMessage::Paging { guti }),
                    ),
                }]
            }
            NgapMessage::UeContextReleaseCommand { ue } => {
                let mut outs = vec![Output {
                    delay: sctp,
                    env: Envelope::new(
                        Endpoint::Gnb(gnb),
                        Endpoint::Amf,
                        Msg::Ngap(NgapMessage::UeContextReleaseComplete { ue }),
                    ),
                }];
                // Hairpin baseline: the source gNB now re-injects its
                // buffered downlink packets through the UPF toward the
                // target (indirect forwarding).
                let g = self.gnbs.get_mut(&gnb).expect("known gNB");
                g.ul_teid.remove(&ue);
                g.dl_teid_to_ue.retain(|_, u| *u != ue);
                if let Some(buf) = g.ho_buffer.remove(&ue) {
                    let prop = self.cost.upf_gnb_prop;
                    for (i, pkt) in buf.into_iter().enumerate() {
                        self.counters.inc("hairpin_reinjected");
                        outs.push(Output {
                            delay: prop + SimDuration::from_micros(i as u64),
                            env: Envelope::new(
                                Endpoint::Gnb(gnb),
                                Endpoint::UpfU,
                                Msg::Data(DataPacket {
                                    tunnel_teid: None,
                                    ..pkt
                                }),
                            ),
                        });
                    }
                }
                if let Some(u) = self.ues.get_mut(&ue) {
                    if u.serving_gnb == gnb {
                        u.connected = false;
                    }
                }
                outs
            }
            NgapMessage::HandoverRequest {
                ue,
                session_id,
                uplink_tunnel,
            } => {
                // Target gNB prepares resources.
                let g = self.gnbs.get_mut(&gnb).expect("known gNB");
                g.ul_teid.insert(ue, uplink_tunnel.teid);
                let dl_teid = g.alloc_dl_teid(ue);
                vec![Output {
                    delay: sctp,
                    env: Envelope::new(
                        Endpoint::Gnb(gnb),
                        Endpoint::Amf,
                        Msg::Ngap(NgapMessage::HandoverRequestAcknowledge {
                            ue,
                            session_id,
                            downlink_tunnel: TunnelInfo {
                                teid: dl_teid,
                                addr: gnb,
                            },
                        }),
                    ),
                }]
            }
            NgapMessage::HandoverCommand { ue, target_gnb } => {
                // Source gNB: tell the UE; in the hairpin scheme start
                // buffering DL data; the UE detaches, synchronizes with
                // the target, and the target notifies the AMF.
                if self.scheme == HandoverScheme::Hairpin3gpp {
                    let g = self.gnbs.get_mut(&gnb).expect("known gNB");
                    g.ho_buffer.entry(ue).or_default();
                }
                let u = self.ues.get_mut(&ue).expect("known UE");
                u.serving_gnb = target_gnb;
                let radio = self.cost.ran_nas_rtt / 2 + self.cost.ran_handover_fixed;
                vec![Output {
                    delay: radio + self.cost.sctp_hop,
                    env: Envelope::new(
                        Endpoint::Gnb(target_gnb),
                        Endpoint::Amf,
                        Msg::Ngap(NgapMessage::HandoverNotify {
                            ue,
                            gnb: target_gnb,
                        }),
                    ),
                }]
            }
            // UE → gNB relays upward.
            NgapMessage::UplinkNasTransport { ue, nas } => {
                vec![Output {
                    delay: sctp,
                    env: Envelope::new(
                        Endpoint::Gnb(gnb),
                        Endpoint::Amf,
                        Msg::Ngap(NgapMessage::UplinkNasTransport { ue, nas }),
                    ),
                }]
            }
            NgapMessage::InitialUeMessage { ue, nas, .. } => {
                vec![Output {
                    delay: sctp,
                    env: Envelope::new(
                        Endpoint::Gnb(gnb),
                        Endpoint::Amf,
                        Msg::Ngap(NgapMessage::InitialUeMessage { ue, gnb, nas }),
                    ),
                }]
            }
            other => panic!("gNB cannot handle {other:?}"),
        }
    }

    fn ue_ngap(&mut self, ue: UeId, m: NgapMessage) -> Vec<Output> {
        let air = self.cost.ran_nas_rtt / 2;
        let u = self.ues.get_mut(&ue).expect("known UE");
        let gnb = u.serving_gnb;
        let reply = |nas: NasMessage, delay: SimDuration| Output {
            delay,
            env: Envelope::new(
                Endpoint::Ue(ue),
                Endpoint::Gnb(gnb),
                Msg::Ngap(NgapMessage::UplinkNasTransport { ue, nas }),
            ),
        };
        match m {
            NgapMessage::DownlinkNasTransport { nas, .. } => match nas {
                NasMessage::AuthenticationRequest { rand, sqn } => {
                    // The USIM holds the same deterministic key material
                    // the UDR provisioned for this SUPI.
                    let mut usim = l25gc_core::Udr::new();
                    let sub = usim.provision_default(u.supi).clone();
                    let res = l25gc_core::Udr::ue_response(&sub, rand, sqn);
                    vec![reply(NasMessage::AuthenticationResponse { res }, air)]
                }
                NasMessage::SecurityModeCommand => {
                    vec![reply(NasMessage::SecurityModeComplete, air)]
                }
                NasMessage::RegistrationAccept { .. } => {
                    u.registered = true;
                    vec![reply(NasMessage::RegistrationComplete, air)]
                }
                NasMessage::PduSessionEstablishmentAccept { .. } => {
                    u.session_up = true;
                    Vec::new()
                }
                NasMessage::ServiceAccept => {
                    u.connected = true;
                    Vec::new()
                }
                NasMessage::DeregistrationAccept => {
                    u.registered = false;
                    u.session_up = false;
                    u.connected = false;
                    Vec::new()
                }
                other => panic!("UE cannot handle NAS {other:?}"),
            },
            NgapMessage::Paging { .. } => {
                // Wake from idle: paging-occasion wait + RACH, then a
                // service request goes up.
                u.connected = true;
                vec![Output {
                    delay: self.cost.ran_paging_fixed,
                    env: Envelope::new(
                        Endpoint::Ue(ue),
                        Endpoint::Gnb(gnb),
                        Msg::Ngap(NgapMessage::InitialUeMessage {
                            ue,
                            gnb,
                            nas: NasMessage::ServiceRequest {
                                guti: 0xF000_0000_0000_0000 | u.supi,
                            },
                        }),
                    ),
                }]
            }
            other => panic!("UE cannot handle {other:?}"),
        }
    }

    fn gnb_data(&mut self, gnb: GnbId, pkt: DataPacket) -> Vec<Output> {
        let g = self.gnbs.get_mut(&gnb).expect("known gNB");
        match pkt.dir {
            Direction::Downlink => {
                // From the UPF, tunneled with this gNB's DL TEID.
                let teid = pkt.tunnel_teid.expect("DL data arrives tunneled");
                let Some(&ue) = g.dl_teid_to_ue.get(&teid) else {
                    self.counters.inc("gnb_drop_unknown_teid");
                    return Vec::new();
                };
                if let Some(buf) = g.ho_buffer.get_mut(&ue) {
                    // Handover in progress (hairpin scheme): limited buffer.
                    if buf.len() >= g.buffer_cap {
                        self.counters.inc("gnb_drop_buffer_overflow");
                    } else {
                        buf.push_back(pkt);
                        self.counters.inc("gnb_buffered");
                    }
                    return Vec::new();
                }
                self.counters.inc("gnb_dl_delivered");
                vec![Output {
                    delay: self.ue_data_hop,
                    env: Envelope::new(
                        Endpoint::Gnb(gnb),
                        Endpoint::Ue(ue),
                        Msg::Data(DataPacket {
                            tunnel_teid: None,
                            ..pkt
                        }),
                    ),
                }]
            }
            Direction::Uplink => {
                // From the UE: GTP-encapsulate toward the UPF.
                let Some(&teid) = g.ul_teid.get(&pkt.ue) else {
                    self.counters.inc("gnb_drop_no_ul_tunnel");
                    return Vec::new();
                };
                self.counters.inc("gnb_ul_forwarded");
                vec![Output {
                    delay: self.cost.path_lat,
                    env: Envelope::new(
                        Endpoint::Gnb(gnb),
                        Endpoint::UpfU,
                        Msg::Data(DataPacket {
                            tunnel_teid: Some(teid),
                            ..pkt
                        }),
                    ),
                }]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ran() -> Ran {
        let mut r = Ran::new(2, CostModel::paper());
        r.add_ue(1, 101, 1);
        r
    }

    #[test]
    fn registration_trigger_reaches_amf_after_attach_delay() {
        let mut r = ran();
        let out = r.trigger_registration(1);
        assert_eq!(out.env.to, Endpoint::Amf);
        assert!(out.delay >= r.cost.ran_attach_fixed);
        match out.env.msg {
            Msg::Ngap(NgapMessage::InitialUeMessage { ue: 1, gnb: 1, .. }) => {}
            ref other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn ue_answers_authentication_and_security() {
        let mut r = ran();
        let outs = r.handle(
            Envelope::new(
                Endpoint::Gnb(1),
                Endpoint::Ue(1),
                Msg::Ngap(NgapMessage::DownlinkNasTransport {
                    ue: 1,
                    nas: NasMessage::AuthenticationRequest {
                        rand: [1; 16],
                        sqn: 1,
                    },
                }),
            ),
            SimTime::ZERO,
        );
        assert_eq!(outs.len(), 1);
        match &outs[0].env.msg {
            Msg::Ngap(NgapMessage::UplinkNasTransport {
                nas: NasMessage::AuthenticationResponse { .. },
                ..
            }) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn pdu_session_setup_allocates_tunnels() {
        let mut r = ran();
        let outs = r.handle(
            Envelope::new(
                Endpoint::Amf,
                Endpoint::Gnb(1),
                Msg::Ngap(NgapMessage::PduSessionResourceSetupRequest {
                    ue: 1,
                    session_id: 1,
                    uplink_tunnel: TunnelInfo {
                        teid: 0x101,
                        addr: 7,
                    },
                    nas: NasMessage::PduSessionEstablishmentAccept {
                        session_id: 1,
                        ue_ip: 5,
                    },
                }),
            ),
            SimTime::ZERO,
        );
        // Response to AMF with a fresh DL TEID + NAS accept to the UE.
        assert_eq!(outs.len(), 2);
        let Msg::Ngap(NgapMessage::PduSessionResourceSetupResponse {
            downlink_tunnel, ..
        }) = outs[0].env.msg
        else {
            panic!("expected setup response");
        };
        assert_eq!(downlink_tunnel.addr, 1, "tunnel addr encodes the gNB id");
        assert_eq!(r.gnbs[&1].ul_teid[&1], 0x101);
        assert_eq!(r.gnbs[&1].dl_teid_to_ue[&downlink_tunnel.teid], 1);
    }

    #[test]
    fn uplink_data_gets_gtp_encapsulated() {
        let mut r = ran();
        r.gnbs.get_mut(&1).unwrap().ul_teid.insert(1, 0x101);
        let pkt = DataPacket {
            ue: 1,
            flow: 0,
            dir: Direction::Uplink,
            seq: 0,
            size: 100,
            sent_at: SimTime::ZERO,
            dst_port: 80,
            protocol: 6,
            tunnel_teid: None,
            ack_seq: None,
        };
        let outs = r.handle(
            Envelope::new(Endpoint::Ue(1), Endpoint::Gnb(1), Msg::Data(pkt)),
            SimTime::ZERO,
        );
        assert_eq!(outs.len(), 1);
        assert_eq!(outs[0].env.to, Endpoint::UpfU);
        let Msg::Data(p) = outs[0].env.msg else {
            panic!()
        };
        assert_eq!(p.tunnel_teid, Some(0x101));
    }

    #[test]
    fn downlink_data_reaches_ue_via_dl_teid() {
        let mut r = ran();
        let teid = r.gnbs.get_mut(&1).unwrap().alloc_dl_teid(1);
        let pkt = DataPacket {
            ue: 1,
            flow: 0,
            dir: Direction::Downlink,
            seq: 0,
            size: 100,
            sent_at: SimTime::ZERO,
            dst_port: 80,
            protocol: 6,
            tunnel_teid: Some(teid),
            ack_seq: None,
        };
        let outs = r.handle(
            Envelope::new(Endpoint::UpfU, Endpoint::Gnb(1), Msg::Data(pkt)),
            SimTime::ZERO,
        );
        assert_eq!(outs.len(), 1);
        assert_eq!(outs[0].env.to, Endpoint::Ue(1));
    }

    #[test]
    fn hairpin_source_buffers_then_reinjects() {
        let mut r = ran();
        r.scheme = HandoverScheme::Hairpin3gpp;
        let teid = r.gnbs.get_mut(&1).unwrap().alloc_dl_teid(1);
        // Handover command: UE moves to gNB 2; source (1) starts buffering.
        let outs = r.handle(
            Envelope::new(
                Endpoint::Amf,
                Endpoint::Gnb(1),
                Msg::Ngap(NgapMessage::HandoverCommand {
                    ue: 1,
                    target_gnb: 2,
                }),
            ),
            SimTime::ZERO,
        );
        assert_eq!(outs.len(), 1, "target notifies AMF after radio sync");
        assert!(outs[0].delay >= r.cost.ran_handover_fixed);
        // DL packets now buffer at the source.
        let pkt = DataPacket {
            ue: 1,
            flow: 0,
            dir: Direction::Downlink,
            seq: 0,
            size: 100,
            sent_at: SimTime::ZERO,
            dst_port: 80,
            protocol: 6,
            tunnel_teid: Some(teid),
            ack_seq: None,
        };
        let outs = r.handle(
            Envelope::new(Endpoint::UpfU, Endpoint::Gnb(1), Msg::Data(pkt)),
            SimTime::ZERO,
        );
        assert!(outs.is_empty());
        assert_eq!(r.counters.get("gnb_buffered"), 1);
        // Context release at the source re-injects toward the UPF.
        let outs = r.handle(
            Envelope::new(
                Endpoint::Amf,
                Endpoint::Gnb(1),
                Msg::Ngap(NgapMessage::UeContextReleaseCommand { ue: 1 }),
            ),
            SimTime::ZERO,
        );
        let reinjected: Vec<_> = outs.iter().filter(|o| o.env.to == Endpoint::UpfU).collect();
        assert_eq!(reinjected.len(), 1);
        assert!(
            reinjected[0].delay >= r.cost.upf_gnb_prop,
            "hairpin pays propagation"
        );
        assert_eq!(r.counters.get("hairpin_reinjected"), 1);
    }

    #[test]
    fn gnb_buffer_overflow_drops() {
        let mut r = ran();
        r.scheme = HandoverScheme::Hairpin3gpp;
        r.gnbs.get_mut(&1).unwrap().buffer_cap = 2;
        let teid = r.gnbs.get_mut(&1).unwrap().alloc_dl_teid(1);
        r.handle(
            Envelope::new(
                Endpoint::Amf,
                Endpoint::Gnb(1),
                Msg::Ngap(NgapMessage::HandoverCommand {
                    ue: 1,
                    target_gnb: 2,
                }),
            ),
            SimTime::ZERO,
        );
        for seq in 0..4 {
            let pkt = DataPacket {
                ue: 1,
                flow: 0,
                dir: Direction::Downlink,
                seq,
                size: 100,
                sent_at: SimTime::ZERO,
                dst_port: 80,
                protocol: 6,
                tunnel_teid: Some(teid),
                ack_seq: None,
            };
            r.handle(
                Envelope::new(Endpoint::UpfU, Endpoint::Gnb(1), Msg::Data(pkt)),
                SimTime::ZERO,
            );
        }
        assert_eq!(r.counters.get("gnb_buffered"), 2);
        assert_eq!(r.counters.get("gnb_drop_buffer_overflow"), 2);
    }

    #[test]
    fn paging_wakes_ue_after_fixed_delay() {
        let mut r = ran();
        let guti = 0xF000_0000_0000_0000 | 101;
        let outs = r.handle(
            Envelope::new(
                Endpoint::Amf,
                Endpoint::Gnb(1),
                Msg::Ngap(NgapMessage::Paging { guti }),
            ),
            SimTime::ZERO,
        );
        assert_eq!(outs[0].env.to, Endpoint::Ue(1));
        let outs = r.handle(outs.into_iter().next().unwrap().env, SimTime::ZERO);
        assert_eq!(outs.len(), 1);
        assert_eq!(outs[0].delay, r.cost.ran_paging_fixed);
        match &outs[0].env.msg {
            Msg::Ngap(NgapMessage::InitialUeMessage {
                nas: NasMessage::ServiceRequest { .. },
                ..
            }) => {}
            other => panic!("unexpected {other:?}"),
        }
    }
}
