//! A Reno-style TCP sender/receiver model for the QoE experiments.
//!
//! The paper's §5.4/§5.5/Appendix C results hinge on one mechanism: a
//! handover or failover stalls the downlink longer than Linux's minimum
//! retransmission timeout (200 ms), so senders time out *spuriously*,
//! retransmit data that was merely buffered, and collapse their
//! congestion windows — degrading goodput and page-load time. This model
//! reproduces exactly that machinery:
//!
//! - slow start / congestion avoidance / fast retransmit on 3 dup-acks,
//! - an RTO timer with SRTT/RTTVAR estimation clamped to `MIN_RTO`
//!   (200 ms, the Linux default the paper cites),
//! - cwnd collapse to 1 MSS on timeout, ssthresh halving,
//! - spurious-retransmission accounting (a retransmission is spurious if
//!   the original was not actually lost).
//!
//! The model is transport-only and segment-granular (one [`DataPacket`]
//! = one MSS): the driver delivers packets/acks with whatever delays the
//! simulated network imposes and calls [`TcpSender::on_ack`] /
//! [`TcpSender::on_tick`]. No wire-level TCP headers are involved —
//! `l25gc-pkt::tcp` covers the wire format; this covers behaviour.

use l25gc_core::msg::{DataPacket, Direction, UeId};
use l25gc_sim::{SimDuration, SimTime, TimeSeries};

/// Linux's default minimum retransmission timeout.
pub const MIN_RTO: SimDuration = SimDuration::from_millis(200);
/// Maximum segment size used by the experiments (MTU-sized frames).
pub const MSS: usize = 1400;
/// ACK segment size on the wire.
pub const ACK_SIZE: usize = 40;

/// The sending side of one TCP connection (lives at the data network,
/// streaming downlink toward a UE — the paper's DL-dominant workloads).
#[derive(Debug)]
pub struct TcpSender {
    /// UE this connection serves.
    pub ue: UeId,
    /// Flow id distinguishing parallel connections.
    pub flow: u32,
    /// Total segments the application wants to send; `u64::MAX` for an
    /// unbounded (flent-style) stream.
    pub total_segments: u64,

    next_seq: u64,
    /// Highest sequence ever sent (for marking rewound sends as
    /// retransmissions).
    max_seq_sent: u64,
    highest_acked: u64,
    /// Fast-recovery exit point (snapshot of `next_seq` at entry).
    recovery_seq: u64,
    cwnd: f64,
    ssthresh: f64,
    dup_acks: u32,
    in_fast_recovery: bool,

    srtt: Option<SimDuration>,
    min_rtt: Option<SimDuration>,
    rttvar: SimDuration,
    rto: SimDuration,
    /// When the RTO timer fires (None = no outstanding data).
    rto_deadline: Option<SimTime>,
    /// Send times of in-flight segments for RTT sampling + spurious
    /// detection: (seq, sent_at, retransmitted).
    sent: Vec<(u64, SimTime, bool)>,

    /// Retransmissions performed.
    pub retransmissions: u64,
    /// Retransmissions that later proved spurious (the original arrived).
    pub spurious_retransmissions: u64,
    /// RTO expirations.
    pub timeouts: u64,
    /// cwnd samples over time (segments).
    pub cwnd_trace: TimeSeries,
    /// RTT samples over time (µs).
    pub rtt_trace: TimeSeries,
    /// Cumulative acked segments over time (for goodput).
    pub acked_trace: TimeSeries,
}

impl TcpSender {
    /// A sender with `total_bytes` of application data (rounded up to
    /// whole segments), or unbounded when `None`.
    pub fn new(ue: UeId, flow: u32, total_bytes: Option<u64>) -> TcpSender {
        let total_segments = total_bytes
            .map(|b| b.div_ceil(MSS as u64))
            .unwrap_or(u64::MAX);
        TcpSender {
            ue,
            flow,
            total_segments,
            next_seq: 0,
            max_seq_sent: 0,
            highest_acked: 0,
            recovery_seq: 0,
            cwnd: 10.0, // RFC 6928 initial window
            ssthresh: f64::INFINITY,
            dup_acks: 0,
            in_fast_recovery: false,
            srtt: None,
            min_rtt: None,
            rttvar: SimDuration::ZERO,
            rto: MIN_RTO,
            rto_deadline: None,
            sent: Vec::new(),
            retransmissions: 0,
            spurious_retransmissions: 0,
            timeouts: 0,
            cwnd_trace: TimeSeries::new(),
            rtt_trace: TimeSeries::new(),
            acked_trace: TimeSeries::new(),
        }
    }

    /// Segments acknowledged so far.
    pub fn acked_segments(&self) -> u64 {
        self.highest_acked
    }

    /// Bytes acknowledged so far.
    pub fn acked_bytes(&self) -> u64 {
        self.highest_acked * MSS as u64
    }

    /// True when the whole transfer is acknowledged.
    pub fn is_complete(&self) -> bool {
        self.total_segments != u64::MAX && self.highest_acked >= self.total_segments
    }

    /// Current congestion window in segments.
    pub fn cwnd(&self) -> f64 {
        self.cwnd
    }

    /// Current RTO value.
    pub fn rto(&self) -> SimDuration {
        self.rto
    }

    /// When the engine must next call [`TcpSender::on_tick`].
    pub fn next_timeout(&self) -> Option<SimTime> {
        self.rto_deadline
    }

    fn in_flight(&self) -> u64 {
        self.next_seq - self.highest_acked
    }

    /// Emits as many new segments as cwnd allows. Call after `new`, after
    /// every `on_ack`, and after every `on_tick`. After an RTO rewind the
    /// same window re-covers previously sent sequences; those are marked
    /// retransmissions (go-back-N) and excluded from RTT sampling (Karn).
    pub fn pump(&mut self, now: SimTime) -> Vec<DataPacket> {
        let mut out = Vec::new();
        while (self.in_flight() as f64) < self.cwnd && self.next_seq < self.total_segments {
            let seq = self.next_seq;
            self.next_seq += 1;
            let is_retx = seq < self.max_seq_sent;
            if is_retx {
                self.retransmissions += 1;
            }
            self.max_seq_sent = self.max_seq_sent.max(self.next_seq);
            self.record_sent(seq, now, is_retx);
            out.push(self.segment(seq, now));
        }
        if !out.is_empty() && self.rto_deadline.is_none() {
            self.rto_deadline = Some(now + self.rto);
        }
        out
    }

    fn record_sent(&mut self, seq: u64, now: SimTime, retx: bool) {
        if let Some(e) = self.sent.iter_mut().find(|e| e.0 == seq) {
            e.1 = now;
            e.2 = e.2 || retx;
        } else {
            self.sent.push((seq, now, retx));
        }
    }

    fn segment(&self, seq: u64, now: SimTime) -> DataPacket {
        DataPacket {
            ue: self.ue,
            flow: self.flow,
            dir: Direction::Downlink,
            seq,
            size: MSS,
            sent_at: now,
            dst_port: 443,
            protocol: 6,
            tunnel_teid: None,
            ack_seq: None,
        }
    }

    /// Processes a cumulative ACK (`ack` = next expected seq). Returns
    /// retransmissions to send immediately (fast retransmit).
    pub fn on_ack(&mut self, ack: u64, now: SimTime) -> Vec<DataPacket> {
        let mut out = Vec::new();
        if ack > self.highest_acked {
            // New data acked.
            let newly = ack - self.highest_acked;
            let first_newly_acked = self.highest_acked;
            self.highest_acked = ack;
            // A late ack (original flight, post-rewind) can overtake the
            // rewound send cursor.
            self.next_seq = self.next_seq.max(ack);
            self.dup_acks = 0;

            // RTT sample from the *oldest* newly-acked segment (the one
            // whose delivery moved the cumulative ack), never from
            // retransmitted segments (Karn's algorithm). Sampling a later
            // segment would mis-attribute hole-induced ack delay to the
            // network.
            if let Some(&(_, sent_at, retx)) =
                self.sent.iter().find(|&&(s, _, _)| s == first_newly_acked)
            {
                if !retx {
                    self.rtt_sample(now.duration_since(sent_at), now);
                }
            }
            // Spurious-retransmission detection: a retransmitted segment
            // acked sooner than one RTT after retransmission means the
            // original was in flight all along. Heuristic: if the ack
            // arrives within `srtt/2` of the retransmission, count it.
            let spurious_window = self.srtt.unwrap_or(MIN_RTO) / 2;
            for &(s, sent_at, retx) in &self.sent {
                if retx && s < ack && now.duration_since(sent_at) < spurious_window {
                    self.spurious_retransmissions += 1;
                }
            }
            self.sent.retain(|&(s, _, _)| s >= ack);

            if self.in_fast_recovery {
                if self.highest_acked >= self.recovery_seq {
                    self.in_fast_recovery = false;
                    self.cwnd = self.ssthresh;
                } else {
                    // NewReno partial ack: the next hole is also lost;
                    // retransmit it immediately and deflate the window.
                    out.push(self.retransmit(self.highest_acked, now));
                    self.cwnd = (self.cwnd - newly as f64 + 1.0).max(1.0);
                }
            } else if self.cwnd < self.ssthresh {
                self.cwnd += newly as f64; // slow start
            } else {
                self.cwnd += newly as f64 / self.cwnd; // congestion avoidance
            }

            self.rto_deadline = if self.in_flight() > 0 {
                Some(now + self.rto)
            } else {
                None
            };
        } else if self.in_flight() > 0 {
            // Duplicate ACK.
            self.dup_acks += 1;
            if self.dup_acks == 3 && !self.in_fast_recovery {
                // Fast retransmit + fast recovery.
                self.ssthresh = (self.cwnd / 2.0).max(2.0);
                self.cwnd = self.ssthresh + 3.0;
                self.in_fast_recovery = true;
                self.recovery_seq = self.next_seq;
                out.push(self.retransmit(self.highest_acked, now));
            } else if self.in_fast_recovery {
                self.cwnd += 1.0; // window inflation per extra dup-ack
            }
        }
        self.cwnd_trace.record(now, self.cwnd);
        self.acked_trace.record(now, self.highest_acked as f64);
        out
    }

    fn retransmit(&mut self, seq: u64, now: SimTime) -> DataPacket {
        self.retransmissions += 1;
        self.record_sent(seq, now, true);
        self.segment(seq, now)
    }

    /// Drives the RTO timer; call when `now >= next_timeout()`. Returns
    /// the go-back-N retransmission burst (first unacked segment; Reno
    /// recovers the rest via subsequent acks).
    pub fn on_tick(&mut self, now: SimTime) -> Vec<DataPacket> {
        let Some(deadline) = self.rto_deadline else {
            return Vec::new();
        };
        if now < deadline || self.in_flight() == 0 {
            return Vec::new();
        }
        // RTO expiry: collapse to one segment, rewind to the first
        // unacked sequence (go-back-N — everything in flight will be
        // resent as the window reopens), exponential backoff.
        self.timeouts += 1;
        self.ssthresh = (self.cwnd / 2.0).max(2.0);
        self.cwnd = 1.0;
        self.in_fast_recovery = false;
        self.dup_acks = 0;
        self.sent.clear();
        self.next_seq = self.highest_acked + 1;
        let max_rto = SimDuration::from_secs(60);
        self.rto = if self.rto >= max_rto {
            max_rto
        } else {
            (self.rto * 2u64).min(max_rto)
        };
        self.rto_deadline = Some(now + self.rto);
        self.cwnd_trace.record(now, self.cwnd);
        vec![self.retransmit(self.highest_acked, now)]
    }

    fn rtt_sample(&mut self, rtt: SimDuration, now: SimTime) {
        debug_assert!(
            rtt < SimDuration::from_secs(3600),
            "absurd RTT sample {rtt} at {now}"
        );
        if std::env::var_os("L25GC_TCP_DEBUG").is_some() && rtt > SimDuration::from_secs(1) {
            eprintln!(
                "big RTT sample {rtt} at {now}: flow={} acked={} next={} max_sent={} rto={} sent_len={}",
                self.flow, self.highest_acked, self.next_seq, self.max_seq_sent, self.rto,
                self.sent.len()
            );
        }
        self.min_rtt = Some(match self.min_rtt {
            Some(m) => m.min(rtt),
            None => rtt,
        });
        // Hystart-style delay-increase exit from slow start: a growing
        // RTT means the bottleneck queue is filling; stop doubling before
        // a burst loss (what Linux senders do in practice).
        if self.cwnd < self.ssthresh {
            let min = self.min_rtt.expect("just set");
            if rtt > min * 2u64 + SimDuration::from_millis(4) {
                self.ssthresh = self.cwnd;
            }
        }
        self.rtt_trace.record_dur(now, rtt);
        match self.srtt {
            None => {
                self.srtt = Some(rtt);
                self.rttvar = rtt / 2;
            }
            Some(srtt) => {
                // RFC 6298 with α=1/8, β=1/4.
                let delta = if rtt > srtt { rtt - srtt } else { srtt - rtt };
                self.rttvar = (self.rttvar * 3u64 + delta) / 4;
                self.srtt = Some((srtt * 7u64 + rtt) / 8);
            }
        }
        let srtt = self.srtt.expect("just set");
        self.rto = (srtt + self.rttvar * 4u64).max(MIN_RTO);
    }
}

/// The receiving side: generates cumulative ACKs, tracks out-of-order
/// arrivals.
#[derive(Debug)]
pub struct TcpReceiver {
    /// Next in-order sequence expected.
    next_expected: u64,
    /// Out-of-order segments held for reassembly.
    ooo: Vec<u64>,
    /// Segments delivered in order to the application.
    pub delivered: u64,
    /// Duplicated segments received (already-delivered data).
    pub duplicates: u64,
}

impl TcpReceiver {
    /// A fresh receiver.
    pub fn new() -> TcpReceiver {
        TcpReceiver {
            next_expected: 0,
            ooo: Vec::new(),
            delivered: 0,
            duplicates: 0,
        }
    }

    /// Processes one data segment, returning the cumulative ACK to send
    /// (the next expected sequence number).
    pub fn on_segment(&mut self, seq: u64) -> u64 {
        if seq < self.next_expected || self.ooo.contains(&seq) {
            self.duplicates += 1;
        } else if seq == self.next_expected {
            self.next_expected += 1;
            self.delivered += 1;
            // Drain contiguous out-of-order data.
            while let Some(pos) = self.ooo.iter().position(|&s| s == self.next_expected) {
                self.ooo.swap_remove(pos);
                self.next_expected += 1;
                self.delivered += 1;
            }
        } else {
            self.ooo.push(seq);
        }
        self.next_expected
    }

    /// Builds the ACK packet for a given data packet.
    pub fn ack_packet(&self, data: &DataPacket, ack: u64, now: SimTime) -> DataPacket {
        DataPacket {
            ue: data.ue,
            flow: data.flow,
            dir: Direction::Uplink,
            seq: data.seq,
            size: ACK_SIZE,
            sent_at: now,
            dst_port: data.dst_port,
            protocol: 6,
            tunnel_teid: None,
            ack_seq: Some(ack),
        }
    }
}

impl Default for TcpReceiver {
    fn default() -> Self {
        TcpReceiver::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    /// Runs sender+receiver over an ideal pipe with the given one-way
    /// delay; returns time to complete.
    fn run_ideal(total_bytes: u64, owd_ms: u64) -> (TcpSender, SimTime) {
        let mut tx = TcpSender::new(1, 0, Some(total_bytes));
        let mut rx = TcpReceiver::new();
        let mut now = SimTime::ZERO;
        // (arrival_time, packet) queues, processed in time order.
        let mut events: Vec<(SimTime, DataPacket)> = tx
            .pump(now)
            .into_iter()
            .map(|p| (now + SimDuration::from_millis(owd_ms), p))
            .collect();
        let mut guard = 0;
        while !tx.is_complete() {
            guard += 1;
            assert!(guard < 1_000_000, "transfer did not complete");
            events.sort_by_key(|e| e.0);
            let (at, pkt) = events.remove(0);
            now = at;
            if let Some(acked) = pkt.ack_seq {
                for r in tx.on_ack(acked, now) {
                    events.push((now + SimDuration::from_millis(owd_ms), r));
                }
                for p in tx.pump(now) {
                    events.push((now + SimDuration::from_millis(owd_ms), p));
                }
            } else {
                let ack = rx.on_segment(pkt.seq);
                let ap = rx.ack_packet(&pkt, ack, now);
                events.push((now + SimDuration::from_millis(owd_ms), ap));
            }
        }
        (tx, now)
    }

    #[test]
    fn lossless_transfer_completes_without_retransmissions() {
        let (tx, _) = run_ideal(1_000_000, 10);
        assert_eq!(tx.retransmissions, 0);
        assert_eq!(tx.timeouts, 0);
        assert!(tx.is_complete());
    }

    #[test]
    fn slow_start_doubles_cwnd_per_rtt() {
        let mut tx = TcpSender::new(1, 0, None);
        let initial = tx.pump(t(0)).len();
        assert_eq!(initial, 10, "IW10");
        // Ack the whole first flight: cwnd should double.
        let mut sent = initial as u64;
        for ack in 1..=sent {
            tx.on_ack(ack, t(20));
        }
        assert!((tx.cwnd() - 20.0).abs() < 1e-9, "cwnd {}", tx.cwnd());
        let second = tx.pump(t(20)).len() as u64;
        assert_eq!(second, 20 - (sent - sent)); // 20 allowed, 0 in flight
        sent += second;
        let _ = sent;
    }

    #[test]
    fn three_dup_acks_trigger_fast_retransmit() {
        let mut tx = TcpSender::new(1, 0, None);
        let flight = tx.pump(t(0));
        assert!(flight.len() >= 5);
        // Segment 0 lost: acks for 1..4 all say "expecting 0".
        assert!(tx.on_ack(0, t(20)).is_empty());
        assert!(tx.on_ack(0, t(21)).is_empty());
        let retx = tx.on_ack(0, t(22));
        assert_eq!(retx.len(), 1, "third dup-ack retransmits");
        assert_eq!(retx[0].seq, 0);
        assert_eq!(tx.retransmissions, 1);
        assert!(tx.cwnd() < 10.0, "window halved: {}", tx.cwnd());
    }

    #[test]
    fn rto_fires_after_min_200ms_and_collapses_cwnd() {
        let mut tx = TcpSender::new(1, 0, None);
        tx.pump(t(0));
        assert!(tx.rto() >= MIN_RTO);
        // Nothing before the deadline.
        assert!(tx.on_tick(t(150)).is_empty());
        assert_eq!(tx.timeouts, 0);
        // Past the deadline: timeout.
        let deadline = tx.next_timeout().unwrap();
        let retx = tx.on_tick(deadline);
        assert_eq!(retx.len(), 1);
        assert_eq!(tx.timeouts, 1);
        assert_eq!(tx.cwnd() as u64, 1);
        // Exponential backoff.
        assert!(tx.rto() >= MIN_RTO * 2u64);
    }

    #[test]
    fn stall_longer_than_rto_causes_spurious_retransmission() {
        // The paper's core mechanism: segments delayed (buffered at the
        // 5GC during handover) longer than 200 ms are NOT lost, but the
        // sender times out and retransmits them anyway.
        let mut tx = TcpSender::new(1, 0, None);
        let flight = tx.pump(t(0));
        assert!(!flight.is_empty());
        // Establish an SRTT so the spurious window is meaningful.
        tx.on_ack(1, t(20));
        tx.pump(t(20));
        // Stall: no acks until 300 ms. RTO fires.
        let deadline = tx.next_timeout().unwrap();
        let retx = tx.on_tick(deadline);
        assert_eq!(retx.len(), 1);
        // The delayed (buffered) acks now arrive shortly after the
        // retransmission — proving it spurious.
        tx.on_ack(5, deadline + SimDuration::from_millis(5));
        assert!(tx.spurious_retransmissions > 0);
    }

    #[test]
    fn receiver_reassembles_out_of_order() {
        let mut rx = TcpReceiver::new();
        assert_eq!(rx.on_segment(0), 1);
        assert_eq!(rx.on_segment(2), 1, "gap at 1");
        assert_eq!(rx.on_segment(3), 1);
        assert_eq!(rx.on_segment(1), 4, "gap filled, cumulative jump");
        assert_eq!(rx.delivered, 4);
        assert_eq!(rx.duplicates, 0);
        assert_eq!(rx.on_segment(2), 4);
        assert_eq!(rx.duplicates, 1);
    }

    #[test]
    fn throughput_scales_with_rtt() {
        // Same transfer, two RTTs: the longer RTT must take longer.
        let (_, t_short) = run_ideal(2_000_000, 5);
        let (_, t_long) = run_ideal(2_000_000, 50);
        assert!(t_long > t_short);
    }

    #[test]
    fn bounded_transfer_reports_progress() {
        let (tx, _) = run_ideal(500_000, 10);
        assert_eq!(tx.acked_segments(), 500_000u64.div_ceil(MSS as u64));
        assert!(tx.acked_bytes() >= 500_000);
        assert!(!tx.rtt_trace.is_empty());
        assert!(!tx.cwnd_trace.is_empty());
    }
}
