//! Traffic generation and measurement (the MoonGen role in the paper's
//! testbed): constant-bit-rate flows with per-packet RTT tracking.
//!
//! For the paging and handover experiments (Figs 13/14, Tables 1/2) the
//! generator on the DN side sends downlink packets at a fixed rate; the
//! UE side acknowledges each packet, and the generator records the RTT
//! "of packets sent from and ack'd back to the generator".

use l25gc_core::msg::{DataPacket, Direction, UeId};
use l25gc_sim::{SimDuration, SimTime, Stats, TimeSeries};

/// A constant-rate downlink flow source with RTT accounting.
#[derive(Debug)]
pub struct CbrFlow {
    /// Target UE.
    pub ue: UeId,
    /// Flow id.
    pub flow: u32,
    /// Packet payload size.
    pub size: usize,
    /// Inter-packet gap (1/rate).
    pub interval: SimDuration,
    /// Direction of the data stream.
    pub dir: Direction,
    next_seq: u64,
    /// Send time per outstanding sequence number.
    outstanding: Vec<(u64, SimTime)>,
    /// Recorded RTTs (µs), one sample per acked packet.
    pub rtt: TimeSeries,
    /// Packets sent.
    pub sent: u64,
    /// Acks received.
    pub acked: u64,
}

impl CbrFlow {
    /// A flow sending `pps` packets per second of `size` bytes.
    pub fn downlink(ue: UeId, flow: u32, pps: u64, size: usize) -> CbrFlow {
        CbrFlow {
            ue,
            flow,
            size,
            interval: SimDuration::from_secs(1) / pps,
            dir: Direction::Downlink,
            next_seq: 0,
            outstanding: Vec::new(),
            rtt: TimeSeries::new(),
            sent: 0,
            acked: 0,
        }
    }

    /// Emits the next packet; the caller schedules the following emission
    /// `interval` later.
    pub fn next_packet(&mut self, now: SimTime) -> DataPacket {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.sent += 1;
        self.outstanding.push((seq, now));
        DataPacket {
            ue: self.ue,
            flow: self.flow,
            dir: self.dir,
            seq,
            size: self.size,
            sent_at: now,
            dst_port: 5001,
            protocol: 17,
            tunnel_teid: None,
            ack_seq: None,
        }
    }

    /// Processes an ack (echoed packet), recording its RTT.
    pub fn on_ack(&mut self, seq: u64, now: SimTime) {
        if let Some(pos) = self.outstanding.iter().position(|&(s, _)| s == seq) {
            let (_, sent_at) = self.outstanding.swap_remove(pos);
            self.acked += 1;
            self.rtt.record_dur(now, now.duration_since(sent_at));
        }
    }

    /// Packets never acknowledged (lost somewhere on the path).
    pub fn lost(&self) -> u64 {
        self.sent - self.acked
    }

    /// RTT summary statistics (µs).
    pub fn rtt_stats(&self) -> Stats {
        self.rtt.stats()
    }

    /// Packets whose RTT exceeded `threshold` — the Tables 1/2 "# Pkts
    /// experience higher RTT" column (threshold = a small multiple of the
    /// base RTT).
    pub fn pkts_above(&self, threshold: SimDuration) -> usize {
        self.rtt.count_above(threshold.as_micros_f64())
    }

    /// Mean RTT over a time window (µs) — used to read "base RTT" before
    /// an event and "RTT after" it.
    pub fn mean_rtt_in(&self, from: SimTime, to: SimTime) -> Option<f64> {
        self.rtt.mean_in_window(from, to)
    }

    /// The maximum observed RTT (µs).
    pub fn max_rtt(&self) -> Option<f64> {
        self.rtt.max()
    }
}

/// The UE-side echo: turns a delivered packet into an ack traveling back.
pub fn echo(pkt: &DataPacket, now: SimTime) -> DataPacket {
    DataPacket {
        dir: match pkt.dir {
            Direction::Downlink => Direction::Uplink,
            Direction::Uplink => Direction::Downlink,
        },
        size: 64,
        sent_at: now,
        tunnel_teid: None,
        ack_seq: Some(pkt.seq),
        ..*pkt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cbr_spacing_and_seq() {
        let mut f = CbrFlow::downlink(1, 0, 10_000, 200);
        assert_eq!(f.interval, SimDuration::from_micros(100));
        let p0 = f.next_packet(SimTime::ZERO);
        let p1 = f.next_packet(SimTime::ZERO + f.interval);
        assert_eq!(p0.seq, 0);
        assert_eq!(p1.seq, 1);
        assert_eq!(f.sent, 2);
    }

    #[test]
    fn rtt_accounting() {
        let mut f = CbrFlow::downlink(1, 0, 1000, 100);
        let t0 = SimTime::ZERO;
        let p = f.next_packet(t0);
        let ack_time = t0 + SimDuration::from_micros(116);
        f.on_ack(p.seq, ack_time);
        assert_eq!(f.acked, 1);
        assert_eq!(f.lost(), 0);
        let stats = f.rtt_stats();
        assert!((stats.mean - 116.0).abs() < 1e-9);
    }

    #[test]
    fn lost_packets_counted() {
        let mut f = CbrFlow::downlink(1, 0, 1000, 100);
        for i in 0..10 {
            f.next_packet(SimTime::ZERO + f.interval * i);
        }
        for seq in 0..7u64 {
            f.on_ack(seq, SimTime::ZERO + SimDuration::from_millis(1));
        }
        assert_eq!(f.lost(), 3);
        // Acking an unknown seq is a no-op.
        f.on_ack(999, SimTime::ZERO);
        assert_eq!(f.acked, 7);
    }

    #[test]
    fn higher_rtt_counting() {
        let mut f = CbrFlow::downlink(1, 0, 1000, 100);
        for i in 0..5u64 {
            let p = f.next_packet(SimTime::ZERO);
            let rtt = if i < 2 { 100 } else { 50_000 };
            f.on_ack(p.seq, SimTime::ZERO + SimDuration::from_micros(rtt));
        }
        assert_eq!(f.pkts_above(SimDuration::from_micros(1000)), 3);
    }

    #[test]
    fn echo_reverses_direction() {
        let mut f = CbrFlow::downlink(1, 0, 1000, 100);
        let p = f.next_packet(SimTime::ZERO);
        let e = echo(&p, SimTime::ZERO + SimDuration::from_micros(10));
        assert_eq!(e.dir, Direction::Uplink);
        assert_eq!(e.ack_seq, Some(p.seq));
    }
}
