//! Page-load-time model for the §5.4.1 experiment.
//!
//! The paper loads a webpage of a few ~15 MB images plus scripts/CSS in
//! Firefox with six parallel TCP connections over a 30 Mbps / 20 ms-RTT
//! bottleneck, while handovers occur. PLT is when the last object
//! finishes. This module models the page as a manifest of objects
//! assigned round-robin to N connections; the driver owns the actual
//! [`TcpSender`]s (so they route like any other flow) and feeds them
//! back into [`PageLoad::update`].

use std::collections::HashMap;

use l25gc_core::msg::UeId;
use l25gc_sim::SimTime;

use crate::tcp::TcpSender;

/// One fetchable resource.
#[derive(Debug, Clone, Copy)]
pub struct WebObject {
    /// Size in bytes.
    pub bytes: u64,
}

/// The paper's page: high-resolution images + JS + CSS.
pub fn paper_page() -> Vec<WebObject> {
    let mut objs = vec![WebObject { bytes: 60_000 }]; // HTML
                                                      // "a few high-resolution images (each ~15MB)".
    for _ in 0..5 {
        objs.push(WebObject { bytes: 15_000_000 });
    }
    // JavaScript libraries and CSS files.
    for _ in 0..6 {
        objs.push(WebObject { bytes: 300_000 });
    }
    for _ in 0..4 {
        objs.push(WebObject { bytes: 50_000 });
    }
    objs
}

/// Bookkeeping for a page load over parallel connections.
#[derive(Debug)]
pub struct PageLoad {
    /// Flow ids of the participating connections.
    pub flows: Vec<u32>,
    started: SimTime,
    finished: Option<SimTime>,
}

impl PageLoad {
    /// Distributes `objects` round-robin across `n_conns` connections
    /// (Firefox's default is six), returning the bookkeeping plus the
    /// senders for the driver to own. Flow ids start at `first_flow`.
    pub fn new(
        ue: UeId,
        objects: &[WebObject],
        n_conns: u32,
        first_flow: u32,
        now: SimTime,
    ) -> (PageLoad, Vec<TcpSender>) {
        assert!(n_conns > 0);
        let mut per_conn = vec![0u64; n_conns as usize];
        for (i, obj) in objects.iter().enumerate() {
            per_conn[i % n_conns as usize] += obj.bytes;
        }
        let senders: Vec<TcpSender> = per_conn
            .into_iter()
            .enumerate()
            .map(|(i, bytes)| TcpSender::new(ue, first_flow + i as u32, Some(bytes)))
            .collect();
        let flows = senders.iter().map(|s| s.flow).collect();
        (
            PageLoad {
                flows,
                started: now,
                finished: None,
            },
            senders,
        )
    }

    /// Marks completion once every connection finished. Call after each
    /// ack delivery with the driver's sender map.
    pub fn update(&mut self, senders: &HashMap<u32, TcpSender>, now: SimTime) {
        if self.finished.is_none()
            && self
                .flows
                .iter()
                .all(|f| senders.get(f).map(|s| s.is_complete()).unwrap_or(false))
        {
            self.finished = Some(now);
        }
    }

    /// True when every object is fully transferred.
    pub fn is_complete(&self) -> bool {
        self.finished.is_some()
    }

    /// The page load time, if complete.
    pub fn plt(&self) -> Option<l25gc_sim::SimDuration> {
        self.finished.map(|f| f.duration_since(self.started))
    }

    /// Total spurious retransmissions across the page's connections.
    pub fn spurious_retransmissions(&self, senders: &HashMap<u32, TcpSender>) -> u64 {
        self.flows
            .iter()
            .filter_map(|f| senders.get(f))
            .map(|s| s.spurious_retransmissions)
            .sum()
    }

    /// Total RTO timeouts across the page's connections.
    pub fn timeouts(&self, senders: &HashMap<u32, TcpSender>) -> u64 {
        self.flows
            .iter()
            .filter_map(|f| senders.get(f))
            .map(|s| s.timeouts)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tcp::MSS;

    #[test]
    fn page_split_round_robin() {
        let page = paper_page();
        let (pl, senders) = PageLoad::new(1, &page, 6, 0, SimTime::ZERO);
        assert_eq!(senders.len(), 6);
        assert_eq!(pl.flows, vec![0, 1, 2, 3, 4, 5]);
        let total_page: u64 = page.iter().map(|o| o.bytes).sum();
        let total_model: u64 = senders.iter().map(|s| s.total_segments * MSS as u64).sum();
        // Segment rounding may add up to one MSS per connection.
        assert!(total_model >= total_page);
        assert!(total_model < total_page + 6 * MSS as u64);
        // The images dominate: ~77 MB page.
        assert!(total_page > 75_000_000);
    }

    #[test]
    fn completion_requires_all_connections() {
        let objs = [WebObject { bytes: 1400 }, WebObject { bytes: 1400 }];
        let (mut pl, senders) = PageLoad::new(1, &objs, 2, 0, SimTime::ZERO);
        let mut map: HashMap<u32, TcpSender> = senders.into_iter().map(|s| (s.flow, s)).collect();
        // Finish only the first connection.
        let n0 = map[&0].total_segments;
        map.get_mut(&0).unwrap().pump(SimTime::ZERO);
        map.get_mut(&0).unwrap().on_ack(n0, SimTime::ZERO);
        pl.update(&map, SimTime::ZERO);
        assert!(!pl.is_complete());
        let n1 = map[&1].total_segments;
        map.get_mut(&1).unwrap().pump(SimTime::ZERO);
        map.get_mut(&1).unwrap().on_ack(n1, SimTime::ZERO);
        let end = SimTime::ZERO + l25gc_sim::SimDuration::from_secs(28);
        pl.update(&map, end);
        assert!(pl.is_complete());
        assert_eq!(pl.plt(), Some(l25gc_sim::SimDuration::from_secs(28)));
        assert_eq!(pl.spurious_retransmissions(&map), 0);
        assert_eq!(pl.timeouts(&map), 0);
    }
}
