//! The adapter half of the pure/adapter split: one facade that owns the
//! clocked components and drives the pure [`FailoverFsm`].
//!
//! Before this facade existed, callers composed the §3.5 pieces by hand
//! — an [`SbfdSession`] for detection, a [`PacketLogger`] for the
//! in-flight log, a [`Replica`] for checkpoints, a [`UeAwareLb`] for
//! affinity, and a [`FailoverTimeline`] for the recovery arithmetic —
//! and had to get the ordering rules right at every call site. The
//! coordinator owns all five and consults the [`FailoverFsm`] for every
//! ordering decision, so the protocol logic exists exactly once (and is
//! property-tested in isolation, clock-free, in `tests/fsm_prop.rs`).
//!
//! The facade is protocol-level, not hot-path: the `l25gc-load` driver
//! charges failover cost analytically via [`FailoverTimeline`] and only
//! counts replayed events; this type is for experiments that walk a real
//! state machine (`S` = a `CoreNetwork` in the testbed) through a
//! failure.

use l25gc_core::msg::{Envelope, UeId};
use l25gc_nfv::cost::CostModel;
use l25gc_sim::SimTime;

use crate::detector::SbfdSession;
use crate::fsm::{FailoverFsm, FaultEvent, FsmAction, FsmState};
use crate::lb::{FailoverTimeline, UeAwareLb, UnitId};
use crate::logger::{LoggedEntry, PacketLogger};
use crate::replica::Replica;

/// What a completed failover hands back to the caller.
#[derive(Debug)]
pub struct FailoverReport<S> {
    /// The replica state as of the last acknowledged checkpoint; the
    /// caller re-applies `replay` to reconstruct the lost tail.
    pub state: S,
    /// The counter-ordered backlog logged since the checkpoint
    /// watermark (every entry the dead primary may not have finished).
    pub replay: Vec<LoggedEntry>,
    /// When the detector confirmed the failure.
    pub detected_at: SimTime,
    /// When the standby starts serving: detection instant plus reroute
    /// plus the non-overlapped part of replay.
    pub recovered_at: SimTime,
    /// UE sessions re-pointed from the dead unit to the standby.
    pub migrated_ues: usize,
}

/// Facade composing detector, logger, replica, LB, and timeline around
/// the pure protocol machine. See the module docs.
#[derive(Debug)]
pub struct FailoverCoordinator<S: Clone> {
    fsm: FailoverFsm,
    detector: SbfdSession,
    replica: Replica<S>,
    logger: PacketLogger,
    lb: UeAwareLb,
    timeline: FailoverTimeline,
    primary: UnitId,
    standby: UnitId,
}

impl<S: Clone> FailoverCoordinator<S> {
    /// A coordinator protecting `primary` with a frozen replica on
    /// `standby`, using the paper's detector/timeline constants from
    /// `cost` and `data_capacity` entries per data log queue.
    pub fn new(
        initial: S,
        primary: UnitId,
        standby: UnitId,
        data_capacity: usize,
        cost: &CostModel,
        now: SimTime,
    ) -> FailoverCoordinator<S> {
        let detector = SbfdSession::paper(now);
        FailoverCoordinator {
            fsm: FailoverFsm::new(detector.multiplier),
            detector,
            replica: Replica::new(initial, now),
            logger: PacketLogger::new(data_capacity),
            lb: UeAwareLb::new(&[primary, standby]),
            timeline: FailoverTimeline::paper(cost),
            primary,
            standby,
        }
    }

    /// Routes a UE session (affinity-sticky, failed units excluded).
    pub fn route(&mut self, ue: UeId) -> Option<UnitId> {
        self.lb.route(ue)
    }

    /// Logs a message on its way into the unit and returns its counter.
    /// While the primary is down (failure confirmed, replay pending) the
    /// message is buffered in the log and not forwarded — external
    /// synchrony; it is delivered by the replay burst.
    pub fn ingress(&mut self, env: &Envelope) -> u64 {
        let counter = self.logger.log(env);
        let acts = self.fsm.step(FaultEvent::Ingress(counter));
        debug_assert!(
            acts.iter()
                .any(|a| matches!(a, FsmAction::LogPacket { counter: c, .. } if *c == counter)),
            "fsm and logger counters must advance in lockstep"
        );
        counter
    }

    /// Marks a logged message's output externally released (the unit
    /// responded and the output-commit gate passed).
    pub fn commit(&mut self, counter: u64) {
        self.fsm.step(FaultEvent::Commit(counter));
    }

    /// Takes a checkpoint of the primary's state: the replica snapshots
    /// at the logger's current watermark and the covered log prefix is
    /// released.
    pub fn checkpoint(&mut self, primary_state: &S, now: SimTime) {
        let upto = self.logger.next_counter();
        self.replica.checkpoint(primary_state, upto, now);
        let acts = self.fsm.step(FaultEvent::CheckpointAck(upto));
        if acts.contains(&FsmAction::ReleaseLog { upto }) {
            self.logger.release_upto(upto);
        }
    }

    /// Records a liveness probe response from the primary.
    pub fn on_probe_response(&mut self, now: SimTime) {
        self.detector.on_response(now);
        self.fsm.step(FaultEvent::HeartbeatOk);
    }

    /// Evaluates liveness at `now`. Returns the completed failover
    /// exactly once, at the poll where the detector confirms the
    /// failure: routes migrate to the standby, the replica wakes, and
    /// the post-watermark log drains as the counter-ordered replay.
    pub fn poll(&mut self, now: SimTime) -> Option<FailoverReport<S>> {
        if !self.detector.check(now) {
            return None;
        }
        // Confirmed: walk the pure machine through the same decision.
        for _ in 0..self.detector.multiplier {
            self.fsm.step(FaultEvent::HeartbeatMiss);
        }
        debug_assert!(matches!(self.fsm.state(), FsmState::Failed { .. }));
        self.lb.mark_failed(self.primary);
        let migrated_ues = self.lb.migrate(self.primary, self.standby);
        self.fsm.step(FaultEvent::RerouteDone);
        let state = self.replica.unfreeze(now);
        let acts = self.fsm.step(FaultEvent::ReplicaAwake);
        debug_assert!(acts.contains(&FsmAction::ResumeForwarding));
        let replay = self.logger.replay();
        // `now` is the detection instant, so the remaining cost is the
        // reroute plus the non-overlapped replay fraction.
        let recovered_at =
            now + self.timeline.reroute + self.timeline.replay * (1.0 - self.timeline.overlap);
        Some(FailoverReport {
            state,
            replay,
            detected_at: now,
            recovered_at,
            migrated_ues,
        })
    }

    /// The pure protocol machine (for assertions and introspection).
    pub fn fsm(&self) -> &FailoverFsm {
        &self.fsm
    }

    /// The recovery-cost arithmetic in use.
    pub fn timeline(&self) -> &FailoverTimeline {
        &self.timeline
    }

    /// Entries currently held in the packet log.
    pub fn backlog(&self) -> usize {
        self.logger.len()
    }

    /// The unit a UE is currently pinned to.
    pub fn unit_of(&self, ue: UeId) -> Option<UnitId> {
        self.lb.unit_of(ue)
    }

    /// The standby unit id.
    pub fn standby(&self) -> UnitId {
        self.standby
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use l25gc_core::msg::{Endpoint, Msg, SbiOp};
    use l25gc_sim::SimDuration;

    #[derive(Debug, Clone, PartialEq)]
    struct Toy {
        applied: u64,
    }

    fn env(ue: UeId) -> Envelope {
        Envelope::new(
            Endpoint::Gnb(1),
            Endpoint::Amf,
            Msg::Sbi {
                op: SbiOp::SmContextRetrieveReq,
                ue,
            },
        )
    }

    fn coordinator() -> FailoverCoordinator<Toy> {
        FailoverCoordinator::new(
            Toy { applied: 0 },
            1,
            2,
            64,
            &CostModel::paper(),
            SimTime::ZERO,
        )
    }

    #[test]
    fn healthy_run_never_fails_over() {
        let mut c = coordinator();
        let mut now = SimTime::ZERO;
        for i in 0..50 {
            now += SimDuration::from_micros(100);
            c.on_probe_response(now);
            c.ingress(&env(i));
            assert!(c.poll(now).is_none());
        }
        assert_eq!(c.backlog(), 50);
    }

    #[test]
    fn checkpoint_releases_log_and_failover_replays_the_tail() {
        let mut c = coordinator();
        let mut primary = Toy { applied: 0 };
        // Route two UEs to the primary, apply and commit 4 messages.
        assert_eq!(c.route(7), Some(1));
        assert_eq!(c.route(8), Some(2));
        for _ in 0..4 {
            let counter = c.ingress(&env(7));
            primary.applied += 1;
            c.commit(counter);
        }
        let t_ck = SimTime::ZERO + SimDuration::from_millis(10);
        c.checkpoint(&primary, t_ck);
        assert_eq!(c.backlog(), 0, "checkpoint releases the covered prefix");
        // Two more in-flight messages the primary dies holding.
        c.ingress(&env(7));
        c.ingress(&env(8));
        c.on_probe_response(t_ck);

        // Silence; the detector confirms within the paper's 0.5 ms.
        let mut now = t_ck;
        let report = loop {
            now += SimDuration::from_micros(50);
            if let Some(r) = c.poll(now) {
                break r;
            }
            assert!(
                now < t_ck + SimDuration::from_millis(1),
                "detection must confirm quickly"
            );
        };
        assert_eq!(report.state, primary, "checkpointed state restored");
        assert_eq!(report.replay.len(), 2, "post-watermark tail replays");
        assert!(report
            .replay
            .windows(2)
            .all(|w| w[0].counter < w[1].counter));
        assert_eq!(report.migrated_ues, 1, "UE 7 moves to the standby");
        assert_eq!(c.unit_of(7), Some(2));
        let added = report.recovered_at.duration_since(report.detected_at);
        assert!(
            added <= SimDuration::from_millis(6),
            "reroute + replay tail stays in the paper's few-ms band, got {added}"
        );
        assert!(c.poll(now + SimDuration::from_secs(1)).is_none(), "once");
    }

    #[test]
    fn ingress_during_outage_is_buffered_until_replay() {
        let mut c = coordinator();
        c.route(7);
        c.on_probe_response(SimTime::ZERO);
        // Ingress lands after the primary went silent but before the
        // detector confirmed: the FSM still forwards (failure unknown),
        // and the entry stays in the log so the replay covers it.
        c.ingress(&env(7));
        let report = c
            .poll(SimTime::ZERO + SimDuration::from_secs(1))
            .expect("silent primary fails over");
        assert_eq!(report.replay.len(), 1, "unreleased entry replays");
        assert_eq!(c.fsm().state(), FsmState::Recovered);
    }
}
