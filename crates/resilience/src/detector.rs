//! Failure detection: the LB probe agent and S-BFD-style liveness
//! sessions (§3.5.2).
//!
//! The NF manager covers *software* failures with its heartbeat sweep
//! (`l25gc-nfv::Manager::detect_failures`); this module covers *node and
//! link* failures from the outside: a simplified Seamless BFD session
//! sends probes every `interval` and declares the peer down after
//! `multiplier` consecutive misses. The paper's LB probe agent detects a
//! dead 5GC unit in under 0.5 ms.

use l25gc_sim::{SimDuration, SimTime};

/// A simplified S-BFD session from the LB toward one 5GC unit.
#[derive(Debug, Clone)]
pub struct SbfdSession {
    /// Probe transmit interval.
    pub interval: SimDuration,
    /// Consecutive misses before declaring failure.
    pub multiplier: u32,
    last_response: SimTime,
    declared_down: bool,
}

impl SbfdSession {
    /// The paper's configuration: detection within ~0.5 ms means probes
    /// every ~150 µs with a ×3 multiplier.
    pub fn paper(now: SimTime) -> SbfdSession {
        SbfdSession {
            interval: SimDuration::from_micros(150),
            multiplier: 3,
            last_response: now,
            declared_down: false,
        }
    }

    /// Records a probe response from the peer.
    pub fn on_response(&mut self, now: SimTime) {
        self.last_response = now;
        self.declared_down = false;
    }

    /// The detection deadline: if no response arrives by then, the peer
    /// is declared down.
    pub fn deadline(&self) -> SimTime {
        self.last_response + self.interval * u64::from(self.multiplier)
    }

    /// Evaluates liveness at `now`; returns true exactly once when the
    /// peer transitions to down.
    pub fn check(&mut self, now: SimTime) -> bool {
        if !self.declared_down && now >= self.deadline() {
            self.declared_down = true;
            true
        } else {
            false
        }
    }

    /// True once the peer was declared down.
    pub fn is_down(&self) -> bool {
        self.declared_down
    }

    /// Worst-case detection latency from the instant of failure.
    pub fn worst_case_detection(&self) -> SimDuration {
        self.interval * u64::from(self.multiplier) + self.interval
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_peer_never_declared_down() {
        let mut s = SbfdSession::paper(SimTime::ZERO);
        let mut now = SimTime::ZERO;
        for _ in 0..100 {
            now += s.interval;
            s.on_response(now);
            assert!(!s.check(now));
        }
        assert!(!s.is_down());
    }

    #[test]
    fn silent_peer_detected_within_half_millisecond() {
        let mut s = SbfdSession::paper(SimTime::ZERO);
        let fail_at = SimTime::ZERO + SimDuration::from_millis(5);
        let mut now = SimTime::ZERO;
        // Responsive until the failure.
        while now < fail_at {
            s.on_response(now);
            now += s.interval;
        }
        // Silence after: find the detection instant.
        let mut detected_at = None;
        for _ in 0..100 {
            now += SimDuration::from_micros(10);
            if s.check(now) {
                detected_at = Some(now);
                break;
            }
        }
        let detected_at = detected_at.expect("failure detected");
        let latency = detected_at.duration_since(fail_at);
        assert!(
            latency <= SimDuration::from_micros(500),
            "paper: <0.5 ms, got {latency}"
        );
    }

    #[test]
    fn detection_fires_exactly_once() {
        let mut s = SbfdSession::paper(SimTime::ZERO);
        let late = SimTime::ZERO + SimDuration::from_secs(1);
        assert!(s.check(late));
        assert!(
            !s.check(late + SimDuration::from_secs(1)),
            "no repeat alarms"
        );
        assert!(s.is_down());
    }

    #[test]
    fn recovery_clears_down_state() {
        let mut s = SbfdSession::paper(SimTime::ZERO);
        let late = SimTime::ZERO + SimDuration::from_secs(1);
        assert!(s.check(late));
        s.on_response(late + SimDuration::from_millis(1));
        assert!(!s.is_down());
    }
}
