//! The failover protocol as a **pure state machine** — no clocks, no
//! I/O, no threads.
//!
//! Everything the §3.5 failover path does — log, forward, detect,
//! reroute, wake the replica, replay — is expressed here as typed
//! transitions over an in-flight message multiset: [`FaultEvent`] in,
//! [`FsmAction`]s out, with the whole protocol state carried in
//! [`FsmState`] plus the log/committed bookkeeping. The adapters
//! ([`crate::SbfdSession`], [`crate::Replica`], [`crate::PacketLogger`],
//! [`crate::FailoverCoordinator`]) own the clocks and the payloads; this
//! machine owns the *ordering rules*, which makes every interleaving of
//! detect / reroute / replica-wake / ingress property-testable (see
//! `tests/fsm_prop.rs`): no in-flight message is lost, none is delivered
//! twice, and external synchrony holds — nothing is released between
//! failure detection and replay completion.
//!
//! Replay is modelled as atomic (one transition emits the whole
//! counter-ordered burst): the paper overlaps replay with rerouting, and
//! in virtual time the burst lands at the instant both the reroute and
//! the replica wake-up have completed.

use std::collections::{BTreeMap, BTreeSet};

/// Protocol-level input events, clock-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEvent {
    /// A message with caller-chosen id enters the LB toward the unit.
    Ingress(u64),
    /// The unit released the externally visible output for an ingress id
    /// (the output-commit gate passed: the local replica is synced).
    Commit(u64),
    /// The replica acknowledged a checkpoint covering every counter
    /// below the watermark; the log prefix can be released.
    CheckpointAck(u64),
    /// A liveness probe answered in time.
    HeartbeatOk,
    /// A liveness probe deadline passed unanswered.
    HeartbeatMiss,
    /// The LB finished repointing the UE session routes.
    RerouteDone,
    /// The frozen replica has been unfrozen and holds the checkpointed
    /// state.
    ReplicaAwake,
}

/// Typed outputs: what the adapters must now do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsmAction {
    /// Stamp and store the message in the packet log.
    LogPacket {
        /// The counter assigned (monotone across the machine's life).
        counter: u64,
        /// The ingress id.
        id: u64,
    },
    /// Pass the message on to the (live) unit.
    Forward {
        /// The ingress id.
        id: u64,
    },
    /// Drop all log entries with counters below the watermark.
    ReleaseLog {
        /// Exclusive upper bound of released counters.
        upto: u64,
    },
    /// Failure confirmed: start repointing routes at the standby.
    StartReroute,
    /// Failure confirmed: unfreeze the replica.
    WakeReplica,
    /// Re-deliver a logged, not-yet-released message to the replica;
    /// its output becomes externally visible now.
    ReplayPacket {
        /// The original log counter (bursts are strictly increasing).
        counter: u64,
        /// The ingress id.
        id: u64,
    },
    /// Re-execute a logged message whose output was already released
    /// pre-failure; external synchrony suppresses the duplicate output.
    ReplaySuppressed {
        /// The original log counter.
        counter: u64,
        /// The ingress id.
        id: u64,
    },
    /// Replay done: new ingress flows to the standby again.
    ResumeForwarding,
}

/// Where the protocol currently is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsmState {
    /// Unit healthy; ingress is logged and forwarded.
    Active,
    /// One or more probes missed, failure not yet confirmed.
    Detecting {
        /// Consecutive misses so far (< the multiplier).
        misses: u32,
    },
    /// Failure confirmed; ingress is logged and buffered. Replay fires
    /// when both flags are set.
    Failed {
        /// The LB finished rerouting.
        rerouted: bool,
        /// The replica is awake.
        replica_awake: bool,
    },
    /// Replay complete; the standby serves, logging continues.
    Recovered,
}

/// The pure failover state machine. See the module docs.
#[derive(Debug, Clone)]
pub struct FailoverFsm {
    state: FsmState,
    /// Consecutive misses that confirm a failure (S-BFD multiplier).
    multiplier: u32,
    next_counter: u64,
    /// Counters below this are reflected in the replica checkpoint.
    synced_upto: u64,
    /// In-flight log: counter → ingress id.
    log: BTreeMap<u64, u64>,
    /// Ids whose outputs are externally visible (committed pre-failure
    /// or covered by an acknowledged checkpoint).
    committed: BTreeSet<u64>,
    /// Ids delivered by replay after the failover.
    replayed: BTreeSet<u64>,
}

impl FailoverFsm {
    /// A machine in [`FsmState::Active`] confirming failure after
    /// `multiplier` consecutive probe misses (≥ 1).
    pub fn new(multiplier: u32) -> FailoverFsm {
        FailoverFsm {
            state: FsmState::Active,
            multiplier: multiplier.max(1),
            next_counter: 0,
            synced_upto: 0,
            log: BTreeMap::new(),
            committed: BTreeSet::new(),
            replayed: BTreeSet::new(),
        }
    }

    /// The current protocol state.
    pub fn state(&self) -> FsmState {
        self.state
    }

    /// The next counter a logged message would be stamped with.
    pub fn next_counter(&self) -> u64 {
        self.next_counter
    }

    /// Counters currently held in the in-flight log.
    pub fn in_flight(&self) -> usize {
        self.log.len()
    }

    /// Ids whose outputs are externally visible.
    pub fn committed(&self) -> &BTreeSet<u64> {
        &self.committed
    }

    /// Ids delivered by post-failover replay.
    pub fn replayed(&self) -> &BTreeSet<u64> {
        &self.replayed
    }

    /// Applies one event and returns the actions the adapters must run,
    /// in order. The machine is total: an event that is meaningless in
    /// the current state (a heartbeat after recovery, a commit for an
    /// unknown id) is ignored and returns no actions.
    pub fn step(&mut self, ev: FaultEvent) -> Vec<FsmAction> {
        match ev {
            FaultEvent::Ingress(id) => self.on_ingress(id),
            FaultEvent::Commit(id) => self.on_commit(id),
            FaultEvent::CheckpointAck(upto) => self.on_checkpoint(upto),
            FaultEvent::HeartbeatOk => {
                if matches!(self.state, FsmState::Detecting { .. }) {
                    self.state = FsmState::Active;
                }
                Vec::new()
            }
            FaultEvent::HeartbeatMiss => self.on_miss(),
            FaultEvent::RerouteDone => self.on_failover_part(true, false),
            FaultEvent::ReplicaAwake => self.on_failover_part(false, true),
        }
    }

    fn on_ingress(&mut self, id: u64) -> Vec<FsmAction> {
        let counter = self.next_counter;
        self.next_counter += 1;
        self.log.insert(counter, id);
        let mut acts = vec![FsmAction::LogPacket { counter, id }];
        // External synchrony: nothing is forwarded between failure
        // confirmation and replay completion — buffered in the log.
        if !matches!(self.state, FsmState::Failed { .. }) {
            acts.push(FsmAction::Forward { id });
        }
        acts
    }

    fn on_commit(&mut self, id: u64) -> Vec<FsmAction> {
        // A dead unit releases nothing; ignore stale commits.
        if matches!(self.state, FsmState::Failed { .. }) {
            return Vec::new();
        }
        if self.log.values().any(|&v| v == id) {
            self.committed.insert(id);
        }
        Vec::new()
    }

    fn on_checkpoint(&mut self, upto: u64) -> Vec<FsmAction> {
        // Watermarks never regress, and a dead primary cannot sync.
        if upto <= self.synced_upto
            || upto > self.next_counter
            || matches!(self.state, FsmState::Failed { .. })
        {
            return Vec::new();
        }
        self.synced_upto = upto;
        // Entries below the watermark are reflected in the replica;
        // their outputs passed the commit gate before the state synced.
        let keep = self.log.split_off(&upto);
        for id in std::mem::replace(&mut self.log, keep).into_values() {
            self.committed.insert(id);
        }
        vec![FsmAction::ReleaseLog { upto }]
    }

    fn on_miss(&mut self) -> Vec<FsmAction> {
        let misses = match self.state {
            FsmState::Active => 1,
            FsmState::Detecting { misses } => misses + 1,
            // Already failed (or recovered onto the standby): no-op.
            FsmState::Failed { .. } | FsmState::Recovered => return Vec::new(),
        };
        if misses >= self.multiplier {
            self.state = FsmState::Failed {
                rerouted: false,
                replica_awake: false,
            };
            vec![FsmAction::StartReroute, FsmAction::WakeReplica]
        } else {
            self.state = FsmState::Detecting { misses };
            Vec::new()
        }
    }

    fn on_failover_part(&mut self, reroute: bool, awake: bool) -> Vec<FsmAction> {
        let FsmState::Failed {
            rerouted,
            replica_awake,
        } = self.state
        else {
            return Vec::new();
        };
        let rerouted = rerouted || reroute;
        let replica_awake = replica_awake || awake;
        if !(rerouted && replica_awake) {
            self.state = FsmState::Failed {
                rerouted,
                replica_awake,
            };
            return Vec::new();
        }
        // Both halves done: replay the whole remaining log in counter
        // order, then resume forwarding.
        let mut acts = Vec::with_capacity(self.log.len() + 1);
        for (counter, id) in std::mem::take(&mut self.log) {
            if self.committed.contains(&id) {
                acts.push(FsmAction::ReplaySuppressed { counter, id });
            } else {
                self.replayed.insert(id);
                acts.push(FsmAction::ReplayPacket { counter, id });
            }
        }
        acts.push(FsmAction::ResumeForwarding);
        self.state = FsmState::Recovered;
        acts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn confirm_failure(fsm: &mut FailoverFsm) {
        for _ in 0..3 {
            fsm.step(FaultEvent::HeartbeatMiss);
        }
        assert!(matches!(fsm.state(), FsmState::Failed { .. }));
    }

    #[test]
    fn healthy_path_logs_and_forwards() {
        let mut fsm = FailoverFsm::new(3);
        let acts = fsm.step(FaultEvent::Ingress(42));
        assert_eq!(
            acts,
            vec![
                FsmAction::LogPacket { counter: 0, id: 42 },
                FsmAction::Forward { id: 42 },
            ]
        );
        assert_eq!(fsm.in_flight(), 1);
    }

    #[test]
    fn checkpoint_releases_prefix_and_marks_committed() {
        let mut fsm = FailoverFsm::new(3);
        for id in 0..5 {
            fsm.step(FaultEvent::Ingress(id));
        }
        let acts = fsm.step(FaultEvent::CheckpointAck(3));
        assert_eq!(acts, vec![FsmAction::ReleaseLog { upto: 3 }]);
        assert_eq!(fsm.in_flight(), 2);
        assert!(fsm.committed().contains(&0) && fsm.committed().contains(&2));
    }

    #[test]
    fn detection_needs_the_full_multiplier_and_resets_on_ok() {
        let mut fsm = FailoverFsm::new(3);
        fsm.step(FaultEvent::HeartbeatMiss);
        fsm.step(FaultEvent::HeartbeatMiss);
        assert_eq!(fsm.state(), FsmState::Detecting { misses: 2 });
        fsm.step(FaultEvent::HeartbeatOk);
        assert_eq!(fsm.state(), FsmState::Active);
        fsm.step(FaultEvent::HeartbeatMiss);
        fsm.step(FaultEvent::HeartbeatMiss);
        let acts = fsm.step(FaultEvent::HeartbeatMiss);
        assert_eq!(acts, vec![FsmAction::StartReroute, FsmAction::WakeReplica]);
    }

    #[test]
    fn ingress_while_failed_is_buffered_not_forwarded() {
        let mut fsm = FailoverFsm::new(1);
        confirm_failure(&mut fsm);
        let acts = fsm.step(FaultEvent::Ingress(7));
        assert_eq!(acts, vec![FsmAction::LogPacket { counter: 0, id: 7 }]);
    }

    #[test]
    fn replay_waits_for_both_reroute_and_replica() {
        let mut fsm = FailoverFsm::new(1);
        fsm.step(FaultEvent::Ingress(1));
        fsm.step(FaultEvent::Ingress(2));
        confirm_failure(&mut fsm);
        assert!(fsm.step(FaultEvent::RerouteDone).is_empty());
        let acts = fsm.step(FaultEvent::ReplicaAwake);
        assert_eq!(
            acts,
            vec![
                FsmAction::ReplayPacket { counter: 0, id: 1 },
                FsmAction::ReplayPacket { counter: 1, id: 2 },
                FsmAction::ResumeForwarding,
            ]
        );
        assert_eq!(fsm.state(), FsmState::Recovered);
        assert_eq!(fsm.in_flight(), 0);
    }

    #[test]
    fn committed_entries_replay_suppressed() {
        let mut fsm = FailoverFsm::new(1);
        fsm.step(FaultEvent::Ingress(1));
        fsm.step(FaultEvent::Ingress(2));
        fsm.step(FaultEvent::Commit(1));
        confirm_failure(&mut fsm);
        fsm.step(FaultEvent::ReplicaAwake);
        let acts = fsm.step(FaultEvent::RerouteDone);
        assert_eq!(
            acts,
            vec![
                FsmAction::ReplaySuppressed { counter: 0, id: 1 },
                FsmAction::ReplayPacket { counter: 1, id: 2 },
                FsmAction::ResumeForwarding,
            ]
        );
        assert!(fsm.committed().contains(&1));
        assert!(fsm.replayed().contains(&2) && !fsm.replayed().contains(&1));
    }

    #[test]
    fn recovered_machine_forwards_again() {
        let mut fsm = FailoverFsm::new(1);
        confirm_failure(&mut fsm);
        fsm.step(FaultEvent::RerouteDone);
        fsm.step(FaultEvent::ReplicaAwake);
        let acts = fsm.step(FaultEvent::Ingress(9));
        assert!(acts.contains(&FsmAction::Forward { id: 9 }));
    }

    #[test]
    fn stale_events_are_ignored() {
        let mut fsm = FailoverFsm::new(1);
        fsm.step(FaultEvent::Ingress(1));
        confirm_failure(&mut fsm);
        assert!(fsm.step(FaultEvent::Commit(1)).is_empty(), "dead unit");
        assert!(fsm.step(FaultEvent::CheckpointAck(1)).is_empty());
        assert!(fsm.step(FaultEvent::HeartbeatMiss).is_empty());
        fsm.step(FaultEvent::RerouteDone);
        fsm.step(FaultEvent::ReplicaAwake);
        assert!(fsm.step(FaultEvent::RerouteDone).is_empty(), "idempotent");
    }
}
