//! The UE-aware load balancer (§4, Fig 5): session affinity to 5GC
//! units, failover routing, and the recovery timeline.

use std::collections::HashMap;

use l25gc_core::msg::UeId;
use l25gc_nfv::cost::CostModel;
use l25gc_sim::{SimDuration, SimTime};

/// Identifies one 5GC unit (a consolidated core instance).
pub type UnitId = u32;

/// The LB's routing state.
#[derive(Debug, Default)]
pub struct UeAwareLb {
    /// UE → serving unit affinity.
    affinity: HashMap<UeId, UnitId>,
    /// Load (assigned sessions) per unit.
    load: HashMap<UnitId, u64>,
    /// Units currently marked failed.
    failed: Vec<UnitId>,
}

impl UeAwareLb {
    /// An LB over the given units.
    pub fn new(units: &[UnitId]) -> UeAwareLb {
        let mut lb = UeAwareLb::default();
        for &u in units {
            lb.load.insert(u, 0);
        }
        lb
    }

    /// Routes a UE: existing affinity wins; new UEs go to the least
    /// loaded live unit.
    pub fn route(&mut self, ue: UeId) -> Option<UnitId> {
        if let Some(&u) = self.affinity.get(&ue) {
            if !self.failed.contains(&u) {
                return Some(u);
            }
        }
        let unit = self
            .load
            .iter()
            .filter(|(u, _)| !self.failed.contains(u))
            .min_by_key(|&(u, &l)| (l, *u))
            .map(|(&u, _)| u)?;
        *self.load.get_mut(&unit).expect("unit exists") += 1;
        self.affinity.insert(ue, unit);
        Some(unit)
    }

    /// Marks a unit failed; its UEs re-route on next use.
    pub fn mark_failed(&mut self, unit: UnitId) {
        if !self.failed.contains(&unit) {
            self.failed.push(unit);
        }
    }

    /// Re-points every UE on `from` to `to` (failover to the replica's
    /// unit, preserving affinity thereafter).
    pub fn migrate(&mut self, from: UnitId, to: UnitId) -> usize {
        let mut moved = 0;
        for u in self.affinity.values_mut() {
            if *u == from {
                *u = to;
                moved += 1;
            }
        }
        let l = self.load.remove(&from).unwrap_or(0);
        *self.load.entry(to).or_insert(0) += l;
        moved
    }

    /// The unit currently serving a UE.
    pub fn unit_of(&self, ue: UeId) -> Option<UnitId> {
        self.affinity.get(&ue).copied()
    }

    /// Sessions assigned to a unit.
    pub fn load_of(&self, unit: UnitId) -> u64 {
        self.load.get(&unit).copied().unwrap_or(0)
    }
}

/// The failover timeline: how long from node failure until the replica
/// serves traffic (§5.5.1: detection < 0.5 ms, re-routing 2 ms, replay
/// 3 ms, with some overlap between the latter two).
#[derive(Debug, Clone, Copy)]
pub struct FailoverTimeline {
    /// Failure detection by the probe agent.
    pub detect: SimDuration,
    /// Re-route traffic to the replica unit.
    pub reroute: SimDuration,
    /// Replay logged packets to reconstruct post-checkpoint state.
    pub replay: SimDuration,
    /// Fraction of replay overlapped with rerouting (0..=1).
    pub overlap: f64,
}

impl FailoverTimeline {
    /// The paper's measured components.
    pub fn paper(cost: &CostModel) -> FailoverTimeline {
        FailoverTimeline {
            detect: cost.failure_detect,
            reroute: cost.reroute,
            replay: cost.replay,
            overlap: 0.5,
        }
    }

    /// Total added latency from failure instant to a serving replica.
    pub fn total(&self) -> SimDuration {
        let serial = self.replay * (1.0 - self.overlap);
        self.detect + self.reroute + serial
    }

    /// When the replica starts serving, given the failure instant.
    pub fn recovered_at(&self, failed_at: SimTime) -> SimTime {
        failed_at + self.total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn affinity_is_sticky() {
        let mut lb = UeAwareLb::new(&[1, 2]);
        let u = lb.route(42).unwrap();
        for _ in 0..10 {
            assert_eq!(lb.route(42), Some(u));
        }
        assert_eq!(lb.load_of(u), 1, "affinity hits don't inflate load");
    }

    #[test]
    fn new_sessions_balance_by_load() {
        let mut lb = UeAwareLb::new(&[1, 2]);
        let units: Vec<UnitId> = (0..10).map(|ue| lb.route(ue).unwrap()).collect();
        let to_1 = units.iter().filter(|&&u| u == 1).count();
        assert_eq!(to_1, 5, "even split");
    }

    #[test]
    fn failover_migrates_affinity() {
        let mut lb = UeAwareLb::new(&[1, 2]);
        for ue in 0..4 {
            lb.route(ue);
        }
        let on_1: Vec<UeId> = (0..4).filter(|ue| lb.unit_of(*ue) == Some(1)).collect();
        lb.mark_failed(1);
        let moved = lb.migrate(1, 2);
        assert_eq!(moved, on_1.len());
        for ue in 0..4 {
            assert_eq!(lb.unit_of(ue), Some(2));
        }
        // New sessions avoid the failed unit.
        assert_eq!(lb.route(99), Some(2));
    }

    #[test]
    fn all_units_failed_routes_none() {
        let mut lb = UeAwareLb::new(&[1]);
        lb.mark_failed(1);
        assert_eq!(lb.route(5), None);
    }

    #[test]
    fn paper_failover_adds_single_digit_milliseconds() {
        let t = FailoverTimeline::paper(&CostModel::paper());
        let total = t.total();
        // §5.5.1: the handover goes from 130 ms to 134 ms — roughly 4 ms
        // of failover overhead.
        assert!(
            total >= SimDuration::from_millis(3) && total <= SimDuration::from_millis(6),
            "failover overhead {total}"
        );
    }
}
