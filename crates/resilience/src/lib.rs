//! # l25gc-resilience — the §3.5 failure-resiliency framework
//!
//! L²5GC avoids 3GPP's reattach-from-scratch recovery with a protocol
//! that is **specified once, purely**, and adapted to clocks and
//! payloads around the edges:
//!
//! - [`fsm`] — the failover protocol as a pure state machine over an
//!   in-flight message multiset: typed [`FaultEvent`] transitions to
//!   typed [`FsmAction`]s, no clocks, every detect/reroute/replay
//!   interleaving property-tested (nothing lost, nothing duplicated,
//!   external synchrony preserved).
//! - [`coordinator`] — the adapter facade: [`FailoverCoordinator`] owns
//!   the clocked components below and consults the FSM for every
//!   ordering decision.
//!
//! The clocked components (usable directly, but most callers want the
//! facade):
//!
//! - [`logger`] — the LB-side packet logger: every inbound message gets
//!   a counter and a copy in one of four queues (UL/DL × control/data);
//!   replay restores the state tail lost since the last checkpoint, and
//!   data floods cannot evict control entries.
//! - [`replica`] — frozen local/remote replicas generic over the
//!   replicated state (`Clone` = checkpoint), the periodic delta
//!   checkpoint policy, and the sub-5 µs output-commit gate (external
//!   synchrony).
//! - [`detector`] — S-BFD-style liveness sessions detecting node/link
//!   failure in < 0.5 ms.
//! - [`lb`] — the UE-aware load balancer: session affinity, failover
//!   migration, and the detect→reroute→replay timeline.
//! - [`reattach`] — the 3GPP restoration baseline L²5GC is compared
//!   against in §5.5.
//!
//! Every entry point lives on a type; the pre-facade free functions
//! served their one deprecated release and are gone ([`classify`] became
//! [`QueueKind::classify`]).
//!
//! [`classify`]: QueueKind::classify

pub mod coordinator;
pub mod detector;
pub mod fsm;
pub mod lb;
pub mod logger;
pub mod reattach;
pub mod replica;

pub use coordinator::{FailoverCoordinator, FailoverReport};
pub use detector::SbfdSession;
pub use fsm::{FailoverFsm, FaultEvent, FsmAction, FsmState};
pub use lb::{FailoverTimeline, UeAwareLb, UnitId};
pub use logger::{LoggedEntry, PacketLogger, QueueKind};
pub use reattach::ReattachModel;
pub use replica::{CheckpointPolicy, OutputCommit, Replica, ReplicaState};
