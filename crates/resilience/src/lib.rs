//! # l25gc-resilience — the §3.5 failure-resiliency framework
//!
//! L²5GC avoids 3GPP's reattach-from-scratch recovery with four pieces,
//! each implemented here as a driver-agnostic component:
//!
//! - [`logger`] — the LB-side packet logger: every inbound message gets
//!   a counter and a copy in one of four queues (UL/DL × control/data);
//!   replay restores the state tail lost since the last checkpoint, and
//!   data floods cannot evict control entries.
//! - [`replica`] — frozen local/remote replicas generic over the
//!   replicated state (`Clone` = checkpoint), the periodic delta
//!   checkpoint policy, and the sub-5 µs output-commit gate (external
//!   synchrony).
//! - [`detector`] — S-BFD-style liveness sessions detecting node/link
//!   failure in < 0.5 ms.
//! - [`lb`] — the UE-aware load balancer: session affinity, failover
//!   migration, and the detect→reroute→replay timeline.
//! - [`reattach`] — the 3GPP restoration baseline L²5GC is compared
//!   against in §5.5.

pub mod detector;
pub mod lb;
pub mod logger;
pub mod reattach;
pub mod replica;

pub use detector::SbfdSession;
pub use lb::{FailoverTimeline, UeAwareLb, UnitId};
pub use logger::{classify, LoggedEntry, PacketLogger, QueueKind};
pub use reattach::ReattachModel;
pub use replica::{CheckpointPolicy, OutputCommit, Replica, ReplicaState};
