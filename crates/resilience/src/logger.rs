//! The packet logger at the load-balancer node (§3.5.1, Fig 5).
//!
//! Every message entering the 5GC unit gets a monotonically increasing
//! counter and a copy in one of **four queues** — UL-control, UL-data,
//! DL-control, DL-data — so that a data flood cannot evict control
//! packets when the buffer overflows. On failover, the replica replays
//! the queues in counter order (the replica "picks from the queue with
//! the lowest counter value, so as to maintain the processing order").
//! Entries are released when the remote replica acknowledges a
//! checkpoint covering their counters.

use std::collections::VecDeque;

use l25gc_core::msg::{Direction, Endpoint, Envelope, Msg};

/// Which of the four logger queues a message belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueueKind {
    /// Uplink control (RAN → core signalling).
    UlControl,
    /// Uplink data (UE → DN packets).
    UlData,
    /// Downlink control (DN-side / inter-site signalling toward the core).
    DlControl,
    /// Downlink data (DN → UE packets).
    DlData,
}

impl QueueKind {
    /// Classifies an envelope entering the 5GC unit.
    pub fn classify(env: &Envelope) -> QueueKind {
        match &env.msg {
            Msg::Data(p) => match p.dir {
                Direction::Uplink => QueueKind::UlData,
                Direction::Downlink => QueueKind::DlData,
            },
            // Control: direction by which side it enters from.
            _ => match env.from {
                Endpoint::Gnb(_) | Endpoint::Ue(_) => QueueKind::UlControl,
                _ => QueueKind::DlControl,
            },
        }
    }
}

/// One logged message.
#[derive(Debug, Clone)]
pub struct LoggedEntry {
    /// The order stamp.
    pub counter: u64,
    /// The message copy.
    pub env: Envelope,
}

/// The four-queue packet logger.
#[derive(Debug)]
pub struct PacketLogger {
    queues: [VecDeque<LoggedEntry>; 4],
    next_counter: u64,
    /// Capacity per *data* queue; control queues are effectively
    /// unbounded ("control packets are not dropped if the replay buffer
    /// overflows", §5.5).
    pub data_capacity: usize,
    /// Data entries dropped due to overflow.
    pub overflow_drops: u64,
}

fn idx(kind: QueueKind) -> usize {
    match kind {
        QueueKind::UlControl => 0,
        QueueKind::UlData => 1,
        QueueKind::DlControl => 2,
        QueueKind::DlData => 3,
    }
}

impl PacketLogger {
    /// A logger whose data queues hold `data_capacity` entries each.
    pub fn new(data_capacity: usize) -> PacketLogger {
        PacketLogger {
            queues: Default::default(),
            next_counter: 0,
            data_capacity,
            overflow_drops: 0,
        }
    }

    /// Stamps and logs a message on its way into the core. Returns the
    /// assigned counter.
    pub fn log(&mut self, env: &Envelope) -> u64 {
        let counter = self.next_counter;
        self.next_counter += 1;
        let kind = QueueKind::classify(env);
        let q = &mut self.queues[idx(kind)];
        let is_data = matches!(kind, QueueKind::UlData | QueueKind::DlData);
        if is_data && q.len() >= self.data_capacity {
            // Shed the *oldest* data entry; control is never shed.
            q.pop_front();
            self.overflow_drops += 1;
        }
        q.push_back(LoggedEntry {
            counter,
            env: env.clone(),
        });
        counter
    }

    /// Releases all entries with `counter < upto` (covered by an
    /// acknowledged checkpoint).
    pub fn release_upto(&mut self, upto: u64) {
        for q in &mut self.queues {
            while q.front().map(|e| e.counter < upto).unwrap_or(false) {
                q.pop_front();
            }
        }
    }

    /// Drains every logged entry in counter order — the replay stream fed
    /// to the replica on failover.
    pub fn replay(&mut self) -> Vec<LoggedEntry> {
        let mut out = Vec::new();
        loop {
            // Pick the queue whose head has the lowest counter.
            let next = self
                .queues
                .iter()
                .enumerate()
                .filter_map(|(i, q)| q.front().map(|e| (e.counter, i)))
                .min();
            match next {
                Some((_, i)) => out.push(self.queues[i].pop_front().expect("head present")),
                None => return out,
            }
        }
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    /// True when nothing is logged.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The next counter value to be assigned.
    pub fn next_counter(&self) -> u64 {
        self.next_counter
    }

    /// Held entries in one queue.
    pub fn queue_len(&self, kind: QueueKind) -> usize {
        self.queues[idx(kind)].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use l25gc_core::msg::{DataPacket, SbiOp, UeId};
    use l25gc_sim::SimTime;

    fn data_env(dir: Direction, seq: u64) -> Envelope {
        let (from, to) = match dir {
            Direction::Uplink => (Endpoint::Gnb(1), Endpoint::UpfU),
            Direction::Downlink => (Endpoint::Dn, Endpoint::UpfU),
        };
        Envelope::new(
            from,
            to,
            Msg::Data(DataPacket {
                ue: 1,
                flow: 0,
                dir,
                seq,
                size: 100,
                sent_at: SimTime::ZERO,
                dst_port: 80,
                protocol: 6,
                tunnel_teid: None,
                ack_seq: None,
            }),
        )
    }

    fn ctrl_env() -> Envelope {
        Envelope::new(
            Endpoint::Gnb(1),
            Endpoint::Amf,
            Msg::Sbi {
                op: SbiOp::SmContextRetrieveReq,
                ue: 1 as UeId,
            },
        )
    }

    #[test]
    fn classification() {
        assert_eq!(
            QueueKind::classify(&data_env(Direction::Uplink, 0)),
            QueueKind::UlData
        );
        assert_eq!(
            QueueKind::classify(&data_env(Direction::Downlink, 0)),
            QueueKind::DlData
        );
        assert_eq!(QueueKind::classify(&ctrl_env()), QueueKind::UlControl);
    }

    #[test]
    fn counters_are_monotonic_and_replay_is_ordered() {
        let mut log = PacketLogger::new(100);
        log.log(&data_env(Direction::Downlink, 0));
        log.log(&ctrl_env());
        log.log(&data_env(Direction::Uplink, 1));
        log.log(&data_env(Direction::Downlink, 2));
        let replay = log.replay();
        let counters: Vec<u64> = replay.iter().map(|e| e.counter).collect();
        assert_eq!(counters, vec![0, 1, 2, 3], "global order across queues");
        assert!(log.is_empty());
    }

    #[test]
    fn release_frees_acknowledged_prefix() {
        let mut log = PacketLogger::new(100);
        for i in 0..10 {
            log.log(&data_env(Direction::Downlink, i));
        }
        log.release_upto(6);
        assert_eq!(log.len(), 4);
        let replay = log.replay();
        assert_eq!(replay[0].counter, 6);
    }

    #[test]
    fn data_overflow_sheds_data_not_control() {
        let mut log = PacketLogger::new(3);
        log.log(&ctrl_env());
        for i in 0..5 {
            log.log(&data_env(Direction::Downlink, i));
        }
        log.log(&ctrl_env());
        assert_eq!(log.overflow_drops, 2);
        assert_eq!(log.queue_len(QueueKind::DlData), 3);
        assert_eq!(log.queue_len(QueueKind::UlControl), 2, "control survives");
        // Replay still emits in counter order.
        let counters: Vec<u64> = log.replay().iter().map(|e| e.counter).collect();
        let mut sorted = counters.clone();
        sorted.sort_unstable();
        assert_eq!(counters, sorted);
    }

    #[test]
    fn separate_queues_keep_episode_counts() {
        let mut log = PacketLogger::new(100);
        for i in 0..3 {
            log.log(&data_env(Direction::Uplink, i));
        }
        for i in 0..2 {
            log.log(&data_env(Direction::Downlink, i));
        }
        assert_eq!(log.queue_len(QueueKind::UlData), 3);
        assert_eq!(log.queue_len(QueueKind::DlData), 2);
        assert_eq!(log.queue_len(QueueKind::DlControl), 0);
    }
}
