//! The 3GPP restoration baseline: on 5GC failure the UE must re-initiate
//! attachment from scratch (§2.3 Challenge 4, §5.5).
//!
//! Recovery time composes: failure detection + UE notification + a full
//! registration + PDU session re-establishment + (if a procedure was in
//! flight) redoing that procedure. During the whole window every
//! in-flight and newly arriving packet is dropped — there is no logger.

use l25gc_sim::{SimDuration, SimTime};

/// Durations of the re-attach phases, measured from the respective
/// event-completion harnesses so the baseline is self-consistent with
/// Fig 8 rather than hand-entered.
#[derive(Debug, Clone, Copy)]
pub struct ReattachModel {
    /// Failure detection (the paper grants 3GPP the same 0.5 ms).
    pub detect: SimDuration,
    /// Notifying the UE / RAN that the core is gone (NAS timeout or
    /// explicit release), before re-attach starts.
    pub notify: SimDuration,
    /// Full registration on the backup core.
    pub registration: SimDuration,
    /// PDU session re-establishment.
    pub session_establishment: SimDuration,
}

impl ReattachModel {
    /// Total outage for a UE with an active session and no in-flight
    /// procedure.
    pub fn outage(&self) -> SimDuration {
        self.detect + self.notify + self.registration + self.session_establishment
    }

    /// Completion time of a procedure that was `progress` (0..=1) done
    /// when the core failed: everything restarts after the outage, and
    /// the procedure reruns from scratch (`proc_duration`).
    pub fn interrupted_procedure(
        &self,
        started_at: SimTime,
        progress: f64,
        proc_duration: SimDuration,
    ) -> SimTime {
        let before_failure = proc_duration * progress.clamp(0.0, 1.0);
        started_at + before_failure + self.outage() + proc_duration
    }

    /// Packets lost during the outage at a constant arrival rate.
    pub fn packets_lost(&self, pps: f64) -> u64 {
        (self.outage().as_secs_f64() * pps).round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ReattachModel {
        ReattachModel {
            detect: SimDuration::from_micros(500),
            notify: SimDuration::from_millis(2),
            registration: SimDuration::from_millis(90),
            session_establishment: SimDuration::from_millis(40),
        }
    }

    #[test]
    fn outage_composes_phases() {
        let m = model();
        let o = m.outage();
        assert_eq!(o, SimDuration::from_micros(500 + 2_000 + 90_000 + 40_000));
    }

    #[test]
    fn interrupted_procedure_restarts_from_scratch() {
        let m = model();
        let ho = SimDuration::from_millis(130);
        let t0 = SimTime::ZERO;
        let done = m.interrupted_procedure(t0, 0.5, ho);
        // 65 ms spent + outage + full 130 ms rerun.
        let expect = t0 + ho * 0.5 + m.outage() + ho;
        assert_eq!(done, expect);
        // Progress outside [0,1] clamps.
        let done = m.interrupted_procedure(t0, 2.0, ho);
        assert_eq!(done, t0 + ho + m.outage() + ho);
    }

    #[test]
    fn packet_loss_scales_with_rate() {
        let m = model();
        let lost = m.packets_lost(1000.0);
        // outage = 132.5 ms at 1 kpps ≈ 132 packets (the Fig 15
        // experiment observes ~121 at its TCP-paced rate).
        assert!((130..=135).contains(&lost), "lost {lost}");
        assert_eq!(m.packets_lost(0.0), 0);
    }
}
