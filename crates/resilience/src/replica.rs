//! Replication: frozen local/remote replicas with periodic delta
//! checkpoints and external synchrony (§3.5.1).
//!
//! The replica is generic over the replicated state `S: Clone` — in the
//! testbed `S` is the whole `CoreNetwork`. A checkpoint is a clone taken
//! at a counter watermark; on failover the replica state is the last
//! checkpoint, and the packet logger replays everything logged at or
//! after that watermark to reconstruct the lost tail. The local replica
//! synchronizes per event (sub-5 µs shared-memory copy, the "no-replay"
//! scheme); the remote replica synchronizes periodically to amortize the
//! transfer.

use l25gc_sim::{SimDuration, SimTime};

/// Replica lifecycle, mirroring the cgroup-freezer states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicaState {
    /// Checkpointed and frozen: consumes no CPU.
    Frozen,
    /// Woken by the manager after a failover; now the active copy.
    Active,
}

/// A replica of state `S` synchronized by checkpoints.
#[derive(Debug)]
pub struct Replica<S: Clone> {
    /// Last checkpointed state.
    snapshot: S,
    /// Counter watermark: all inputs with counter `< synced_upto` are
    /// reflected in `snapshot`.
    synced_upto: u64,
    /// Lifecycle.
    pub state: ReplicaState,
    /// When the last checkpoint was taken.
    pub last_checkpoint_at: SimTime,
    /// Checkpoints taken.
    pub checkpoints: u64,
}

impl<S: Clone> Replica<S> {
    /// A frozen replica initialized from the primary's state.
    pub fn new(initial: S, now: SimTime) -> Replica<S> {
        Replica {
            snapshot: initial,
            synced_upto: 0,
            state: ReplicaState::Frozen,
            last_checkpoint_at: now,
            checkpoints: 0,
        }
    }

    /// Takes a checkpoint: clone the primary state and advance the
    /// watermark to `counter` (typically `logger.next_counter()`).
    ///
    /// # Panics
    /// Panics if the replica is already active (checkpointing a woken
    /// replica would overwrite live state).
    pub fn checkpoint(&mut self, primary: &S, counter: u64, now: SimTime) {
        assert_eq!(
            self.state,
            ReplicaState::Frozen,
            "cannot checkpoint an active replica"
        );
        assert!(counter >= self.synced_upto, "watermark must not regress");
        self.snapshot = primary.clone();
        self.synced_upto = counter;
        self.last_checkpoint_at = now;
        self.checkpoints += 1;
    }

    /// The watermark: inputs below this counter are already reflected.
    pub fn synced_upto(&self) -> u64 {
        self.synced_upto
    }

    /// Wakes the replica, taking its state for live use. Inputs with
    /// counters `>= synced_upto()` must be replayed into the returned
    /// state by the caller.
    pub fn unfreeze(&mut self, now: SimTime) -> S
    where
        S: Clone,
    {
        assert_eq!(self.state, ReplicaState::Frozen, "replica already active");
        self.state = ReplicaState::Active;
        self.last_checkpoint_at = now;
        self.snapshot.clone()
    }
}

/// The periodic checkpoint schedule for the remote replica.
#[derive(Debug, Clone, Copy)]
pub struct CheckpointPolicy {
    /// Interval between delta syncs.
    pub interval: SimDuration,
    /// Cost to transfer one delta (paid by the *local replica*, so the
    /// primary's processing is never impeded — external synchrony).
    pub transfer_cost: SimDuration,
}

impl CheckpointPolicy {
    /// The paper's configuration: periodic sync (not per-event, unlike
    /// Neutrino — §3.5.1 point 2) every 10 ms.
    pub fn paper() -> CheckpointPolicy {
        CheckpointPolicy {
            interval: SimDuration::from_millis(10),
            transfer_cost: SimDuration::from_micros(200),
        }
    }

    /// Next checkpoint instant after `last`.
    pub fn next_after(&self, last: SimTime) -> SimTime {
        last + self.interval
    }
}

/// Output-commit gate for the local no-replay scheme: an NF "does not
/// release any response unless the local replica is synchronized". With
/// same-host shared memory the sync costs < 5 µs per event.
#[derive(Debug, Clone, Copy)]
pub struct OutputCommit {
    /// Per-event local synchronization delay.
    pub local_sync: SimDuration,
}

impl OutputCommit {
    /// The paper's bound (§3.5.1: "less than 5µs").
    pub fn paper() -> OutputCommit {
        OutputCommit {
            local_sync: SimDuration::from_micros(5),
        }
    }

    /// The extra delay an outgoing response pays before release.
    pub fn gate_delay(&self) -> SimDuration {
        self.local_sync
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    struct Toy {
        counter_applied: u64,
        items: Vec<u64>,
    }

    #[test]
    fn checkpoint_then_unfreeze_restores_watermarked_state() {
        let mut primary = Toy {
            counter_applied: 0,
            items: vec![],
        };
        let mut rep = Replica::new(primary.clone(), SimTime::ZERO);

        // Apply inputs 0..5 to the primary, checkpoint at watermark 5.
        for c in 0..5 {
            primary.counter_applied = c + 1;
            primary.items.push(c);
        }
        rep.checkpoint(&primary, 5, SimTime::ZERO + SimDuration::from_millis(10));
        assert_eq!(rep.synced_upto(), 5);
        assert_eq!(rep.checkpoints, 1);

        // More inputs (5..8) arrive after the checkpoint; then the
        // primary dies. The replica wakes with the watermarked state.
        for c in 5..8 {
            primary.counter_applied = c + 1;
            primary.items.push(c);
        }
        let woken = rep.unfreeze(SimTime::ZERO + SimDuration::from_millis(20));
        assert_eq!(woken.counter_applied, 5, "tail not yet applied");
        assert_eq!(rep.state, ReplicaState::Active);
        // Replaying 5..8 reconstructs the primary's final state.
        let mut woken = woken;
        for c in rep.synced_upto()..8 {
            woken.counter_applied = c + 1;
            woken.items.push(c);
        }
        assert_eq!(woken, primary);
    }

    #[test]
    #[should_panic(expected = "cannot checkpoint an active replica")]
    fn checkpoint_after_unfreeze_panics() {
        let mut rep = Replica::new(
            Toy {
                counter_applied: 0,
                items: vec![],
            },
            SimTime::ZERO,
        );
        rep.unfreeze(SimTime::ZERO);
        rep.checkpoint(
            &Toy {
                counter_applied: 9,
                items: vec![],
            },
            1,
            SimTime::ZERO,
        );
    }

    #[test]
    #[should_panic(expected = "replica already active")]
    fn double_unfreeze_panics() {
        let mut rep = Replica::new(
            Toy {
                counter_applied: 0,
                items: vec![],
            },
            SimTime::ZERO,
        );
        rep.unfreeze(SimTime::ZERO);
        rep.unfreeze(SimTime::ZERO);
    }

    #[test]
    fn policy_schedules_periodically() {
        let p = CheckpointPolicy::paper();
        let t0 = SimTime::ZERO;
        let t1 = p.next_after(t0);
        assert_eq!(t1.duration_since(t0), p.interval);
    }

    #[test]
    fn output_commit_is_sub_5us() {
        assert!(OutputCommit::paper().gate_delay() <= SimDuration::from_micros(5));
    }
}
