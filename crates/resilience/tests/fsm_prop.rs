//! Interleaving exploration of the pure failover FSM (ISSUE 8
//! tentpole): across arbitrary schedules of ingress / commit /
//! checkpoint / heartbeat / reroute / replica-wake events, no in-flight
//! message is lost, none is delivered twice, replay is counter-ordered,
//! and external synchrony holds (nothing is forwarded between failure
//! confirmation and replay completion).

use std::collections::{BTreeMap, BTreeSet};

use l25gc_resilience::{FailoverFsm, FaultEvent, FsmAction, FsmState};
use proptest::prelude::*;

/// Mirror of the machine's externally visible bookkeeping, rebuilt
/// purely from the emitted actions — so the test also proves the
/// actions faithfully describe the state evolution.
#[derive(Default)]
struct Shadow {
    /// counter → id, rebuilt from LogPacket / ReleaseLog / Replay*.
    log: BTreeMap<u64, u64>,
    last_logged: Option<u64>,
    /// True between StartReroute and ResumeForwarding.
    outage: bool,
    replayed: BTreeSet<u64>,
    suppressed: BTreeSet<u64>,
}

impl Shadow {
    fn apply(&mut self, acts: &[FsmAction]) -> Result<(), TestCaseError> {
        let mut last_replay: Option<u64> = None;
        for a in acts {
            match *a {
                FsmAction::LogPacket { counter, id } => {
                    prop_assert!(
                        self.last_logged.is_none_or(|l| counter > l),
                        "log counters must be strictly increasing"
                    );
                    self.last_logged = Some(counter);
                    self.log.insert(counter, id);
                }
                FsmAction::Forward { .. } => {
                    prop_assert!(!self.outage, "external synchrony: no forward mid-failover");
                }
                FsmAction::ReleaseLog { upto } => {
                    self.log.retain(|&c, _| c >= upto);
                }
                FsmAction::StartReroute => self.outage = true,
                FsmAction::WakeReplica => {}
                FsmAction::ReplayPacket { counter, id } => {
                    prop_assert!(
                        last_replay.is_none_or(|l| counter > l),
                        "replay must drain in counter order"
                    );
                    last_replay = Some(counter);
                    self.log.remove(&counter);
                    prop_assert!(self.replayed.insert(id), "id replayed twice");
                }
                FsmAction::ReplaySuppressed { counter, id } => {
                    prop_assert!(
                        last_replay.is_none_or(|l| counter > l),
                        "suppressed replays keep counter order too"
                    );
                    last_replay = Some(counter);
                    self.log.remove(&counter);
                    self.suppressed.insert(id);
                }
                FsmAction::ResumeForwarding => self.outage = false,
            }
        }
        Ok(())
    }
}

proptest! {
    /// The headline invariant: for every interleaving, after the
    /// failover completes, every ingress id is accounted for exactly
    /// once — committed pre-failure, delivered by replay, or still held
    /// in the log (arrived post-recovery) — with the committed and
    /// replayed sets disjoint.
    #[test]
    fn no_event_lost_or_duplicated_across_interleavings(
        ops in proptest::collection::vec((0u8..7, 0u64..1_000_000), 1..250),
        multiplier in 1u32..4,
    ) {
        let mut fsm = FailoverFsm::new(multiplier);
        let mut shadow = Shadow::default();
        let mut next_id = 0u64;
        let mut forwarded: Vec<u64> = Vec::new();
        let step = |fsm: &mut FailoverFsm, shadow: &mut Shadow, ev: FaultEvent|
            -> Result<(), TestCaseError> {
            let acts = fsm.step(ev);
            shadow.apply(&acts)?;
            prop_assert_eq!(
                shadow.log.len(),
                fsm.in_flight(),
                "actions must faithfully describe the in-flight log"
            );
            Ok(())
        };
        for (op, pick) in ops {
            let ev = match op {
                0 | 1 => {
                    let id = next_id;
                    next_id += 1;
                    forwarded.push(id);
                    FaultEvent::Ingress(id)
                }
                2 => {
                    // Commit a random previously seen id (the machine
                    // ignores stale/unknown ones — that is part of what
                    // we are testing).
                    if forwarded.is_empty() {
                        continue;
                    }
                    FaultEvent::Commit(forwarded[(pick as usize) % forwarded.len()])
                }
                3 => FaultEvent::CheckpointAck(pick % (fsm.next_counter() + 1)),
                4 => {
                    if pick % 2 == 0 {
                        FaultEvent::HeartbeatMiss
                    } else {
                        FaultEvent::HeartbeatOk
                    }
                }
                5 => FaultEvent::RerouteDone,
                _ => FaultEvent::ReplicaAwake,
            };
            step(&mut fsm, &mut shadow, ev)?;
        }
        // Force the failover to completion so the accounting can close.
        if !matches!(fsm.state(), FsmState::Recovered) {
            for _ in 0..multiplier {
                step(&mut fsm, &mut shadow, FaultEvent::HeartbeatMiss)?;
            }
            step(&mut fsm, &mut shadow, FaultEvent::RerouteDone)?;
            step(&mut fsm, &mut shadow, FaultEvent::ReplicaAwake)?;
        }
        prop_assert_eq!(fsm.state(), FsmState::Recovered);

        let committed = fsm.committed();
        let replayed = fsm.replayed();
        prop_assert!(
            committed.is_disjoint(replayed),
            "an id must never be delivered both pre-failure and by replay"
        );
        prop_assert_eq!(
            replayed, &shadow.replayed,
            "machine and action-derived replay sets agree"
        );
        // Nothing lost: every ingress id is committed, replayed, or
        // still in the (post-recovery) log awaiting the next cycle.
        let in_log: BTreeSet<u64> = shadow.log.values().copied().collect();
        for id in 0..next_id {
            prop_assert!(
                committed.contains(&id) || replayed.contains(&id) || in_log.contains(&id),
                "ingress id {} vanished", id
            );
        }
        // Suppressed replays are exactly re-executions of committed ids.
        prop_assert!(shadow.suppressed.is_subset(committed));
    }

    /// Focused replay shape: ingress N, commit a prefix, checkpoint at a
    /// watermark, fail — the replay burst is exactly the unreleased
    /// entries, counter-ordered, and only uncommitted ids deliver.
    #[test]
    fn replay_burst_is_exactly_the_unreleased_tail(
        n in 1u64..60,
        committed_prefix in 0u64..60,
        watermark in 0u64..60,
    ) {
        let committed_prefix = committed_prefix.min(n);
        let watermark = watermark.min(committed_prefix);
        let mut fsm = FailoverFsm::new(1);
        for id in 0..n {
            fsm.step(FaultEvent::Ingress(id));
        }
        for id in 0..committed_prefix {
            fsm.step(FaultEvent::Commit(id));
        }
        fsm.step(FaultEvent::CheckpointAck(watermark));
        fsm.step(FaultEvent::HeartbeatMiss);
        fsm.step(FaultEvent::RerouteDone);
        let acts = fsm.step(FaultEvent::ReplicaAwake);
        let mut expect = Vec::new();
        for id in watermark..n {
            // Ids double as counters here: ingress order.
            if id < committed_prefix {
                expect.push(FsmAction::ReplaySuppressed { counter: id, id });
            } else {
                expect.push(FsmAction::ReplayPacket { counter: id, id });
            }
        }
        expect.push(FsmAction::ResumeForwarding);
        prop_assert_eq!(acts, expect);
    }
}
