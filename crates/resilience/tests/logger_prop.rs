//! Property tests for the four-queue packet logger (ISSUE 8 satellite):
//! counter monotonicity across arbitrary traffic mixes, idempotence of
//! `release_upto`, replay exhaustiveness (drain-once semantics), and the
//! control-never-shed guarantee under data floods.

use l25gc_core::msg::{DataPacket, Direction, Endpoint, Envelope, Msg, SbiOp, UeId};
use l25gc_resilience::{PacketLogger, QueueKind};
use l25gc_sim::SimTime;
use proptest::prelude::*;

fn data_env(dir: Direction, seq: u64) -> Envelope {
    let (from, to) = match dir {
        Direction::Uplink => (Endpoint::Gnb(1), Endpoint::UpfU),
        Direction::Downlink => (Endpoint::Dn, Endpoint::UpfU),
    };
    Envelope::new(
        from,
        to,
        Msg::Data(DataPacket {
            ue: 1,
            flow: 0,
            dir,
            seq,
            size: 100,
            sent_at: SimTime::ZERO,
            dst_port: 80,
            protocol: 6,
            tunnel_teid: None,
            ack_seq: None,
        }),
    )
}

fn ctrl_env(ue: UeId) -> Envelope {
    Envelope::new(
        Endpoint::Gnb(1),
        Endpoint::Amf,
        Msg::Sbi {
            op: SbiOp::SmContextRetrieveReq,
            ue,
        },
    )
}

/// Decodes a drawn byte into one of the four traffic classes.
fn env_for(code: u8, seq: u64) -> Envelope {
    match code % 4 {
        0 => data_env(Direction::Uplink, seq),
        1 => data_env(Direction::Downlink, seq),
        2 => ctrl_env(seq as UeId),
        _ => Envelope::new(
            Endpoint::Smf,
            Endpoint::Amf,
            Msg::Sbi {
                op: SbiOp::SmContextRetrieveReq,
                ue: seq as UeId,
            },
        ),
    }
}

fn filled(mix: &[u8], capacity: usize) -> PacketLogger {
    let mut log = PacketLogger::new(capacity);
    for (i, &code) in mix.iter().enumerate() {
        log.log(&env_for(code, i as u64));
    }
    log
}

proptest! {
    /// Counters are assigned strictly increasing regardless of the
    /// traffic mix, and replay emits the surviving subset in that order.
    #[test]
    fn counters_monotone_and_replay_ordered(
        mix in proptest::collection::vec(0u8..8, 1..200),
        capacity in 1usize..32,
    ) {
        let mut log = filled(&mix, capacity);
        prop_assert_eq!(log.next_counter(), mix.len() as u64);
        let replay = log.replay();
        prop_assert!(replay.windows(2).all(|w| w[0].counter < w[1].counter));
        prop_assert_eq!(
            replay.len() as u64 + log.overflow_drops,
            mix.len() as u64,
            "every logged entry either replays or was counted as a drop"
        );
    }

    /// `release_upto` is idempotent and monotone: re-applying the same
    /// watermark (or any lower one) changes nothing.
    #[test]
    fn release_upto_is_idempotent(
        mix in proptest::collection::vec(0u8..8, 1..200),
        capacity in 1usize..32,
        upto in 0u64..250,
        lower in 0u64..250,
    ) {
        let mut once = filled(&mix, capacity);
        once.release_upto(upto);
        let len_after_once = once.len();

        let mut twice = filled(&mix, capacity);
        twice.release_upto(upto);
        twice.release_upto(upto);
        twice.release_upto(lower.min(upto));
        prop_assert_eq!(twice.len(), len_after_once);

        let a: Vec<u64> = once.replay().iter().map(|e| e.counter).collect();
        let b: Vec<u64> = twice.replay().iter().map(|e| e.counter).collect();
        prop_assert_eq!(a.clone(), b, "released logs replay identically");
        prop_assert!(a.iter().all(|&c| c >= upto), "released prefix stays gone");
    }

    /// Replay drains: a second replay is empty, and logging resumes with
    /// the counter sequence unbroken.
    #[test]
    fn replay_drains_once_and_counters_survive(
        mix in proptest::collection::vec(0u8..8, 1..100),
    ) {
        let mut log = filled(&mix, 1024);
        let first = log.replay();
        prop_assert_eq!(first.len(), mix.len());
        prop_assert!(log.replay().is_empty(), "replay is drain-once");
        prop_assert!(log.is_empty());
        let next = log.log(&ctrl_env(1));
        prop_assert_eq!(next, mix.len() as u64, "counter stream is unbroken");
    }

    /// Data floods shed only data; every control entry survives to the
    /// replay no matter how the queues overflow.
    #[test]
    fn control_is_never_shed(
        mix in proptest::collection::vec(0u8..8, 1..200),
        capacity in 1usize..8,
    ) {
        let ctrl_logged = mix.iter().filter(|&&c| c % 4 >= 2).count();
        let mut log = filled(&mix, capacity);
        prop_assert_eq!(
            log.queue_len(QueueKind::UlControl) + log.queue_len(QueueKind::DlControl),
            ctrl_logged
        );
        let replayed_ctrl = log
            .replay()
            .iter()
            .filter(|e| !matches!(e.env.msg, Msg::Data(_)))
            .count();
        prop_assert_eq!(replayed_ctrl, ctrl_logged);
    }
}
