//! Offline stand-in for the `criterion` crate (no network in the build
//! environment). Implements the subset of the API the workspace's
//! `harness = false` benches use — `criterion_group!`/`criterion_main!`,
//! benchmark groups, `Bencher::iter`/`iter_batched` — with a deliberately
//! lightweight measurement loop: a short warm-up, then timed batches,
//! reporting mean ns/iter to stdout. No statistics, plots, or baselines;
//! good enough for relative comparisons in a pinch and for keeping the
//! bench targets compiling and runnable.

use std::fmt;
use std::time::{Duration, Instant};

/// Measurement entry point handed to each benchmark function.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _c: self,
        }
    }
}

/// A named set of benchmarks reported under a common prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    _c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Records the amount of work per iteration (reported, not used).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Shrinks/extends measurement parameters (accepted, ignored).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Upper bound on measurement wall time (accepted, ignored).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::default();
        f(&mut b);
        b.report(&self.name, &id.label());
        self
    }

    /// Benchmarks `f` with an input value, labelled by `id`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::default();
        f(&mut b, input);
        b.report(&self.name, &id.label());
        self
    }

    /// Ends the group (upstream flushes reports here; we report inline).
    pub fn finish(self) {}
}

/// Identifies one benchmark: a function name plus an optional parameter.
pub struct BenchmarkId {
    name: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id with a parameter, rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: name.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id consisting of only a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn label(&self) -> String {
        match &self.parameter {
            Some(p) if self.name.is_empty() => p.clone(),
            Some(p) => format!("{}/{}", self.name, p),
            None => self.name.clone(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> BenchmarkId {
        BenchmarkId {
            name: name.to_owned(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> BenchmarkId {
        BenchmarkId {
            name,
            parameter: None,
        }
    }
}

/// Units of work per iteration, for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Batch sizing hints for [`Bencher::iter_batched`].
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs; large batches.
    SmallInput,
    /// Large per-iteration inputs; small batches.
    LargeInput,
    /// One input per measured call.
    PerIteration,
}

/// Runs the measured routine and accumulates timing.
#[derive(Default)]
pub struct Bencher {
    total: Duration,
    iters: u64,
    /// Per-sample mean ns/iter; the report takes the median so one
    /// scheduler preemption cannot poison the estimate.
    samples: Vec<f64>,
}

/// Measurement budget per benchmark. Below upstream criterion's
/// defaults on purpose: these stand-in numbers are for smoke comparisons,
/// not publication. The budget splits into [`SAMPLES`] timed samples and
/// the report is the median sample, which shrugs off the occasional
/// descheduling on busy or single-core hosts where a single mean would
/// wander by tens of percent.
const WARMUP_ITERS: u64 = 3;
const TARGET: Duration = Duration::from_millis(100);
const SAMPLES: u32 = 10;
const MIN_ITERS: u64 = 1;
const MAX_ITERS: u64 = 100_000;

impl Bencher {
    /// Times repeated calls of `routine`: [`SAMPLES`] timed batches,
    /// each batch capped by its share of [`TARGET`].
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        for _ in 0..WARMUP_ITERS {
            std::hint::black_box(routine());
        }
        let per_sample = TARGET / SAMPLES;
        for _ in 0..SAMPLES {
            let start = Instant::now();
            let mut iters = 0u64;
            while iters < MIN_ITERS || (start.elapsed() < per_sample && iters < MAX_ITERS) {
                std::hint::black_box(routine());
                iters += 1;
            }
            let elapsed = start.elapsed();
            self.total += elapsed;
            self.iters += iters;
            self.samples.push(elapsed.as_nanos() as f64 / iters as f64);
        }
    }

    /// Times `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..WARMUP_ITERS {
            let input = setup();
            std::hint::black_box(routine(input));
        }
        let per_sample = TARGET / SAMPLES;
        for _ in 0..SAMPLES {
            let mut measured = Duration::ZERO;
            let mut iters = 0u64;
            while iters < MIN_ITERS || (measured < per_sample && iters < MAX_ITERS) {
                let input = setup();
                let start = Instant::now();
                std::hint::black_box(routine(input));
                measured += start.elapsed();
                iters += 1;
            }
            self.total += measured;
            self.iters += iters;
            self.samples.push(measured.as_nanos() as f64 / iters as f64);
        }
    }

    fn report(&self, group: &str, label: &str) {
        if self.iters == 0 || self.samples.is_empty() {
            println!("{group}/{label}: no measurements");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("sample is finite"));
        let median = sorted[sorted.len() / 2];
        println!(
            "{group}/{label}: {median:.1} ns/iter (median of {} samples, {} iters)",
            sorted.len(),
            self.iters
        );
    }
}

/// Declares a function that runs the given benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

/// Re-export for code written against `criterion::black_box`.
pub use std::hint::black_box;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::default();
        b.iter(|| 1 + 1);
        assert!(b.iters >= MIN_ITERS);
        b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput);
        assert!(b.total > Duration::ZERO);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Elements(1));
        g.bench_function("add", |b| b.iter(|| 2 + 2));
        g.bench_with_input(BenchmarkId::new("with_input", 4), &4u32, |b, &n| {
            b.iter(|| n * 2)
        });
        g.finish();
    }
}
