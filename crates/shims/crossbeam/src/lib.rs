//! Offline stand-in for the `crossbeam` crate (no network in the build
//! environment). Provides only what this workspace uses:
//! [`utils::CachePadded`].

pub mod utils {
    use core::ops::{Deref, DerefMut};

    /// Pads and aligns a value to 128 bytes so that neighbouring values
    /// never share a cache line (two lines on x86-64, where the spatial
    /// prefetcher pulls pairs of lines).
    #[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
    #[repr(align(128))]
    pub struct CachePadded<T> {
        value: T,
    }

    impl<T> CachePadded<T> {
        /// Wraps `value` in the padded container.
        pub const fn new(value: T) -> CachePadded<T> {
            CachePadded { value }
        }

        /// Unwraps the inner value.
        pub fn into_inner(self) -> T {
            self.value
        }
    }

    impl<T> Deref for CachePadded<T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.value
        }
    }

    impl<T> DerefMut for CachePadded<T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.value
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn alignment_is_128() {
            assert_eq!(core::mem::align_of::<CachePadded<u8>>(), 128);
            let p = CachePadded::new(7u32);
            assert_eq!(*p, 7);
        }
    }
}
