//! Offline stand-in for the `parking_lot` crate (no network in the build
//! environment). Wraps `std::sync::Mutex` behind parking_lot's
//! non-poisoning `lock()` signature — the only API this workspace uses.

use std::fmt;

/// A mutual-exclusion lock whose `lock()` returns the guard directly
/// (poisoning is swallowed, as parking_lot does by construction).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard; the lock is released on drop.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0u8);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
