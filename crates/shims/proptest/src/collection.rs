//! Collection strategies (mirror of `proptest::collection`).

use crate::rng::TestRng;
use crate::strategy::{BoxedStrategy, Strategy};

/// Number of elements a collection strategy may produce.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    /// Inclusive upper bound.
    max: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        self.min + rng.below(self.max - self.min + 1)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max: n }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// A `Vec` whose length is drawn from `size` and whose elements are drawn
/// from `element`.
pub fn vec<S>(element: S, size: impl Into<SizeRange>) -> BoxedStrategy<Vec<S::Value>>
where
    S: Strategy + 'static,
    S::Value: 'static,
{
    let size = size.into();
    BoxedStrategy::new(move |rng| {
        let n = size.pick(rng);
        (0..n).map(|_| element.gen_value(rng)).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn length_bounds_respected() {
        let mut rng = TestRng::new(1);
        let ranged = vec(0u8..255, 2..5);
        let exact = vec(0u8..255, 7usize);
        for _ in 0..100 {
            let v = ranged.gen_value(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert_eq!(exact.gen_value(&mut rng).len(), 7);
        }
    }
}
