//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the API surface its property tests use: the [`proptest!`] macro,
//! `prop_assert*`, strategies for ranges / `any::<T>()` / regex-like
//! string patterns / tuples / collections, and the combinators
//! `prop_map`, `prop_flat_map`, `prop_recursive`, `prop_oneof!`.
//!
//! Differences from upstream, by design:
//! - **No shrinking.** A failing case reports the generated inputs via
//!   `Debug`-free formatting in the assertion message only.
//! - **Fixed deterministic seeding** derived from the test's module path
//!   and name, so failures are reproducible run-to-run.
//! - String "regex" strategies support the subset actually used here:
//!   a single character class (or `\PC`) followed by `{m}`/`{m,n}`.

pub mod collection;
pub mod option;
pub mod prelude;
#[doc(hidden)]
pub mod rng;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Declares property tests. Each function runs `config.cases` times with
/// freshly generated inputs; `prop_assert*` failures abort the run with
/// the case number.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let __seed = $crate::test_runner::seed_from_name(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                let mut __rng = $crate::rng::TestRng::new(__seed);
                for __case in 0..__config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::gen_value(
                            &($strat),
                            &mut __rng,
                        );
                    )+
                    let __result: ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        { $body }
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = __result {
                        panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name),
                            __case + 1,
                            __config.cases,
                            e,
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking directly) so the runner can attribute it.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+),
            l,
            r
        );
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Chooses uniformly among several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::one_of(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
