//! Option strategies (mirror of `proptest::option`).

use crate::strategy::{BoxedStrategy, Strategy};

/// `Some` of the inner strategy three times out of four, else `None`.
pub fn of<S>(inner: S) -> BoxedStrategy<Option<S::Value>>
where
    S: Strategy + 'static,
    S::Value: 'static,
{
    BoxedStrategy::new(move |rng| {
        if rng.below(4) == 0 {
            None
        } else {
            Some(inner.gen_value(rng))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::TestRng;

    #[test]
    fn produces_both_variants() {
        let s = of(0u8..10);
        let mut rng = TestRng::new(1);
        let drawn: Vec<_> = (0..100).map(|_| s.gen_value(&mut rng)).collect();
        assert!(drawn.iter().any(Option::is_some));
        assert!(drawn.iter().any(Option::is_none));
        assert!(drawn.iter().flatten().all(|&v| v < 10));
    }
}
