//! The glob-import surface tests use (`use proptest::prelude::*`).

pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
