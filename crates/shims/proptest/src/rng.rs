//! Internal deterministic RNG for value generation (xoshiro256++).

/// The generator threaded through strategies by the `proptest!` runner.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl TestRng {
    /// A generator whose stream is fully determined by `seed`.
    pub fn new(seed: u64) -> TestRng {
        let mut sm = seed;
        TestRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `usize` in `[0, n)`. Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform `u128`-widened draw in `[lo, hi]` (inclusive), as `u128`.
    pub fn in_range_u128(&mut self, lo: u128, hi: u128) -> u128 {
        debug_assert!(lo <= hi);
        let span = hi - lo + 1;
        if span == 0 {
            // Full 128-bit range; compose two words.
            return (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64());
        }
        lo + (u128::from(self.next_u64()) % span)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }
}
