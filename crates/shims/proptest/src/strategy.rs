//! The [`Strategy`] trait, combinators, and implementations for ranges,
//! tuples, vectors, string patterns, and `any::<T>()`.

use std::sync::Arc;

use crate::rng::TestRng;
use crate::string::gen_string;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream proptest there is no value tree and no shrinking;
/// `gen_value` draws one concrete value from the internal RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> BoxedStrategy<O>
    where
        Self: Sized + 'static,
        O: 'static,
        F: Fn(Self::Value) -> O + 'static,
    {
        let inner = self;
        BoxedStrategy::new(move |rng| f(inner.gen_value(rng)))
    }

    /// Generates a value, then generates from the strategy `f` derives
    /// from it (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> BoxedStrategy<S::Value>
    where
        Self: Sized + 'static,
        S: Strategy + 'static,
        S::Value: 'static,
        F: Fn(Self::Value) -> S + 'static,
    {
        let inner = self;
        BoxedStrategy::new(move |rng| f(inner.gen_value(rng)).gen_value(rng))
    }

    /// Builds recursive structures: `self` is the leaf strategy and `f`
    /// wraps an inner strategy into one more level of nesting. `depth`
    /// bounds the nesting; the `_desired_size`/`_expected_branch` hints
    /// from upstream are accepted and ignored.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let base = self.boxed();
        let mut current = base.clone();
        for _ in 0..depth {
            let recursed = f(current).boxed();
            let leaf = base.clone();
            // Half leaves, half deeper nesting, so generated trees have
            // both shallow and deep shapes at every level.
            current = BoxedStrategy::new(move |rng: &mut TestRng| {
                if rng.chance(0.5) {
                    leaf.gen_value(rng)
                } else {
                    recursed.gen_value(rng)
                }
            });
        }
        current
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        let inner = self;
        BoxedStrategy::new(move |rng| inner.gen_value(rng))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T> {
    gen: Arc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            gen: Arc::clone(&self.gen),
        }
    }
}

impl<T> BoxedStrategy<T> {
    /// Wraps a generation closure.
    pub fn new(f: impl Fn(&mut TestRng) -> T + 'static) -> BoxedStrategy<T> {
        BoxedStrategy { gen: Arc::new(f) }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        (self.gen)(rng)
    }
}

/// A strategy that always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy producing any value of `A`.
pub fn any<A: Arbitrary + 'static>() -> BoxedStrategy<A> {
    BoxedStrategy::new(A::arbitrary)
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> [T; N] {
        core::array::from_fn(|_| T::arbitrary(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.in_range_u128(self.start as u128, self.end as u128 - 1) as $t
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                rng.in_range_u128(lo as u128, hi as u128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn gen_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + rng.unit_f64() * (self.end - self.start);
        if v >= self.end || v < self.start {
            self.start
        } else {
            v
        }
    }
}

/// String strategies from a regex-like pattern (see [`crate::string`]).
impl Strategy for &'static str {
    type Value = String;
    fn gen_value(&self, rng: &mut TestRng) -> String {
        gen_string(self, rng)
    }
}

/// A vector of strategies generates element-wise.
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        self.iter().map(|s| s.gen_value(rng)).collect()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.gen_value(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Uniform choice among type-erased strategies (`prop_oneof!` backend).
pub fn one_of<T: 'static>(strategies: Vec<BoxedStrategy<T>>) -> BoxedStrategy<T> {
    assert!(!strategies.is_empty(), "prop_oneof! of zero strategies");
    BoxedStrategy::new(move |rng| {
        let i = rng.below(strategies.len());
        strategies[i].gen_value(rng)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_and_maps() {
        let mut rng = TestRng::new(1);
        let s = (0u32..10).prop_map(|v| v * 2);
        for _ in 0..100 {
            let v = s.gen_value(&mut rng);
            assert!(v < 20 && v % 2 == 0);
        }
    }

    #[test]
    fn flat_map_dependent_lengths() {
        let mut rng = TestRng::new(2);
        let s = (1usize..5).prop_flat_map(|n| (0..n).map(|_| 0u8..10).collect::<Vec<_>>());
        for _ in 0..50 {
            let v = s.gen_value(&mut rng);
            assert!(!v.is_empty() && v.len() < 5);
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn recursive_terminates() {
        #[derive(Debug)]
        enum Tree {
            Leaf(u8),
            Node(Vec<Tree>),
        }
        let leaf = (0u8..10).prop_map(Tree::Leaf);
        let s = leaf.prop_recursive(3, 16, 4, |inner| {
            crate::collection::vec(inner, 0..4).prop_map(Tree::Node)
        });
        let mut rng = TestRng::new(3);
        for _ in 0..100 {
            let _ = s.gen_value(&mut rng);
        }
    }

    #[test]
    fn one_of_hits_all_branches() {
        let s = one_of(vec![
            Just(1u8).boxed(),
            Just(2u8).boxed(),
            Just(3u8).boxed(),
        ]);
        let mut rng = TestRng::new(4);
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[s.gen_value(&mut rng) as usize] = true;
        }
        assert_eq!(&seen[1..], &[true, true, true]);
    }
}
