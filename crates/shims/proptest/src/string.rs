//! Regex-like string generation for `&str` strategies.
//!
//! Supports the pattern subset this workspace's tests use: one character
//! class — `[...]` with literal characters, escapes, and `a-z` ranges —
//! or `\PC` (any non-control character), followed by a `{m}` or `{m,n}`
//! repetition count. Anything else panics with the offending pattern.

use crate::rng::TestRng;

enum Class {
    /// Inclusive character ranges; single characters are `(c, c)`.
    Set(Vec<(char, char)>),
    /// Any `char` that is not a control character (`\PC`).
    NotControl,
}

impl Class {
    fn sample(&self, rng: &mut TestRng) -> char {
        match self {
            Class::Set(ranges) => {
                let total: u32 = ranges
                    .iter()
                    .map(|&(lo, hi)| hi as u32 - lo as u32 + 1)
                    .sum();
                let mut idx = rng.in_range_u128(0, u128::from(total) - 1) as u32;
                for &(lo, hi) in ranges {
                    let span = hi as u32 - lo as u32 + 1;
                    if idx < span {
                        return char::from_u32(lo as u32 + idx)
                            .expect("class ranges contain valid chars");
                    }
                    idx -= span;
                }
                unreachable!("index within total weight")
            }
            Class::NotControl => loop {
                // Mostly printable ASCII, sometimes wider BMP code points,
                // so JSON-ish escapers see multibyte input too.
                let candidate = if rng.chance(0.85) {
                    rng.in_range_u128(0x20, 0x7e) as u32
                } else {
                    rng.in_range_u128(0xa0, 0xffff) as u32
                };
                if let Some(c) = char::from_u32(candidate) {
                    if !c.is_control() {
                        return c;
                    }
                }
            },
        }
    }
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        '0' => '\0',
        other => other,
    }
}

fn parse(pattern: &str) -> Option<(Class, usize, usize)> {
    let mut chars = pattern.chars().peekable();
    let class = match chars.next()? {
        '[' => {
            let mut ranges = Vec::new();
            loop {
                let c = chars.next()?;
                let lo = match c {
                    ']' => break,
                    '\\' => unescape(chars.next()?),
                    other => other,
                };
                // `x-y` is a range unless `-` is the last class member.
                if chars.peek() == Some(&'-') {
                    let mut ahead = chars.clone();
                    ahead.next(); // the '-'
                    match ahead.peek() {
                        Some(&']') | None => ranges.push((lo, lo)),
                        Some(_) => {
                            chars.next(); // consume '-'
                            let hi = match chars.next()? {
                                '\\' => unescape(chars.next()?),
                                other => other,
                            };
                            ranges.push((lo, hi));
                        }
                    }
                } else {
                    ranges.push((lo, lo));
                }
            }
            if ranges.is_empty() {
                return None;
            }
            Class::Set(ranges)
        }
        '\\' => {
            if chars.next()? != 'P' || chars.next()? != 'C' {
                return None;
            }
            Class::NotControl
        }
        _ => return None,
    };
    // Repetition: {m} or {m,n}.
    if chars.next()? != '{' {
        return None;
    }
    let rest: String = chars.collect();
    let body = rest.strip_suffix('}')?;
    let (min, max) = match body.split_once(',') {
        Some((m, n)) => (m.trim().parse().ok()?, n.trim().parse().ok()?),
        None => {
            let m: usize = body.trim().parse().ok()?;
            (m, m)
        }
    };
    if min > max {
        return None;
    }
    Some((class, min, max))
}

/// Generates one string matching `pattern`.
pub fn gen_string(pattern: &str, rng: &mut TestRng) -> String {
    let (class, min, max) = parse(pattern)
        .unwrap_or_else(|| panic!("unsupported string strategy pattern: {pattern:?}"));
    let len = min + rng.below(max - min + 1);
    (0..len).map(|_| class.sample(rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_class_and_lengths() {
        let mut rng = TestRng::new(1);
        for _ in 0..200 {
            let s = gen_string("[a-z]{1,8}", &mut rng);
            assert!((1..=8).contains(&s.chars().count()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn escapes_and_multi_range_class() {
        let mut rng = TestRng::new(2);
        let pattern = "[a-zA-Z0-9 _\\-\\.\"\\\\\n\t]{0,24}";
        let allowed = |c: char| {
            c.is_ascii_alphanumeric()
                || matches!(c, ' ' | '_' | '-' | '.' | '"' | '\\' | '\n' | '\t')
        };
        for _ in 0..200 {
            let s = gen_string(pattern, &mut rng);
            assert!(s.chars().count() <= 24);
            assert!(s.chars().all(allowed), "bad char in {s:?}");
        }
    }

    #[test]
    fn not_control_class() {
        let mut rng = TestRng::new(3);
        for _ in 0..200 {
            let s = gen_string("\\PC{0,128}", &mut rng);
            assert!(s.chars().count() <= 128);
            assert!(s.chars().all(|c| !c.is_control()));
        }
    }

    #[test]
    fn exact_repetition() {
        let mut rng = TestRng::new(4);
        let s = gen_string("[0-9]{5}", &mut rng);
        assert_eq!(s.chars().count(), 5);
    }

    #[test]
    #[should_panic(expected = "unsupported string strategy pattern")]
    fn unsupported_pattern_panics() {
        let mut rng = TestRng::new(5);
        gen_string("(a|b)+", &mut rng);
    }
}
