//! Runner configuration and failure plumbing used by the `proptest!`
//! macro (mirror of `proptest::test_runner`).

use std::fmt;

/// How many cases each property runs.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        // Upstream defaults to 256; this stand-in trades a little
        // coverage for workspace test time.
        ProptestConfig { cases: 64 }
    }
}

/// A failed property case (from `prop_assert*`).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// The result type `proptest!` bodies are wrapped into.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic per-test seed from the test's full path (FNV-1a).
pub fn seed_from_name(name: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}
