//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the exact API surface it uses instead of depending on crates.io:
//! [`rngs::SmallRng`] seeded from a `u64`, [`Rng::gen`], [`Rng::gen_range`]
//! over half-open and inclusive integer/float ranges, and [`SeedableRng`].
//!
//! The generator is xoshiro256++ with SplitMix64 seed expansion — the same
//! family the real `SmallRng` uses on 64-bit targets. Streams are
//! deterministic across platforms but make no attempt to reproduce the
//! upstream crate's exact value sequences; nothing in this workspace
//! asserts on specific drawn values, only on determinism and statistics.

pub mod rngs;

/// A source of 64-bit random words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that [`Rng::gen`] can produce uniformly.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Types [`Rng::gen_range`] can sample. The blanket [`SampleRange`]
/// impls below go through this trait, which is what lets the compiler
/// infer the integer type of a literal range from the call site (e.g.
/// `slice.get(rng.gen_range(0..3))` forcing `usize`), same as upstream.
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform draw from `[lo, hi)` — or `[lo, hi]` when `inclusive`.
    fn sample_between<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

/// Ranges that can be sampled uniformly to yield a `T`.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform value over the type's full range (`[0, 1)` for `f64`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform value in `range`. Panics on an empty range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_between(lo, hi, true, rng)
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn sample_between<R: RngCore + ?Sized>(
                lo: $t,
                hi: $t,
                inclusive: bool,
                rng: &mut R,
            ) -> $t {
                // u128 arithmetic so full-width inclusive ranges can't
                // overflow the span computation.
                let span = (hi as u128) - (lo as u128) + u128::from(inclusive);
                assert!(span > 0, "cannot sample empty range");
                lo + ((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_signed {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn sample_between<R: RngCore + ?Sized>(
                lo: $t,
                hi: $t,
                inclusive: bool,
                rng: &mut R,
            ) -> $t {
                let span = ((hi as i128) - (lo as i128)) as u128 + u128::from(inclusive);
                assert!(span > 0, "cannot sample empty range");
                ((lo as i128) + ((rng.next_u64() as u128 % span) as i128)) as $t
            }
        }
    )*};
}
impl_uniform_signed!(i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_between<R: RngCore + ?Sized>(lo: f64, hi: f64, _inclusive: bool, rng: &mut R) -> f64 {
        assert!(lo < hi, "cannot sample empty range");
        let unit = f64::sample(rng);
        let v = lo + unit * (hi - lo);
        // Guard against rounding pushing the value onto either boundary.
        if v >= hi || v < lo {
            lo
        } else {
            v
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn determinism() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(1);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(2);
        for _ in 0..1000 {
            assert!((10..20u64).contains(&r.gen_range(10u64..20)));
            assert!((0..=9usize).contains(&r.gen_range(0usize..=9)));
            let f: f64 = r.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn full_inclusive_range_does_not_overflow() {
        let mut r = SmallRng::seed_from_u64(3);
        for _ in 0..100 {
            let _: u32 = r.gen_range(0u32..=u32::MAX);
        }
    }

    #[test]
    fn f64_unit_interval() {
        let mut r = SmallRng::seed_from_u64(4);
        for _ in 0..1000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
