//! The discrete-event engine.
//!
//! An [`Engine`] owns a priority queue of scheduled events and a user-defined
//! *world* `W` — the mutable state of the whole simulated system. Each event
//! is a boxed closure that receives `&mut W` and a [`Ctx`] through which it
//! can read the clock, draw random numbers, cancel timers, and stop the run.
//!
//! Handlers schedule *new* events through a [`Mailbox`] embedded in the
//! world (see [`HasMailbox`]): closures are staged in the mailbox and the
//! engine pumps them into its queue between steps. This keeps the handler's
//! `&mut W` borrow independent of the queue without interior mutability.
//!
//! Determinism: ties in time are broken by a monotonically increasing
//! sequence number, so two events scheduled for the same instant always run
//! in the order they were scheduled, and a run is a pure function of
//! (initial world, seed, event program).

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// An event handler: runs against the world at its scheduled instant.
pub type EventFn<W> = Box<dyn FnOnce(&mut W, &mut Ctx)>;

/// Identifies a scheduled event so it can be cancelled before it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

struct Scheduled<W> {
    at: SimTime,
    seq: u64,
    f: EventFn<W>,
}

impl<W> PartialEq for Scheduled<W> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<W> Eq for Scheduled<W> {}
impl<W> PartialOrd for Scheduled<W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<W> Ord for Scheduled<W> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Handle passed to running events: clock, RNG, cancellation, stop.
pub struct Ctx {
    now: SimTime,
    cancelled: Vec<EventId>,
    rng: SimRng,
    stop: bool,
}

impl Ctx {
    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The engine's deterministic random number generator.
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    /// Requests that the engine stop after this handler returns, leaving any
    /// remaining events in the queue.
    pub fn stop(&mut self) {
        self.stop = true;
    }

    /// Cancels a previously scheduled event. Cancelling an event that has
    /// already run (or was already cancelled) is a no-op.
    pub fn cancel(&mut self, id: EventId) {
        self.cancelled.push(id);
    }
}

/// The discrete-event engine over a world `W`.
pub struct Engine<W> {
    world: W,
    queue: BinaryHeap<Scheduled<W>>,
    cancelled: HashSet<u64>,
    now: SimTime,
    next_seq: u64,
    rng_seed: u64,
    rng: Option<SimRng>,
    events_run: u64,
}

impl<W> Engine<W> {
    /// Creates an engine at `t = 0` with a seeded RNG and the given world.
    pub fn new(seed: u64, world: W) -> Self {
        Engine {
            world,
            queue: BinaryHeap::new(),
            cancelled: HashSet::new(),
            now: SimTime::ZERO,
            next_seq: 0,
            rng_seed: seed,
            rng: Some(SimRng::new(seed)),
            events_run: 0,
        }
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The seed this engine was created with.
    pub fn seed(&self) -> u64 {
        self.rng_seed
    }

    /// How many events have executed so far.
    pub fn events_run(&self) -> u64 {
        self.events_run
    }

    /// Shared access to the world.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Exclusive access to the world (e.g. to inspect or mutate between runs).
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// Consumes the engine and returns the world.
    pub fn into_world(self) -> W {
        self.world
    }

    /// Schedules `f` to run at absolute time `at`. Scheduling in the past is
    /// clamped to `now` (the event still runs, at the current instant, after
    /// all events already scheduled for `now`).
    pub fn schedule_at(
        &mut self,
        at: SimTime,
        f: impl FnOnce(&mut W, &mut Ctx) + 'static,
    ) -> EventId {
        self.push(at, Box::new(f))
    }

    /// Schedules `f` to run `after` from now.
    pub fn schedule_in(
        &mut self,
        after: SimDuration,
        f: impl FnOnce(&mut W, &mut Ctx) + 'static,
    ) -> EventId {
        self.schedule_at(self.now + after, f)
    }

    fn push(&mut self, at: SimTime, f: EventFn<W>) -> EventId {
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(Scheduled { at, seq, f });
        EventId(seq)
    }

    /// Cancels a scheduled event by id. No-op if it already ran.
    pub fn cancel(&mut self, id: EventId) {
        self.cancelled.insert(id.0);
    }

    /// Runs a single event if one is queued. Returns `false` when the queue
    /// is empty. Does not pump the mailbox; prefer the `*_with_mailbox`
    /// runners for worlds that stage events.
    pub fn step(&mut self) -> bool {
        self.step_bounded(SimTime::MAX).is_ran()
    }

    fn step_bounded(&mut self, deadline: SimTime) -> StepOutcome {
        loop {
            let Some(head) = self.queue.peek() else {
                return StepOutcome::Empty;
            };
            if head.at > deadline {
                return StepOutcome::PastDeadline;
            }
            let ev = self.queue.pop().expect("peeked");
            if self.cancelled.remove(&ev.seq) {
                continue;
            }
            debug_assert!(ev.at >= self.now, "event queue went backwards");
            self.now = ev.at;
            self.events_run += 1;

            let mut ctx = Ctx {
                now: self.now,
                cancelled: Vec::new(),
                rng: self.rng.take().expect("rng present"),
                stop: false,
            };
            (ev.f)(&mut self.world, &mut ctx);

            for id in ctx.cancelled.drain(..) {
                self.cancelled.insert(id.0);
            }
            self.rng = Some(ctx.rng);
            if ctx.stop {
                return StepOutcome::Stopped;
            }
            return StepOutcome::Ran;
        }
    }

    /// Runs until the queue is empty (without mailbox pumping). Returns the
    /// final time.
    pub fn run(&mut self) -> SimTime {
        while self.step() {}
        self.now
    }

    /// Runs events with timestamps `<= deadline` (without mailbox pumping),
    /// then advances the clock to `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) -> SimTime {
        while self.step_bounded(deadline).is_ran() {}
        if self.now < deadline && deadline != SimTime::MAX {
            self.now = deadline;
        }
        self.now
    }
}

enum StepOutcome {
    Ran,
    Stopped,
    Empty,
    PastDeadline,
}

impl StepOutcome {
    fn is_ran(&self) -> bool {
        matches!(self, StepOutcome::Ran)
    }
}

/// A deferred-event mailbox the *world* owns, letting handlers schedule
/// followup events without borrowing the engine.
///
/// Usage: the world embeds a `Mailbox<W>`; handlers call
/// `world.mailbox.send_in(ctx, delay, closure)`; the engine drains it after
/// each step when driven by [`Engine::run_with_mailbox`] /
/// [`Engine::run_until_with_mailbox`].
pub struct Mailbox<W> {
    items: Vec<(SimTime, EventFn<W>)>,
}

impl<W> Default for Mailbox<W> {
    fn default() -> Self {
        Mailbox { items: Vec::new() }
    }
}

impl<W> Mailbox<W> {
    /// Creates an empty mailbox.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `f` at absolute virtual time `at`.
    pub fn send_at(&mut self, at: SimTime, f: impl FnOnce(&mut W, &mut Ctx) + 'static) {
        self.items.push((at, Box::new(f)));
    }

    /// Schedules `f` to run `d` after the current instant.
    pub fn send_in(
        &mut self,
        ctx: &Ctx,
        d: SimDuration,
        f: impl FnOnce(&mut W, &mut Ctx) + 'static,
    ) {
        self.send_at(ctx.now() + d, f);
    }

    /// Schedules `f` to run at the current instant, after already-queued
    /// events for this instant.
    pub fn send_now(&mut self, ctx: &Ctx, f: impl FnOnce(&mut W, &mut Ctx) + 'static) {
        self.send_at(ctx.now(), f);
    }

    /// Number of staged events not yet pumped into the engine.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if no events are staged.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    fn drain(&mut self) -> Vec<(SimTime, EventFn<W>)> {
        std::mem::take(&mut self.items)
    }
}

/// Worlds that embed a [`Mailbox`] and want automatic pumping.
pub trait HasMailbox: Sized {
    /// Access to the embedded mailbox.
    fn mailbox(&mut self) -> &mut Mailbox<Self>;
}

impl<W: HasMailbox + 'static> Engine<W> {
    /// Moves events staged in the world's mailbox into the engine queue.
    pub fn pump(&mut self) {
        for (at, f) in self.world.mailbox().drain() {
            self.push(at, f);
        }
    }

    /// Runs to completion, pumping the mailbox between steps.
    pub fn run_with_mailbox(&mut self) -> SimTime {
        self.run_until_with_mailbox(SimTime::MAX)
    }

    /// Runs until `deadline`, pumping the mailbox between steps, then
    /// advances the clock to `deadline`.
    pub fn run_until_with_mailbox(&mut self, deadline: SimTime) -> SimTime {
        loop {
            self.pump();
            match self.step_bounded(deadline) {
                StepOutcome::Ran => {}
                StepOutcome::Stopped => break,
                StepOutcome::Empty | StepOutcome::PastDeadline => {
                    self.pump();
                    let head_ok = self.queue.peek().map(|h| h.at <= deadline).unwrap_or(false);
                    if !head_ok {
                        break;
                    }
                }
            }
        }
        if self.now < deadline && deadline != SimTime::MAX {
            self.now = deadline;
        }
        self.now
    }

    /// Runs for `dur` of virtual time from now, pumping the mailbox.
    pub fn run_for_with_mailbox(&mut self, dur: SimDuration) -> SimTime {
        let deadline = self.now + dur;
        self.run_until_with_mailbox(deadline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct World {
        log: Vec<(u64, &'static str)>,
    }

    #[test]
    fn events_run_in_time_order() {
        let mut eng = Engine::new(1, World::default());
        eng.schedule_at(SimTime::from_nanos(30), |w: &mut World, c| {
            w.log.push((c.now().as_nanos(), "c"))
        });
        eng.schedule_at(SimTime::from_nanos(10), |w: &mut World, c| {
            w.log.push((c.now().as_nanos(), "a"))
        });
        eng.schedule_at(SimTime::from_nanos(20), |w: &mut World, c| {
            w.log.push((c.now().as_nanos(), "b"))
        });
        eng.run();
        assert_eq!(eng.world().log, vec![(10, "a"), (20, "b"), (30, "c")]);
    }

    #[test]
    fn ties_break_by_schedule_order() {
        let mut eng = Engine::new(1, World::default());
        let t = SimTime::from_nanos(5);
        eng.schedule_at(t, |w: &mut World, _| w.log.push((0, "first")));
        eng.schedule_at(t, |w: &mut World, _| w.log.push((0, "second")));
        eng.run();
        assert_eq!(eng.world().log, vec![(0, "first"), (0, "second")]);
    }

    #[test]
    fn cancel_prevents_execution() {
        let mut eng = Engine::new(1, World::default());
        let id = eng.schedule_at(SimTime::from_nanos(10), |w: &mut World, _| {
            w.log.push((0, "cancelled"))
        });
        eng.schedule_at(SimTime::from_nanos(20), |w: &mut World, _| {
            w.log.push((0, "kept"))
        });
        eng.cancel(id);
        eng.run();
        assert_eq!(eng.world().log, vec![(0, "kept")]);
    }

    #[test]
    fn run_until_advances_clock_to_deadline() {
        let mut eng = Engine::new(1, World::default());
        eng.schedule_at(SimTime::from_nanos(10), |w: &mut World, _| {
            w.log.push((0, "x"))
        });
        eng.schedule_at(SimTime::from_nanos(100), |w: &mut World, _| {
            w.log.push((0, "y"))
        });
        let t = eng.run_until(SimTime::from_nanos(50));
        assert_eq!(t, SimTime::from_nanos(50));
        assert_eq!(eng.world().log.len(), 1);
        eng.run();
        assert_eq!(eng.world().log.len(), 2);
    }

    #[test]
    fn past_scheduling_clamps_to_now() {
        let mut eng = Engine::new(1, World::default());
        eng.schedule_at(SimTime::from_nanos(100), |w: &mut World, c| {
            w.log.push((c.now().as_nanos(), "late"));
        });
        eng.run();
        // Now at t=100; schedule "in the past".
        eng.schedule_at(SimTime::from_nanos(10), |w: &mut World, c| {
            w.log.push((c.now().as_nanos(), "clamped"));
        });
        eng.run();
        assert_eq!(eng.world().log, vec![(100, "late"), (100, "clamped")]);
    }

    struct MbWorld {
        mailbox: Mailbox<MbWorld>,
        hits: Vec<u64>,
    }
    impl HasMailbox for MbWorld {
        fn mailbox(&mut self) -> &mut Mailbox<Self> {
            &mut self.mailbox
        }
    }

    #[test]
    fn mailbox_chains_events() {
        let mut eng = Engine::new(
            7,
            MbWorld {
                mailbox: Mailbox::new(),
                hits: vec![],
            },
        );
        eng.schedule_at(SimTime::from_nanos(1), |w: &mut MbWorld, c| {
            w.hits.push(c.now().as_nanos());
            w.mailbox.send_in(c, SimDuration::from_nanos(9), |w, c| {
                w.hits.push(c.now().as_nanos());
                w.mailbox.send_in(c, SimDuration::from_nanos(90), |w, c| {
                    w.hits.push(c.now().as_nanos());
                });
            });
        });
        eng.run_with_mailbox();
        assert_eq!(eng.world().hits, vec![1, 10, 100]);
    }

    #[test]
    fn deterministic_given_same_seed() {
        fn run(seed: u64) -> Vec<u64> {
            let mut eng = Engine::new(
                seed,
                MbWorld {
                    mailbox: Mailbox::new(),
                    hits: vec![],
                },
            );
            eng.schedule_at(SimTime::ZERO, |w: &mut MbWorld, c| {
                for _ in 0..10 {
                    let jitter = c.rng().range_u64(0, 1000);
                    let t = c.now() + SimDuration::from_nanos(jitter);
                    w.mailbox.send_at(t, move |w: &mut MbWorld, c| {
                        w.hits.push(c.now().as_nanos());
                    });
                }
            });
            eng.run_with_mailbox();
            eng.into_world().hits
        }
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn stop_halts_the_run() {
        let mut eng = Engine::new(1, World::default());
        eng.schedule_at(SimTime::from_nanos(1), |w: &mut World, c| {
            w.log.push((1, "ran"));
            c.stop();
        });
        eng.schedule_at(SimTime::from_nanos(2), |w: &mut World, _| {
            w.log.push((2, "should not run yet"));
        });
        eng.run_until(SimTime::MAX);
        assert_eq!(eng.world().log.len(), 1);
    }

    #[test]
    fn run_for_with_mailbox_respects_deadline() {
        let mut eng = Engine::new(
            1,
            MbWorld {
                mailbox: Mailbox::new(),
                hits: vec![],
            },
        );
        eng.schedule_at(SimTime::from_nanos(1), |w: &mut MbWorld, c| {
            w.hits.push(c.now().as_nanos());
            w.mailbox.send_in(c, SimDuration::from_secs(10), |w, c| {
                w.hits.push(c.now().as_nanos());
            });
        });
        let t = eng.run_for_with_mailbox(SimDuration::from_secs(1));
        assert_eq!(t, SimTime::from_nanos(1_000_000_000));
        assert_eq!(eng.world().hits, vec![1]);
    }
}
