//! # l25gc-sim — deterministic discrete-event simulation engine
//!
//! The time substrate for the L²5GC reproduction. Every latency figure in
//! the paper's evaluation is a function of *event ordering* plus *path
//! costs*; this crate provides the ordering half: a virtual clock
//! ([`SimTime`]/[`SimDuration`]), a binary-heap scheduler ([`Engine`]) with
//! deterministic tie-breaking, a seeded RNG ([`SimRng`]), and metric
//! recorders ([`TimeSeries`], [`Stats`], [`Counters`]).
//!
//! Design follows the smoltcp school: event-driven, no background threads,
//! no interior mutability, simulations are pure functions of their inputs.
//!
//! ```
//! use l25gc_sim::{Engine, Mailbox, HasMailbox, SimTime, SimDuration};
//!
//! struct World { mailbox: Mailbox<World>, pings: u32 }
//! impl HasMailbox for World {
//!     fn mailbox(&mut self) -> &mut Mailbox<Self> { &mut self.mailbox }
//! }
//!
//! let mut eng = Engine::new(42, World { mailbox: Mailbox::new(), pings: 0 });
//! eng.schedule_at(SimTime::ZERO, |w: &mut World, ctx| {
//!     w.pings += 1;
//!     w.mailbox.send_in(ctx, SimDuration::from_millis(1), |w, _| w.pings += 1);
//! });
//! eng.run_with_mailbox();
//! assert_eq!(eng.world().pings, 2);
//! assert_eq!(eng.now(), SimTime::from_nanos(1_000_000));
//! ```

pub mod engine;
pub mod queue;
pub mod rng;
pub mod time;
pub mod trace;

pub use engine::{Ctx, Engine, EventFn, EventId, HasMailbox, Mailbox};
pub use queue::EventQueue;
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
pub use trace::{Counters, Stats, TimeSeries};
