//! A value-typed event queue for workloads with millions of pending
//! events.
//!
//! [`Engine`](crate::Engine) stores every scheduled event as a
//! `Box<dyn FnOnce>` — perfect for heterogeneous experiment scripts, but
//! one heap allocation plus a vtable per event. A fleet-scale load
//! generator schedules millions of *homogeneous* events (arrivals,
//! completions, think-time expiries); boxing each one dominates the run.
//!
//! [`EventQueue<T>`] is the flat alternative: a binary heap of
//! `(SimTime, seq, T)` triples with the same deterministic FIFO
//! tie-breaking discipline as the engine (ties in time pop in push
//! order), no allocation per push beyond the heap's amortised growth,
//! and a [`EventQueue::reserve`] to pre-size for a known population.
//! `l25gc-load` drives its capacity sweeps through this queue; the boxed
//! engine remains the right tool for the figure-reproduction scripts.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

struct Entry<T> {
    at: SimTime,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap inverted: earliest (time, seq) pops first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A deterministic min-time priority queue over plain values.
///
/// Events scheduled for the same instant pop in the order they were
/// pushed, so a run is a pure function of the push sequence — the same
/// guarantee [`Engine`](crate::Engine) gives, without per-event boxing.
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<T> EventQueue<T> {
    /// An empty queue.
    pub fn new() -> EventQueue<T> {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// An empty queue with room for `capacity` events before any
    /// reallocation.
    pub fn with_capacity(capacity: usize) -> EventQueue<T> {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            next_seq: 0,
        }
    }

    /// Reserves room for at least `additional` more events.
    pub fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
    }

    /// Schedules `item` at absolute time `at`.
    pub fn push(&mut self, at: SimTime, item: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, item });
    }

    /// The timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Pops the earliest event as `(time, item)`.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        self.heap.pop().map(|e| (e.at, e.item))
    }

    /// Pops the earliest event only if it is due at or before `deadline`.
    pub fn pop_before(&mut self, deadline: SimTime) -> Option<(SimTime, T)> {
        if self.peek_time()? > deadline {
            return None;
        }
        self.pop()
    }

    /// Pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops every pending event.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(30), "c");
        q.push(SimTime::from_nanos(10), "a");
        q.push(SimTime::from_nanos(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, x)| x).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_pop_in_push_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..100u32 {
            q.push(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, x)| x).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn pop_before_respects_deadline() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(10), 1);
        q.push(SimTime::from_nanos(50), 2);
        assert_eq!(
            q.pop_before(SimTime::from_nanos(20)),
            Some((SimTime::from_nanos(10), 1))
        );
        assert_eq!(q.pop_before(SimTime::from_nanos(20)), None);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn million_events_round_trip_in_order() {
        // The load-engine scale this queue exists for: push a million
        // events in scrambled order, pop them back fully sorted.
        let mut q = EventQueue::with_capacity(1 << 20);
        let mut t = 0u64;
        for i in 0..1_000_000u64 {
            // Deterministic scramble over a wide time range.
            t = t.wrapping_mul(6364136223846793005).wrapping_add(i) % (1 << 40);
            q.push(SimTime::from_nanos(t), i);
        }
        let mut last = SimTime::ZERO;
        let mut n = 0u64;
        while let Some((at, _)) = q.pop() {
            assert!(at >= last, "time went backwards");
            last = at;
            n += 1;
        }
        assert_eq!(n, 1_000_000);
    }
}
