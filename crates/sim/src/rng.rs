//! Deterministic random numbers for simulations.
//!
//! Wraps [`rand::rngs::SmallRng`] behind a small, purpose-built API so that
//! the rest of the workspace never depends on `rand` traits directly and
//! simulation code stays trivially reproducible from a single `u64` seed.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A seeded random number generator for simulation use.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: SmallRng,
}

impl SimRng {
    /// Creates a generator from a seed. Identical seeds yield identical
    /// streams on every platform.
    pub fn new(seed: u64) -> Self {
        SimRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child generator; useful to give each
    /// component its own stream so adding draws in one component does not
    /// perturb another.
    pub fn fork(&mut self) -> SimRng {
        SimRng::new(self.inner.gen())
    }

    /// Uniform `u64` in `[lo, hi)`. Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        self.inner.gen_range(lo..hi)
    }

    /// Uniform `usize` in `[0, n)`. Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        self.inner.gen_range(0..n)
    }

    /// Uniform `u32` over the full range.
    pub fn next_u32(&mut self) -> u32 {
        self.inner.gen()
    }

    /// Uniform `u64` over the full range.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.gen()
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.inner.gen::<f64>() < p
        }
    }

    /// Exponentially distributed `f64` with the given mean (> 0).
    ///
    /// Used for Poisson inter-arrival jitter in workload generators.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        let u: f64 = self.inner.gen_range(f64::MIN_POSITIVE..1.0);
        -mean * u.ln()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            items.swap(i, j);
        }
    }

    /// Picks a uniformly random element, or `None` if empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.index(items.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(9);
        let mut b = SimRng::new(9);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn range_stays_in_bounds() {
        let mut r = SimRng::new(1);
        for _ in 0..1000 {
            let v = r.range_u64(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(2);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-0.5));
        assert!(r.chance(1.5));
    }

    #[test]
    fn exponential_mean_roughly_holds() {
        let mut r = SimRng::new(3);
        let n = 20_000;
        let mean = 5.0;
        let sum: f64 = (0..n).map(|_| r.exponential(mean)).sum();
        let observed = sum / n as f64;
        assert!((observed - mean).abs() < 0.2, "observed mean {observed}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::new(4);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn fork_decorrelates_streams() {
        let mut parent = SimRng::new(5);
        let mut child = parent.fork();
        // Not a statistical test; just ensure the streams differ.
        let a: Vec<u64> = (0..10).map(|_| parent.next_u64()).collect();
        let b: Vec<u64> = (0..10).map(|_| child.next_u64()).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn choose_empty_is_none() {
        let mut r = SimRng::new(6);
        let empty: [u8; 0] = [];
        assert!(r.choose(&empty).is_none());
        assert_eq!(r.choose(&[42]), Some(&42));
    }
}
