//! Virtual time for the discrete-event engine.
//!
//! [`SimTime`] is an absolute instant and [`SimDuration`] a span, both held
//! as integer nanoseconds so that simulations are exactly reproducible:
//! there is no floating-point drift in the clock itself. Floating-point
//! accessors are provided only for reporting.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A span of virtual time, in integer nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// nanosecond. Negative or non-finite inputs saturate to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((s * 1e9).round() as u64)
    }

    /// Creates a duration from fractional microseconds (common unit in the
    /// paper's latency plots).
    pub fn from_micros_f64(us: f64) -> Self {
        Self::from_secs_f64(us * 1e-6)
    }

    /// The duration in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The duration in fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// The duration in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The duration in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction; returns [`SimDuration::ZERO`] on underflow.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// True if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Div<SimDuration> for SimDuration {
    type Output = f64;
    fn div(self, rhs: SimDuration) -> f64 {
        self.0 as f64 / rhs.0 as f64
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{ns}ns")
        }
    }
}

/// An absolute instant of virtual time, measured from simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable instant; useful as an "infinite" deadline.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `ns` nanoseconds after the epoch.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds since the epoch.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Fractional milliseconds since the epoch.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Time elapsed since `earlier`; saturates to zero if `earlier` is later.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.as_nanos()))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.as_nanos())
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimDuration::from_millis(2).as_nanos(), 2_000_000);
        assert_eq!(SimDuration::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(SimDuration::from_secs_f64(1.5).as_nanos(), 1_500_000_000);
        assert_eq!(SimDuration::from_micros_f64(0.5).as_nanos(), 500);
    }

    #[test]
    fn negative_and_nan_durations_saturate_to_zero() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::ZERO);
    }

    #[test]
    fn time_arithmetic() {
        let t0 = SimTime::ZERO;
        let t1 = t0 + SimDuration::from_millis(10);
        assert_eq!(t1.duration_since(t0), SimDuration::from_millis(10));
        assert_eq!(t0.duration_since(t1), SimDuration::ZERO);
        assert_eq!(t1 - t0, SimDuration::from_millis(10));
    }

    #[test]
    fn duration_ratio_division() {
        let a = SimDuration::from_millis(10);
        let b = SimDuration::from_millis(2);
        assert!((a / b - 5.0).abs() < 1e-12);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(12)), "12.000s");
    }

    #[test]
    fn saturating_add_at_max() {
        let t = SimTime::MAX + SimDuration::from_secs(1);
        assert_eq!(t, SimTime::MAX);
    }
}
