//! Metric recording: time series, latency statistics, and counters.
//!
//! Experiment harnesses record per-packet and per-event observations into
//! these structures during a run; figure/table printers read them back out
//! afterwards. All statistics are computed on demand so recording stays a
//! single `Vec::push`.

use crate::time::{SimDuration, SimTime};

/// A series of `(time, value)` samples, e.g. RTT-over-time for Fig 13/14.
#[derive(Debug, Clone, Default)]
pub struct TimeSeries {
    samples: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a sample. Samples may be recorded out of order; readers that
    /// need order should call [`TimeSeries::sorted`].
    pub fn record(&mut self, t: SimTime, value: f64) {
        self.samples.push((t, value));
    }

    /// Appends a duration sample in microseconds (the paper's usual unit).
    pub fn record_dur(&mut self, t: SimTime, d: SimDuration) {
        self.record(t, d.as_micros_f64());
    }

    /// All samples, in recording order.
    pub fn samples(&self) -> &[(SimTime, f64)] {
        &self.samples
    }

    /// Samples sorted by time (stable, preserving recording order on ties).
    pub fn sorted(&self) -> Vec<(SimTime, f64)> {
        let mut v = self.samples.clone();
        v.sort_by_key(|&(t, _)| t);
        v
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Largest sample value, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        self.samples.iter().map(|&(_, v)| v).fold(None, |acc, v| {
            Some(match acc {
                Some(m) if m >= v => m,
                _ => v,
            })
        })
    }

    /// Number of samples strictly above `threshold` — e.g. "packets that
    /// experienced higher RTT" in Tables 1 and 2.
    pub fn count_above(&self, threshold: f64) -> usize {
        self.samples.iter().filter(|&&(_, v)| v > threshold).count()
    }

    /// Statistics over the values.
    pub fn stats(&self) -> Stats {
        Stats::from_values(self.samples.iter().map(|&(_, v)| v))
    }

    /// Mean value over samples with `t` in `[from, to)`.
    pub fn mean_in_window(&self, from: SimTime, to: SimTime) -> Option<f64> {
        let vals: Vec<f64> = self
            .samples
            .iter()
            .filter(|&&(t, _)| t >= from && t < to)
            .map(|&(_, v)| v)
            .collect();
        if vals.is_empty() {
            None
        } else {
            Some(vals.iter().sum::<f64>() / vals.len() as f64)
        }
    }
}

/// Summary statistics over a set of scalar observations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stats {
    /// Number of observations.
    pub count: usize,
    /// Smallest observation (0 if empty).
    pub min: f64,
    /// Largest observation (0 if empty).
    pub max: f64,
    /// Arithmetic mean (0 if empty).
    pub mean: f64,
    /// Median (0 if empty).
    pub p50: f64,
    /// 95th percentile (0 if empty).
    pub p95: f64,
    /// 99th percentile (0 if empty).
    pub p99: f64,
}

impl Stats {
    /// Computes statistics from an iterator of values. NaN observations
    /// (e.g. a rate computed over an empty window) are skipped rather
    /// than poisoning the whole summary.
    pub fn from_values(values: impl IntoIterator<Item = f64>) -> Stats {
        let mut v: Vec<f64> = values.into_iter().filter(|x| !x.is_nan()).collect();
        if v.is_empty() {
            return Stats {
                count: 0,
                min: 0.0,
                max: 0.0,
                mean: 0.0,
                p50: 0.0,
                p95: 0.0,
                p99: 0.0,
            };
        }
        v.sort_by(f64::total_cmp);
        let count = v.len();
        let sum: f64 = v.iter().sum();
        let pct = |p: f64| -> f64 {
            // Nearest-rank percentile on the sorted sample.
            let rank = ((p / 100.0) * count as f64).ceil().max(1.0) as usize;
            v[rank.min(count) - 1]
        };
        Stats {
            count,
            min: v[0],
            max: v[count - 1],
            mean: sum / count as f64,
            p50: pct(50.0),
            p95: pct(95.0),
            p99: pct(99.0),
        }
    }

    /// Computes statistics from durations, in microseconds.
    pub fn from_durations<'a>(durs: impl IntoIterator<Item = &'a SimDuration>) -> Stats {
        Stats::from_values(durs.into_iter().map(|d| d.as_micros_f64()))
    }
}

/// A labelled monotonic counter set, e.g. packets sent/dropped/buffered.
///
/// Lookup goes through a `HashMap` index so `add`/`inc` on the data path
/// are O(1) regardless of how many distinct counters a run creates; the
/// `entries` vector preserves creation order for deterministic printing.
#[derive(Debug, Clone, Default)]
pub struct Counters {
    entries: Vec<(&'static str, u64)>,
    index: std::collections::HashMap<&'static str, usize>,
}

impl Counters {
    /// Creates an empty counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to the named counter, creating it at zero if absent.
    pub fn add(&mut self, name: &'static str, n: u64) {
        match self.index.get(name) {
            Some(&i) => self.entries[i].1 += n,
            None => {
                self.index.insert(name, self.entries.len());
                self.entries.push((name, n));
            }
        }
    }

    /// Increments the named counter by one.
    pub fn inc(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    /// Reads a counter; absent counters read as zero.
    pub fn get(&self, name: &str) -> u64 {
        self.index
            .get(name)
            .map(|&i| self.entries[i].1)
            .unwrap_or(0)
    }

    /// All counters in creation order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.entries.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_known_values() {
        let s = Stats::from_values([1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.count, 5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.p50, 3.0);
        assert_eq!(s.p99, 5.0);
    }

    #[test]
    fn stats_empty_is_zeroed() {
        let s = Stats::from_values(std::iter::empty());
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn percentile_of_single_value() {
        let s = Stats::from_values([7.0]);
        assert_eq!(s.p50, 7.0);
        assert_eq!(s.p95, 7.0);
        assert_eq!(s.p99, 7.0);
    }

    #[test]
    fn stats_skip_nan_instead_of_panicking() {
        // Regression: `sort_by(partial_cmp)` used to panic on NaN input.
        let s = Stats::from_values([2.0, f64::NAN, 1.0, f64::NAN, 3.0]);
        assert_eq!(s.count, 3, "NaN observations are excluded");
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.mean, 2.0);

        let all_nan = Stats::from_values([f64::NAN, f64::NAN]);
        assert_eq!(all_nan.count, 0, "all-NaN input degrades to empty");
    }

    #[test]
    fn counters_iterate_in_creation_order_at_scale() {
        let mut c = Counters::new();
        let names: Vec<&'static str> = vec!["zeta", "alpha", "mid", "beta", "last"];
        for (i, n) in names.iter().enumerate() {
            c.add(n, i as u64 + 1);
        }
        for n in &names {
            c.inc(n);
        }
        let seen: Vec<&str> = c.iter().map(|(n, _)| n).collect();
        assert_eq!(seen, names, "creation order survives indexed lookup");
        assert_eq!(c.get("zeta"), 2);
        assert_eq!(c.get("last"), 6);
    }

    #[test]
    fn series_count_above_and_max() {
        let mut ts = TimeSeries::new();
        for (i, v) in [1.0, 10.0, 3.0, 12.0].iter().enumerate() {
            ts.record(SimTime::from_nanos(i as u64), *v);
        }
        assert_eq!(ts.count_above(5.0), 2);
        assert_eq!(ts.max(), Some(12.0));
        assert_eq!(ts.len(), 4);
    }

    #[test]
    fn series_window_mean() {
        let mut ts = TimeSeries::new();
        ts.record(SimTime::from_nanos(0), 2.0);
        ts.record(SimTime::from_nanos(10), 4.0);
        ts.record(SimTime::from_nanos(20), 100.0);
        let m = ts.mean_in_window(SimTime::ZERO, SimTime::from_nanos(20));
        assert_eq!(m, Some(3.0));
        assert_eq!(
            ts.mean_in_window(SimTime::from_nanos(30), SimTime::from_nanos(40)),
            None
        );
    }

    #[test]
    fn series_sorted_orders_by_time() {
        let mut ts = TimeSeries::new();
        ts.record(SimTime::from_nanos(20), 1.0);
        ts.record(SimTime::from_nanos(10), 2.0);
        let s = ts.sorted();
        assert_eq!(s[0], (SimTime::from_nanos(10), 2.0));
        assert_eq!(s[1], (SimTime::from_nanos(20), 1.0));
    }

    #[test]
    fn counters_accumulate() {
        let mut c = Counters::new();
        c.inc("tx");
        c.add("tx", 4);
        c.inc("drop");
        assert_eq!(c.get("tx"), 5);
        assert_eq!(c.get("drop"), 1);
        assert_eq!(c.get("missing"), 0);
        assert_eq!(c.iter().count(), 2);
    }

    #[test]
    fn record_dur_stores_microseconds() {
        let mut ts = TimeSeries::new();
        ts.record_dur(SimTime::ZERO, SimDuration::from_micros(250));
        assert_eq!(ts.samples()[0].1, 250.0);
    }
}
