//! Property tests for the discrete-event engine's ordering invariants.

use l25gc_sim::{Engine, SimTime};
use proptest::prelude::*;

proptest! {
    /// Events always execute in nondecreasing time order, with ties broken
    /// by scheduling order, regardless of the order they were submitted in.
    #[test]
    fn execution_order_is_time_then_seq(times in proptest::collection::vec(0u64..10_000, 1..200)) {
        #[derive(Default)]
        struct W { ran: Vec<(u64, usize)> }

        let mut eng = Engine::new(0, W::default());
        for (i, &t) in times.iter().enumerate() {
            eng.schedule_at(SimTime::from_nanos(t), move |w: &mut W, c| {
                w.ran.push((c.now().as_nanos(), i));
            });
        }
        eng.run();

        let ran = &eng.world().ran;
        prop_assert_eq!(ran.len(), times.len());
        for pair in ran.windows(2) {
            let (t0, i0) = pair[0];
            let (t1, i1) = pair[1];
            prop_assert!(t0 <= t1);
            if t0 == t1 {
                // Same instant: earlier-scheduled index runs first.
                prop_assert!(i0 < i1);
            }
        }
        // Each event observes its own scheduled time.
        for &(t, i) in ran {
            prop_assert_eq!(t, times[i]);
        }
    }

    /// Cancelling an arbitrary subset removes exactly that subset.
    #[test]
    fn cancellation_is_exact(
        times in proptest::collection::vec(0u64..1_000, 1..100),
        cancel_mask in proptest::collection::vec(any::<bool>(), 100),
    ) {
        #[derive(Default)]
        struct W { ran: Vec<usize> }

        let mut eng = Engine::new(0, W::default());
        let mut ids = Vec::new();
        for (i, &t) in times.iter().enumerate() {
            let id = eng.schedule_at(SimTime::from_nanos(t), move |w: &mut W, _| {
                w.ran.push(i);
            });
            ids.push(id);
        }
        let mut expect: Vec<usize> = Vec::new();
        for (i, id) in ids.iter().enumerate() {
            if cancel_mask[i] {
                eng.cancel(*id);
            } else {
                expect.push(i);
            }
        }
        eng.run();
        let mut ran = eng.world().ran.clone();
        ran.sort_unstable();
        prop_assert_eq!(ran, expect);
    }

    /// run_until never executes an event past the deadline, and a
    /// subsequent full run executes exactly the remainder.
    #[test]
    fn run_until_partitions_cleanly(
        times in proptest::collection::vec(0u64..10_000, 1..100),
        deadline in 0u64..10_000,
    ) {
        #[derive(Default)]
        struct W { ran: Vec<u64> }

        let mut eng = Engine::new(0, W::default());
        for &t in &times {
            eng.schedule_at(SimTime::from_nanos(t), move |w: &mut W, c| {
                w.ran.push(c.now().as_nanos());
            });
        }
        eng.run_until(SimTime::from_nanos(deadline));
        let before = eng.world().ran.len();
        prop_assert!(eng.world().ran.iter().all(|&t| t <= deadline));
        let expected_before = times.iter().filter(|&&t| t <= deadline).count();
        prop_assert_eq!(before, expected_before);
        eng.run();
        prop_assert_eq!(eng.world().ran.len(), times.len());
    }
}
