//! Ablations of the design choices DESIGN.md §6 calls out.

use std::time::Instant;

use l25gc_classifier::{
    Classifier, Field, FieldRange, Generator, PacketKey, PartitionSort, PdrRule, Profile,
    TupleSpace,
};
use l25gc_core::Deployment;
use l25gc_nfv::{Manager, NfState};
use l25gc_resilience::UeAwareLb;
use l25gc_sim::{Engine, SimDuration, SimTime};

use crate::world::World;

// ---------------------------------------------------------------------
// 1. Tuple-space explosion DoS (§3.4: "PartitionSort helps to avoid
//    TSS's vulnerability to DoS attack", citing Csikor et al.)
// ---------------------------------------------------------------------

/// Result of the DoS ablation for one structure.
#[derive(Debug, Clone)]
pub struct DosRow {
    /// Structure name.
    pub structure: &'static str,
    /// Victim lookup latency before the attack (ns).
    pub before_ns: f64,
    /// Victim lookup latency after installing the attack rules (ns).
    pub after_ns: f64,
    /// Slowdown factor.
    pub slowdown: f64,
}

fn measure<C: Classifier>(c: &C, keys: &[PacketKey]) -> f64 {
    let reps = 20_000 / keys.len().max(1) + 1;
    let start = Instant::now();
    for _ in 0..reps {
        for k in keys {
            std::hint::black_box(c.lookup(k));
        }
    }
    start.elapsed().as_nanos() as f64 / (reps * keys.len()) as f64
}

/// An attacker crafts `n_attack` rules that each occupy a fresh TSS
/// tuple (distinct prefix-length combinations), never matching victim
/// traffic — yet every victim lookup must probe every sub-table.
pub fn tss_dos(n_attack: usize) -> Vec<DosRow> {
    // Victim: a normal pinhole rule set + its matching keys.
    let mut gen = Generator::new(31, Profile::Pinholes);
    let victim_rules = gen.rules(100);
    let keys: Vec<PacketKey> = victim_rules.iter().map(|r| gen.matching_key(r)).collect();

    // Attack rules: unique tuples over a disjoint address space.
    let mut atk_gen = Generator::new(32, Profile::TssWorst);
    let attack: Vec<PdrRule> = atk_gen
        .rules(n_attack)
        .into_iter()
        .map(|mut r| {
            r.id += 1_000_000; // keep ids disjoint from the victim's
                               // Highest priority: every lookup must consider the attack
                               // tables before accepting a victim match (the attacker
                               // controls its own rules' priorities). They never match
                               // victim traffic thanks to the disjoint address block.
            r.precedence = 0;
            r.fields[Field::DstIp as usize] = FieldRange::exact(0xdead_0000);
            r
        })
        .collect();

    let mut rows = Vec::new();
    {
        let mut tss = TupleSpace::new();
        for r in &victim_rules {
            tss.insert(r.clone());
        }
        let before = measure(&tss, &keys);
        for r in &attack {
            tss.insert(r.clone());
        }
        let after = measure(&tss, &keys);
        rows.push(DosRow {
            structure: "PDR-TSS",
            before_ns: before,
            after_ns: after,
            slowdown: after / before,
        });
    }
    {
        let mut ps = PartitionSort::new();
        for r in &victim_rules {
            ps.insert(r.clone());
        }
        let before = measure(&ps, &keys);
        for r in &attack {
            ps.insert(r.clone());
        }
        let after = measure(&ps, &keys);
        rows.push(DosRow {
            structure: "PDR-PS",
            before_ns: before,
            after_ns: after,
            slowdown: after / before,
        });
    }
    rows
}

// ---------------------------------------------------------------------
// 2. Checkpoint interval sweep (§3.5.1: periodic vs per-event sync)
// ---------------------------------------------------------------------

/// One sweep point.
#[derive(Debug, Clone)]
pub struct CheckpointRow {
    /// Checkpoint interval (ms).
    pub interval_ms: u64,
    /// Checkpoints taken during the run.
    pub checkpoints: u64,
    /// Entries waiting in the logger at the failure instant (replay
    /// work; bounded by one interval of traffic).
    pub replay_backlog: usize,
    /// Worst packet RTT across the failover (ms).
    pub max_rtt_ms: f64,
    /// Packets lost.
    pub lost: u64,
}

/// Runs a CBR + failover scenario at each checkpoint interval.
pub fn checkpoint_sweep(intervals_ms: &[u64], seed: u64) -> Vec<CheckpointRow> {
    intervals_ms
        .iter()
        .map(|&ms| {
            let mut eng = Engine::new(61 ^ seed, World::new(Deployment::L25gc, 2, 1));
            World::bring_up_ue(&mut eng, 1);
            World::enable_resilience(&mut eng);
            eng.world_mut()
                .res
                .as_mut()
                .expect("harness")
                .policy
                .interval = SimDuration::from_millis(ms);
            eng.schedule_in(SimDuration::ZERO, |w: &mut World, ctx| {
                w.start_cbr(1, 0, 10_000, 200, SimDuration::from_secs(1), ctx);
            });
            // Capture the logger backlog right at the failure instant.
            eng.schedule_in(SimDuration::from_millis(500), |w: &mut World, ctx| {
                let backlog = w.res.as_ref().expect("harness").logger.len();
                w.fail_primary(ctx);
                // Stash the instantaneous backlog where the harness can
                // read it after the run.
                w.ran.counters.add("ablate_backlog", backlog as u64);
            });
            eng.run_with_mailbox();
            let w = eng.world();
            let flow = &w.apps.cbr[0];
            CheckpointRow {
                interval_ms: ms,
                checkpoints: w.res.as_ref().expect("harness").replica.checkpoints,
                replay_backlog: w.ran.counters.get("ablate_backlog") as usize,
                max_rtt_ms: flow.max_rtt().unwrap_or(0.0) / 1000.0,
                lost: flow.lost(),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// 3. Canary rollout (§4)
// ---------------------------------------------------------------------

/// Routing split observed for a canary configuration.
#[derive(Debug, Clone)]
pub struct CanaryRow {
    /// Configured canary weight (%).
    pub weight_pct: u32,
    /// Sessions that landed on the canary out of `total`.
    pub canary_sessions: usize,
    /// Total sessions routed.
    pub total: usize,
}

/// Routes `total` new sessions through the NF manager with a canary SMF
/// at `weight_pct` percent.
pub fn canary_rollout(weight_pct: u32, total: usize) -> CanaryRow {
    const SMF: u32 = 3;
    let mut m = Manager::new();
    m.register(SMF, 30, NfState::Active, SimTime::ZERO); // stable version
    m.register(SMF, 31, NfState::Active, SimTime::ZERO); // canary
    m.set_weight(30, 100 - weight_pct);
    m.set_weight(31, weight_pct);
    let mut rng = l25gc_sim::SimRng::new(4);
    let canary_sessions = (0..total)
        .filter(|_| m.route(SMF, rng.f64()) == Some(31))
        .count();
    CanaryRow {
        weight_pct,
        canary_sessions,
        total,
    }
}

// ---------------------------------------------------------------------
// 4. Multi-unit scaling with the UE-aware LB (§4)
// ---------------------------------------------------------------------

/// Result of the scaling ablation.
#[derive(Debug, Clone)]
pub struct ScalingLbRow {
    /// Number of 5GC units.
    pub units: u32,
    /// Sessions per unit (min, max) after assignment.
    pub min_load: u64,
    /// Highest per-unit load.
    pub max_load: u64,
    /// Re-routes needed when one unit fails.
    pub migrated_on_failure: usize,
}

/// Assigns `ues` sessions across `units` 5GC units, then fails unit 1.
pub fn lb_scaling(units: u32, ues: u64) -> ScalingLbRow {
    let ids: Vec<u32> = (1..=units).collect();
    let mut lb = UeAwareLb::new(&ids);
    for ue in 0..ues {
        lb.route(ue).expect("live unit available");
        // Affinity: repeated routing must not rebalance.
        assert_eq!(lb.route(ue), lb.route(ue));
    }
    let loads: Vec<u64> = ids.iter().map(|&u| lb.load_of(u)).collect();
    lb.mark_failed(1);
    let migrated = lb.migrate(1, 2);
    ScalingLbRow {
        units,
        min_load: *loads.iter().min().expect("non-empty"),
        max_load: *loads.iter().max().expect("non-empty"),
        migrated_on_failure: migrated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tss_dos_slows_tss_far_more_than_ps() {
        let rows = tss_dos(2_000);
        let tss = &rows[0];
        let ps = &rows[1];
        assert!(
            tss.slowdown > 10.0,
            "tuple explosion cripples TSS: {:.1}x",
            tss.slowdown
        );
        assert!(
            ps.slowdown < tss.slowdown / 4.0,
            "PS degrades far less: {:.1}x vs {:.1}x",
            ps.slowdown,
            tss.slowdown
        );
    }

    #[test]
    fn shorter_checkpoints_mean_less_replay() {
        let rows = checkpoint_sweep(&[1, 10, 100], 0);
        assert!(rows[0].checkpoints > rows[2].checkpoints * 5);
        assert!(
            rows[0].replay_backlog < rows[2].replay_backlog,
            "1 ms interval backlog {} < 100 ms backlog {}",
            rows[0].replay_backlog,
            rows[2].replay_backlog
        );
        for r in &rows {
            assert_eq!(r.lost, 0, "replay recovers everything at any interval");
        }
    }

    #[test]
    fn canary_split_tracks_weight() {
        for pct in [5u32, 10, 50] {
            let row = canary_rollout(pct, 10_000);
            let got = row.canary_sessions as f64 / row.total as f64 * 100.0;
            assert!(
                (got - pct as f64).abs() < 2.0,
                "configured {pct}%, observed {got:.1}%"
            );
        }
    }

    #[test]
    fn lb_balances_and_migrates() {
        let row = lb_scaling(4, 1000);
        assert_eq!(row.min_load, 250);
        assert_eq!(row.max_load, 250);
        assert_eq!(row.migrated_on_failure, 250);
    }
}
