//! The §5.4.2 "Estimating Smart Buffering benefit" analysis: Eq 1
//! (packet drops) and Eq 2 (one-way delay) comparing L²5GC's direct
//! handover against 3GPP's hairpin routing.

use l25gc_nfv::cost::CostModel;
use l25gc_sim::SimDuration;

/// Inputs to the Eq 1 / Eq 2 estimate.
#[derive(Debug, Clone, Copy)]
pub struct BufferingScenario {
    /// Handover duration `t_HO` (the paper uses the measured 130 ms).
    pub t_ho: SimDuration,
    /// Downlink rate in packets per second.
    pub dl_pps: f64,
    /// Buffer available at the buffering point (packets): gNB for 3GPP,
    /// UPF for L²5GC.
    pub buffer_pkts: u64,
    /// Propagation delay between UPF and each gNB.
    pub prop: SimDuration,
}

/// Eq 1: packets dropped during the handover.
///
/// `N_drop = DL_rate × t_HO − Q_length` (clamped at zero).
pub fn eq1_drops(s: &BufferingScenario) -> u64 {
    let arriving = (s.dl_pps * s.t_ho.as_secs_f64()).round() as u64;
    arriving.saturating_sub(s.buffer_pkts)
}

/// Eq 2: one-way delay UPF → UE for a buffered packet.
///
/// L²5GC: `t_HO + t_{UPF,GNB_t}`.
/// 3GPP:  `t_HO + t_{UPF,GNB_s} + t_{GNB_s,UPF} + t_{UPF,GNB_t}`.
#[derive(Debug, Clone, Copy)]
pub struct OwdEstimate {
    /// L²5GC's direct delivery delay.
    pub l25gc: SimDuration,
    /// 3GPP's hairpin delivery delay.
    pub threegpp: SimDuration,
}

/// Computes Eq 2 for a scenario.
pub fn eq2_owd(s: &BufferingScenario) -> OwdEstimate {
    OwdEstimate {
        l25gc: s.t_ho + s.prop,
        threegpp: s.t_ho + s.prop * 3,
    }
}

/// One row of the §5.4.2 comparison table.
#[derive(Debug, Clone)]
pub struct SmartBufferingRow {
    /// Case label.
    pub case: &'static str,
    /// Buffer at the buffering point for the 3GPP scheme (source gNB).
    pub gnb_buffer: u64,
    /// Buffer for L²5GC (UPF).
    pub upf_buffer: u64,
    /// Eq 1 drops under 3GPP.
    pub drops_3gpp: u64,
    /// Eq 1 drops under L²5GC.
    pub drops_l25gc: u64,
    /// Eq 2 extra delay of 3GPP over L²5GC (ms).
    pub extra_owd_ms: f64,
}

/// Reproduces the paper's two cases: (i) equal 500-packet buffers;
/// (ii) 1500 at the UPF vs 500 at the gNB.
pub fn smart_buffering_table(cost: &CostModel) -> Vec<SmartBufferingRow> {
    let base = BufferingScenario {
        t_ho: SimDuration::from_millis(130),
        dl_pps: 10_000.0,
        buffer_pkts: 0,
        prop: cost.upf_gnb_prop,
    };
    let mut rows = Vec::new();
    for (case, gnb, upf) in [
        ("case i: equal buffers", 500u64, 500u64),
        ("case ii: bigger UPF buffer", 500, 1500),
    ] {
        let s_gnb = BufferingScenario {
            buffer_pkts: gnb,
            ..base
        };
        let s_upf = BufferingScenario {
            buffer_pkts: upf,
            ..base
        };
        let owd = eq2_owd(&base);
        rows.push(SmartBufferingRow {
            case,
            gnb_buffer: gnb,
            upf_buffer: upf,
            drops_3gpp: eq1_drops(&s_gnb),
            drops_l25gc: eq1_drops(&s_upf),
            extra_owd_ms: (owd.threegpp - owd.l25gc).as_millis_f64(),
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_i_equal_buffers_drop_about_800() {
        let rows = smart_buffering_table(&CostModel::paper());
        let i = &rows[0];
        // 10 kpps × 130 ms = 1300 arriving; 500 buffered ⇒ 800 dropped,
        // both schemes (paper: "a similar packet loss of ~800 packets").
        assert_eq!(i.drops_3gpp, 800);
        assert_eq!(i.drops_l25gc, 800);
    }

    #[test]
    fn case_ii_upf_sees_no_loss() {
        let rows = smart_buffering_table(&CostModel::paper());
        let ii = &rows[1];
        assert_eq!(
            ii.drops_l25gc, 0,
            "1500-packet UPF buffer absorbs the burst"
        );
        assert_eq!(ii.drops_3gpp, 800, "gNB still overflows");
    }

    #[test]
    fn hairpin_adds_20ms_owd() {
        let rows = smart_buffering_table(&CostModel::paper());
        // Eq 2 with 10 ms propagation: 3GPP pays 2 extra legs = 20 ms.
        assert!((rows[0].extra_owd_ms - 20.0).abs() < 0.01);
    }

    #[test]
    fn eq1_clamps_at_zero() {
        let s = BufferingScenario {
            t_ho: SimDuration::from_millis(10),
            dl_pps: 100.0,
            buffer_pkts: 10_000,
            prop: SimDuration::from_millis(10),
        };
        assert_eq!(eq1_drops(&s), 0);
    }
}
