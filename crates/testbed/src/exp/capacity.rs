//! Capacity sweep: offered load × deployment over the `l25gc-load`
//! engine — the experiment the paper's evaluation stops short of.
//!
//! For each deployment the sweep first calibrates procedure profiles
//! (driving the real core once per procedure), derives the theoretical
//! shard-limited capacity `C = shards / mean_occupancy`, then runs
//! open-loop load points at fixed fractions of `C`. Each point reports
//! achieved events/s, latency quantiles (p50/p95/p99 from the log2
//! histograms), shed/backpressure counts, and shard utilisation.
//!
//! **Knee detection**: the sustainable rate is the last sweep point that
//! (a) sheds < 1% of arrivals, (b) achieves ≥ 90% of its offered rate,
//! and (c) keeps p99 under 3× the lightest point's p99. Past the knee
//! the open-loop curve does what queueing theory says: latency departs
//! for the asymptote and admission control sheds the excess.

use l25gc_core::Deployment;
use l25gc_load::{
    calibrate, run_open_loop, EventMix, LoadConfig, OverloadPolicy, ProfileSet, ShardConfig,
};
use l25gc_sim::SimDuration;

/// Offered-load fractions of theoretical capacity the sweep visits.
pub const SWEEP_FRACTIONS: [f64; 6] = [0.25, 0.5, 0.75, 0.9, 1.0, 1.2];

/// One sweep point.
#[derive(Debug, Clone)]
pub struct CapacityPoint {
    /// Offered load, events/s.
    pub offered_eps: f64,
    /// Completed events/s within the horizon.
    pub achieved_eps: f64,
    /// Median latency, ms.
    pub p50_ms: f64,
    /// 95th percentile, ms.
    pub p95_ms: f64,
    /// 99th percentile, ms.
    pub p99_ms: f64,
    /// Percent of arrivals shed or backpressured.
    pub loss_pct: f64,
    /// Attached UEs at the end of the run.
    pub active_ues: usize,
    /// Mean shard CPU utilisation.
    pub utilisation: f64,
    /// Deepest shard queue observed.
    pub peak_depth: usize,
}

/// One deployment's full load-latency curve.
#[derive(Debug, Clone)]
pub struct CapacityCurve {
    /// The deployment swept.
    pub deployment: Deployment,
    /// Theoretical shard-limited capacity, events/s.
    pub capacity_eps: f64,
    /// Mean per-procedure shard occupancy, ms (from calibration).
    pub mean_occupancy_ms: f64,
    /// The sweep points, in [`SWEEP_FRACTIONS`] order.
    pub points: Vec<CapacityPoint>,
    /// Index into `points` of the detected knee.
    pub knee: usize,
}

impl CapacityCurve {
    /// The sustainable events/s: achieved rate at the knee.
    pub fn sustainable_eps(&self) -> f64 {
        self.points[self.knee].achieved_eps
    }

    /// p99 at the knee, ms.
    pub fn knee_p99_ms(&self) -> f64 {
        self.points[self.knee].p99_ms
    }
}

/// Sweep parameters (CLI-settable).
#[derive(Debug, Clone, Copy)]
pub struct CapacityParams {
    /// Fleet size per run.
    pub ues: usize,
    /// Worker shards.
    pub shards: u16,
    /// Horizon per sweep point, seconds.
    pub duration_s: f64,
    /// Master seed.
    pub seed: u64,
}

impl Default for CapacityParams {
    fn default() -> CapacityParams {
        CapacityParams {
            ues: 1_000_000,
            shards: 4,
            duration_s: 10.0,
            seed: 0,
        }
    }
}

fn shard_cfg(shards: u16) -> ShardConfig {
    ShardConfig {
        shards,
        high_water: 192,
        policy: OverloadPolicy::Shed,
        ring_capacity: 256,
    }
}

/// Sweeps one deployment.
pub fn sweep_deployment(deployment: Deployment, params: &CapacityParams) -> CapacityCurve {
    let profiles: ProfileSet = calibrate(deployment);
    let mix = EventMix::default();
    let occ = profiles.mean_occupancy(&mix.weights);
    let capacity_eps = f64::from(params.shards) / occ.as_secs_f64();

    let mut points = Vec::with_capacity(SWEEP_FRACTIONS.len());
    for (i, frac) in SWEEP_FRACTIONS.iter().enumerate() {
        let cfg = LoadConfig {
            ues: params.ues,
            shard_cfg: shard_cfg(params.shards),
            mix: mix.clone(),
            offered_eps: capacity_eps * frac,
            burst: 1.0,
            duration: SimDuration::from_secs_f64(params.duration_s),
            // Distinct deterministic seed per point (and per deployment,
            // via the calibration-independent mixing below).
            seed: params
                .seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(deployment_tag(deployment))
                .wrapping_add(i as u64),
        };
        let r = run_open_loop(&cfg, &profiles);
        let denom = r.offered.max(1) as f64;
        points.push(CapacityPoint {
            offered_eps: cfg.offered_eps,
            achieved_eps: r.achieved_eps,
            p50_ms: r.p50.as_millis_f64(),
            p95_ms: r.p95.as_millis_f64(),
            p99_ms: r.p99.as_millis_f64(),
            loss_pct: 100.0 * (r.shed + r.backpressure) as f64 / denom,
            active_ues: r.active_ues,
            utilisation: r.busy_fraction,
            peak_depth: r.peak_depth,
        });
    }
    let knee = detect_knee(&points);
    CapacityCurve {
        deployment,
        capacity_eps,
        mean_occupancy_ms: occ.as_millis_f64(),
        points,
        knee,
    }
}

fn deployment_tag(d: Deployment) -> u64 {
    match d {
        Deployment::Free5gc => 101,
        Deployment::OnvmUpf => 202,
        Deployment::L25gc => 303,
    }
}

/// The last point that still behaves: low loss, near-offered throughput,
/// p99 within 3× the lightest point's.
pub fn detect_knee(points: &[CapacityPoint]) -> usize {
    let base_p99 = points.first().map(|p| p.p99_ms).unwrap_or(0.0).max(1e-6);
    let mut knee = 0;
    for (i, p) in points.iter().enumerate() {
        let healthy = p.loss_pct < 1.0
            && p.achieved_eps >= 0.90 * p.offered_eps
            && p.p99_ms <= 3.0 * base_p99;
        if healthy {
            knee = i;
        }
    }
    knee
}

/// The full experiment: Free5GC (kernel/HTTP) vs L²5GC (shm).
pub fn sweep(params: &CapacityParams) -> Vec<CapacityCurve> {
    vec![
        sweep_deployment(Deployment::Free5gc, params),
        sweep_deployment(Deployment::L25gc, params),
    ]
}

/// At the baseline's knee-p99 operating budget, the events/s each system
/// sustains — the "equal p99" comparison line.
pub fn equal_p99_comparison(curves: &[CapacityCurve]) -> Option<(f64, f64, f64)> {
    let free = curves
        .iter()
        .find(|c| c.deployment == Deployment::Free5gc)?;
    let l25 = curves.iter().find(|c| c.deployment == Deployment::L25gc)?;
    let budget_ms = free.knee_p99_ms();
    // Highest achieved rate whose p99 fits the budget, per system.
    let best_under = |c: &CapacityCurve| {
        c.points
            .iter()
            .filter(|p| p.p99_ms <= budget_ms && p.loss_pct < 1.0)
            .map(|p| p.achieved_eps)
            .fold(0.0f64, f64::max)
    };
    Some((budget_ms, best_under(free), best_under(l25)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_params() -> CapacityParams {
        CapacityParams {
            ues: 20_000,
            shards: 4,
            duration_s: 5.0,
            seed: 0,
        }
    }

    #[test]
    fn sweep_produces_curves_with_knees() {
        let curves = sweep(&small_params());
        assert_eq!(curves.len(), 2);
        for c in &curves {
            assert_eq!(c.points.len(), SWEEP_FRACTIONS.len());
            assert!(c.capacity_eps > 0.0);
            assert!(c.knee < c.points.len());
            // The lightest point must be healthy; the knee can't be 0
            // unless everything past it overloaded.
            assert!(c.points[0].loss_pct < 1.0, "{:?}", c.deployment);
            // Latency is monotone-ish: the heaviest point's p99 is at
            // least the lightest point's.
            let first = c.points.first().unwrap().p99_ms;
            let last = c.points.last().unwrap().p99_ms;
            assert!(last >= first * 0.99, "{:?}: {first} → {last}", c.deployment);
        }
    }

    #[test]
    fn l25gc_sustains_strictly_more_than_free5gc_at_equal_p99() {
        let curves = sweep(&small_params());
        let (budget, free_eps, l25_eps) =
            equal_p99_comparison(&curves).expect("both curves present");
        assert!(budget > 0.0);
        assert!(
            l25_eps > free_eps,
            "L25GC {l25_eps} must beat free5GC {free_eps} at p99 ≤ {budget} ms"
        );
    }

    #[test]
    fn sweep_is_deterministic_per_seed() {
        let a = sweep(&small_params());
        let b = sweep(&small_params());
        for (ca, cb) in a.iter().zip(&b) {
            for (pa, pb) in ca.points.iter().zip(&cb.points) {
                assert_eq!(pa.achieved_eps, pb.achieved_eps);
                assert_eq!(pa.p99_ms, pb.p99_ms);
                assert_eq!(pa.loss_pct, pb.loss_pct);
            }
            assert_eq!(ca.knee, cb.knee);
        }
    }
}
