//! Capacity sweep: offered load × deployment over the `l25gc-load`
//! engine — the experiment the paper's evaluation stops short of.
//!
//! For each deployment the sweep first calibrates procedure profiles
//! (driving the real core once per procedure), derives the theoretical
//! shard-limited capacity `C = shards / mean_occupancy`, then runs
//! open-loop load points at fixed fractions of `C`. Each point reports
//! achieved events/s, latency quantiles (p50/p95/p99 from the log2
//! histograms), shed/backpressure counts, and shard utilisation.
//!
//! The sweep runs on either [`ExecBackend`]: `Analytic` (the default) is
//! seed-deterministic and produces the published byte-identical tables;
//! `Threaded` executes each point on one OS thread per shard over real
//! SPSC rings and additionally reports wall-clock sustained events/s
//! ([`CapacityPoint::wall_eps`]).
//!
//! **Knee detection**: the sustainable rate is the last sweep point that
//! (a) sheds < 1% of arrivals, (b) achieves ≥ 90% of its offered rate,
//! and (c) keeps p99 under 3× the lightest point's p99. Past the knee
//! the open-loop curve does what queueing theory says: latency departs
//! for the asymptote and admission control sheds the excess.
//!
//! Satellite studies share the calibration machinery:
//! [`burst_policy_table`] crosses MMPP-2 burstiness against the
//! admission policy at a fixed near-knee operating point;
//! [`shard_scaling`] walks shard counts and compares analytic
//! achieved-rate scaling against the threaded backend's wall-clock
//! sustained rate; [`closed_loop_table`] sweeps the closed-loop worker
//! population.

use l25gc_core::Deployment;
use l25gc_load::{
    calibrate, Driver, EventMix, ExecBackend, LoadConfig, LoadConfigBuilder, LoadReport,
    OverloadPolicy, ProfileSet, ShardConfig, WaitStrategy,
};
use l25gc_obs::{Log2Histogram, MetricsTimeline, TraceBundle};
use l25gc_sim::SimDuration;

/// Offered-load fractions of theoretical capacity the sweep visits.
pub const SWEEP_FRACTIONS: [f64; 6] = [0.25, 0.5, 0.75, 0.9, 1.0, 1.2];

/// Burstiness ratios the MMPP study crosses with the admission policy.
pub const BURST_LEVELS: [f64; 4] = [1.0, 2.0, 4.0, 8.0];

/// One sweep point.
#[derive(Debug, Clone)]
pub struct CapacityPoint {
    /// Offered load, events/s.
    pub offered_eps: f64,
    /// Completed events/s within the horizon.
    pub achieved_eps: f64,
    /// Median latency, ms.
    pub p50_ms: f64,
    /// 95th percentile, ms.
    pub p95_ms: f64,
    /// 99th percentile, ms.
    pub p99_ms: f64,
    /// 99th percentile of the queue-wait stage (arrival → service), ms.
    pub queue_wait_p99_ms: f64,
    /// 99th percentile of the service stage (shard occupancy), ms.
    pub service_p99_ms: f64,
    /// 99th percentile of the completion-transit stage, ms.
    pub transit_p99_ms: f64,
    /// Percent of arrivals shed or backpressured.
    pub loss_pct: f64,
    /// Attached UEs at the end of the run.
    pub active_ues: usize,
    /// Mean shard CPU utilisation.
    pub utilisation: f64,
    /// Per-shard CPU-busy fraction over the horizon (0..1) — the
    /// utilization anatomy behind the mean above, comparable across
    /// backends.
    pub shard_utilization: Vec<f64>,
    /// Deepest shard queue observed.
    pub peak_depth: usize,
    /// Wall-clock sustained events/s (threaded backend only).
    pub wall_eps: Option<f64>,
}

impl CapacityPoint {
    fn from_report(offered_eps: f64, r: &LoadReport) -> CapacityPoint {
        let denom = r.offered.max(1) as f64;
        CapacityPoint {
            offered_eps,
            achieved_eps: r.achieved_eps,
            p50_ms: r.p50.as_millis_f64(),
            p95_ms: r.p95.as_millis_f64(),
            p99_ms: r.p99.as_millis_f64(),
            queue_wait_p99_ms: r.queue_wait_p99.as_millis_f64(),
            service_p99_ms: r.service_p99.as_millis_f64(),
            transit_p99_ms: r.transit_p99.as_millis_f64(),
            loss_pct: 100.0 * (r.shed + r.backpressure) as f64 / denom,
            active_ues: r.active_ues,
            utilisation: r.busy_fraction,
            shard_utilization: r.shard_utilization.clone(),
            peak_depth: r.peak_depth,
            wall_eps: r.wall.map(|w| w.sustained_eps),
        }
    }
}

/// One deployment's full load-latency curve.
#[derive(Debug, Clone)]
pub struct CapacityCurve {
    /// The deployment swept.
    pub deployment: Deployment,
    /// Theoretical shard-limited capacity, events/s.
    pub capacity_eps: f64,
    /// Mean per-procedure shard occupancy, ms (from calibration).
    pub mean_occupancy_ms: f64,
    /// The sweep points, in [`SWEEP_FRACTIONS`] order.
    pub points: Vec<CapacityPoint>,
    /// Index into `points` of the detected knee.
    pub knee: usize,
    /// Per-point metrics timelines, in [`SWEEP_FRACTIONS`] order
    /// (empty unless [`CapacityParams::metrics_interval_ms`] is set).
    pub timelines: Vec<MetricsTimeline>,
    /// Sampled spans/events of the knee point, ready for the
    /// Chrome-trace exporter (`None` unless
    /// [`CapacityParams::trace_sample`] is set).
    pub knee_trace: Option<TraceBundle>,
}

impl CapacityCurve {
    /// The sustainable events/s: achieved rate at the knee.
    pub fn sustainable_eps(&self) -> f64 {
        self.points[self.knee].achieved_eps
    }

    /// p99 at the knee, ms.
    pub fn knee_p99_ms(&self) -> f64 {
        self.points[self.knee].p99_ms
    }

    /// Which shard saturated: index and busy fraction of the busiest
    /// shard at the knee point.
    pub fn peak_shard_at_knee(&self) -> (u16, f64) {
        super::scenario::peak_shard_util(&self.points[self.knee].shard_utilization)
    }
}

/// Sweep parameters (CLI-settable).
#[derive(Debug, Clone)]
pub struct CapacityParams {
    /// Fleet size per run.
    pub ues: usize,
    /// Worker shards.
    pub shards: u16,
    /// Horizon per sweep point, seconds.
    pub duration_s: f64,
    /// Master seed.
    pub seed: u64,
    /// Execution engine for each sweep point.
    pub backend: ExecBackend,
    /// MMPP-2 burstiness ratio (1.0 = Poisson).
    pub burst: f64,
    /// When set, [`closed_loop_table`] sweeps up to this many workers.
    pub workers: Option<usize>,
    /// Closed-loop mean think time, ms.
    pub think_ms: f64,
    /// When set, every run carries a per-shard metrics timeline
    /// snapshotting at this interval.
    pub metrics_interval_ms: Option<f64>,
    /// Span sampling stride: keep every Nth UE's spans (0 = off).
    pub trace_sample: u64,
    /// Pin threaded workers (and the dispatcher, when a core is spare)
    /// to distinct physical cores. Best-effort; ignored by the analytic
    /// backend.
    pub pin: bool,
    /// Wait strategy for threaded-backend poll loops.
    pub wait: WaitStrategy,
    /// How many times [`shard_scaling`] reruns each threaded point to
    /// estimate the mean ± CV of wall-clock `sustained_eps` (min 1).
    pub repeats: usize,
    /// Staged-dispatch burst size for the threaded backend (1 =
    /// per-event dispatch). Virtual-time results are identical at every
    /// size when unshed; only the wall-clock columns move.
    pub dispatch_batch: usize,
    /// Serve a live `GET /metrics` endpoint on this address while the
    /// sweep runs (requires [`CapacityParams::metrics_interval_ms`];
    /// silently unused without it). All sweep points publish into one
    /// shared server keyed by this requested address.
    pub serve_metrics: Option<String>,
}

impl Default for CapacityParams {
    fn default() -> CapacityParams {
        CapacityParams {
            ues: 1_000_000,
            shards: 4,
            duration_s: 10.0,
            seed: 0,
            backend: ExecBackend::Analytic,
            burst: 1.0,
            workers: None,
            think_ms: 10.0,
            metrics_interval_ms: None,
            trace_sample: 0,
            pin: false,
            wait: WaitStrategy::default(),
            repeats: 1,
            dispatch_batch: 1,
            serve_metrics: None,
        }
    }
}

fn shard_cfg(shards: u16) -> ShardConfig {
    ShardConfig {
        shards,
        high_water: 192,
        policy: OverloadPolicy::Shed,
        ring_capacity: 256,
    }
}

/// Distinct deterministic seed per point (and per deployment, via the
/// calibration-independent tag), preserved exactly from the original
/// sweep so analytic output stays byte-identical across releases.
fn point_seed(params: &CapacityParams, deployment: Deployment, i: usize) -> u64 {
    params
        .seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(deployment_tag(deployment))
        .wrapping_add(i as u64)
}

fn base_builder(params: &CapacityParams, mix: &EventMix) -> LoadConfigBuilder {
    let mut b = LoadConfig::builder()
        .ues(params.ues)
        .shard_cfg(shard_cfg(params.shards))
        .mix(mix.clone())
        .burst(params.burst)
        .duration(SimDuration::from_secs_f64(params.duration_s))
        .backend(params.backend)
        .trace_sample(params.trace_sample)
        .pin(params.pin)
        .wait(params.wait)
        .dispatch_batch(params.dispatch_batch.max(1));
    if let Some(ms) = params.metrics_interval_ms {
        b = b.metrics_interval(SimDuration::from_secs_f64(ms / 1e3));
        // A live endpoint needs windows to publish, so it rides the
        // interval's presence.
        if let Some(addr) = &params.serve_metrics {
            b = b.serve_metrics(addr.clone());
        }
    }
    b
}

fn run(cfg: LoadConfig, profiles: &ProfileSet) -> LoadReport {
    Driver::new(cfg)
        .expect("capacity sweep builds valid configs")
        .run(profiles)
}

/// Sweeps one deployment.
pub fn sweep_deployment(deployment: Deployment, params: &CapacityParams) -> CapacityCurve {
    let profiles: ProfileSet = calibrate(deployment);
    let mix = EventMix::default();
    let occ = profiles.mean_occupancy(&mix.weights);
    let capacity_eps = f64::from(params.shards) / occ.as_secs_f64();

    let mut points = Vec::with_capacity(SWEEP_FRACTIONS.len());
    let mut timelines = Vec::new();
    let mut traces = Vec::new();
    for (i, frac) in SWEEP_FRACTIONS.iter().enumerate() {
        let offered = capacity_eps * frac;
        let cfg = base_builder(params, &mix)
            .offered_eps(offered)
            .seed(point_seed(params, deployment, i))
            .build()
            .expect("sweep point config is valid");
        let mut r = run(cfg, &profiles);
        points.push(CapacityPoint::from_report(offered, &r));
        if let Some(tl) = r.timeline.take() {
            timelines.push(tl);
        }
        if params.trace_sample > 0 {
            let mut bundle = TraceBundle::new();
            r.obs.drain_into(&mut bundle);
            bundle.sort();
            traces.push(bundle);
        }
    }
    let knee = detect_knee(&points);
    let knee_trace = if traces.is_empty() {
        None
    } else {
        Some(traces.swap_remove(knee))
    };
    CapacityCurve {
        deployment,
        capacity_eps,
        mean_occupancy_ms: occ.as_millis_f64(),
        points,
        knee,
        timelines,
        knee_trace,
    }
}

fn deployment_tag(d: Deployment) -> u64 {
    match d {
        Deployment::Free5gc => 101,
        Deployment::OnvmUpf => 202,
        Deployment::L25gc => 303,
    }
}

/// Batch sizes the staged-dispatch ladder visits.
pub const DISPATCH_BATCHES: [usize; 4] = [1, 8, 32, 128];

/// Offered rate the dispatch ladder drives, events/s. Deliberately far
/// past the calibrated shard capacity: the open-loop dispatcher replays
/// virtual arrivals at wall speed, so a saturating rate makes the
/// dispatch plane itself — routing, staging, ring crossings, wakeups —
/// the wall-clock bottleneck, and gives staged bursts arrival gaps
/// tight enough to genuinely fill every configured batch size instead
/// of deadline-flushing singles.
pub const DISPATCH_OFFERED_EPS: f64 = 20_000.0;

/// Reruns one threaded L25GC point at every batch size in
/// [`DISPATCH_BATCHES`], holding seed and offered load
/// ([`DISPATCH_OFFERED_EPS`]) fixed. The runs use the Queue policy with
/// wide rings so admission control — which reads *wall-clock* ring
/// occupancy — never engages: that is what makes every virtual-time
/// column byte-identical across the ladder (the latency columns are
/// backlog-dominated by construction — this is a dispatcher stress, not
/// a latency claim), leaving [`CapacityPoint::wall_eps`] as the only
/// column batching is allowed to move.
pub fn dispatch_ladder(params: &CapacityParams) -> Vec<(usize, CapacityPoint)> {
    let deployment = Deployment::L25gc;
    let profiles: ProfileSet = calibrate(deployment);
    let mix = EventMix::default();
    let offered = DISPATCH_OFFERED_EPS;
    DISPATCH_BATCHES
        .iter()
        .map(|&batch| {
            let cfg = LoadConfig::builder()
                .ues(params.ues)
                .shard_cfg(ShardConfig {
                    shards: params.shards,
                    high_water: 1 << 14,
                    policy: OverloadPolicy::Queue,
                    ring_capacity: 1 << 15,
                })
                .mix(mix.clone())
                .burst(params.burst)
                .offered_eps(offered)
                .duration(SimDuration::from_secs_f64(params.duration_s))
                .seed(point_seed(params, deployment, 0))
                .backend(ExecBackend::Threaded)
                .pin(params.pin)
                .wait(params.wait)
                .dispatch_batch(batch)
                .build()
                .expect("dispatch ladder config is valid");
            let point = CapacityPoint::from_report(offered, &run(cfg, &profiles));
            (batch, point)
        })
        .collect()
}

/// The last point that still behaves: low loss, near-offered throughput,
/// p99 within 3× the lightest point's.
pub fn detect_knee(points: &[CapacityPoint]) -> usize {
    let base_p99 = points.first().map(|p| p.p99_ms).unwrap_or(0.0).max(1e-6);
    let mut knee = 0;
    for (i, p) in points.iter().enumerate() {
        let healthy = p.loss_pct < 1.0
            && p.achieved_eps >= 0.90 * p.offered_eps
            && p.p99_ms <= 3.0 * base_p99;
        if healthy {
            knee = i;
        }
    }
    knee
}

/// What first pushed a run past its budget inside a window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KneeReason {
    /// Admission control started shedding in this window.
    SheddingStarted,
    /// The window's p99 crossed the latency budget (3× the lightest
    /// sweep point's whole-run p99, the same budget [`detect_knee`] uses).
    P99OverBudget,
}

impl std::fmt::Display for KneeReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            KneeReason::SheddingStarted => "shedding started",
            KneeReason::P99OverBudget => "p99 over budget",
        })
    }
}

/// Where overload first shows *inside* a run, from the per-window
/// timelines — finer-grained than the whole-run-aggregate knee, which
/// can hide a late-run collapse behind healthy whole-run averages.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimelineKnee {
    /// Index into [`CapacityCurve::points`] of the first distressed run.
    pub point: usize,
    /// Window index within that run where distress first appears.
    pub window: usize,
    /// Virtual-time start of that window, seconds into the run.
    pub at_s: f64,
    /// What was detected.
    pub reason: KneeReason,
    /// The window's p99 (ms) when [`KneeReason::P99OverBudget`], or the
    /// window's shed count when [`KneeReason::SheddingStarted`].
    pub value: f64,
}

/// Scans each sweep point's [`MetricsTimeline`] in offered-load order
/// for the first window where shedding starts or the windowed p99
/// (merged across shards) crosses the budget. Returns `None` when the
/// sweep carried no timelines or every window stayed healthy.
pub fn timeline_knee(curve: &CapacityCurve) -> Option<TimelineKnee> {
    let budget_ms = 3.0
        * curve
            .points
            .first()
            .map(|p| p.p99_ms)
            .unwrap_or(0.0)
            .max(1e-6);
    for (pi, tl) in curve.timelines.iter().enumerate() {
        let interval_s = tl.interval().as_secs_f64();
        for w in 0..tl.window_count() {
            let mut shed = 0u64;
            let mut lat = Log2Histogram::new();
            for s in 0..tl.shards() {
                if let Some(win) = tl.lane(s).get(w) {
                    shed += win.shed;
                    lat.merge(&win.latency);
                }
            }
            let reason = if shed > 0 {
                Some((KneeReason::SheddingStarted, shed as f64))
            } else if lat.count() > 0 {
                let p99_ms = lat.quantile(0.99) as f64 / 1e6;
                (p99_ms > budget_ms).then_some((KneeReason::P99OverBudget, p99_ms))
            } else {
                None
            };
            if let Some((reason, value)) = reason {
                return Some(TimelineKnee {
                    point: pi,
                    window: w,
                    at_s: w as f64 * interval_s,
                    reason,
                    value,
                });
            }
        }
    }
    None
}

/// Which latency stage dominates the tail past the knee — the anatomy of
/// the knee itself.
///
/// Open-loop overload can blow the tail up two different ways: arrivals
/// stack up behind a busy shard (queue-wait dominates — the classic
/// M/G/1 departure for the asymptote), or the procedure mix itself got
/// slower per event (service dominates — a calibration or profile
/// regression, not congestion). Distinguishing the two from the
/// per-stage p99s turns "p99 went up" into an actionable diagnosis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KneeAnatomy {
    /// Queue-wait p99 exceeds service p99 past the knee: the tail is
    /// congestion, and shedding/backpressure tuning is the lever.
    WaitDominated,
    /// Service p99 is still the bigger stage past the knee: the tail is
    /// the work itself, and only faster procedures move it.
    ServiceDominated,
}

impl std::fmt::Display for KneeAnatomy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            KneeAnatomy::WaitDominated => "wait-dominated",
            KneeAnatomy::ServiceDominated => "service-dominated",
        })
    }
}

/// Classifies the first sweep point past the knee (or the knee point
/// itself when nothing lies past it) by its dominant latency stage.
pub fn knee_anatomy(curve: &CapacityCurve) -> KneeAnatomy {
    let idx = (curve.knee + 1).min(curve.points.len().saturating_sub(1));
    let p = &curve.points[idx];
    if p.queue_wait_p99_ms > p.service_p99_ms {
        KneeAnatomy::WaitDominated
    } else {
        KneeAnatomy::ServiceDominated
    }
}

/// Evaluates `spec` against every per-point timeline the sweep carried,
/// in [`SWEEP_FRACTIONS`] order. Empty when the sweep ran without
/// [`CapacityParams::metrics_interval_ms`].
pub fn slo_reports(curve: &CapacityCurve, spec: &l25gc_obs::SloSpec) -> Vec<l25gc_obs::SloReport> {
    curve
        .timelines
        .iter()
        .map(|tl| l25gc_obs::slo::evaluate(tl, spec))
        .collect()
}

/// The full experiment: Free5GC (kernel/HTTP) vs L²5GC (shm).
pub fn sweep(params: &CapacityParams) -> Vec<CapacityCurve> {
    vec![
        sweep_deployment(Deployment::Free5gc, params),
        sweep_deployment(Deployment::L25gc, params),
    ]
}

/// At the baseline's knee-p99 operating budget, the events/s each system
/// sustains — the "equal p99" comparison line.
pub fn equal_p99_comparison(curves: &[CapacityCurve]) -> Option<(f64, f64, f64)> {
    let free = curves
        .iter()
        .find(|c| c.deployment == Deployment::Free5gc)?;
    let l25 = curves.iter().find(|c| c.deployment == Deployment::L25gc)?;
    let budget_ms = free.knee_p99_ms();
    // Highest achieved rate whose p99 fits the budget, per system.
    let best_under = |c: &CapacityCurve| {
        c.points
            .iter()
            .filter(|p| p.p99_ms <= budget_ms && p.loss_pct < 1.0)
            .map(|p| p.achieved_eps)
            .fold(0.0f64, f64::max)
    };
    Some((budget_ms, best_under(free), best_under(l25)))
}

/// One row of the burstiness × admission-policy study.
#[derive(Debug, Clone)]
pub struct BurstPolicyRow {
    /// MMPP-2 high/low rate ratio (1.0 = Poisson).
    pub burst: f64,
    /// Admission policy past the high-water mark.
    pub policy: OverloadPolicy,
    /// Achieved events/s.
    pub achieved_eps: f64,
    /// 99th-percentile latency, ms.
    pub p99_ms: f64,
    /// Percent of arrivals shed or backpressured.
    pub loss_pct: f64,
    /// Deepest shard queue observed.
    pub peak_depth: usize,
}

/// Crosses [`BURST_LEVELS`] against Shed/Queue on L²5GC at a fixed
/// near-knee operating point (0.9× capacity, tight high-water mark so
/// bursts actually hit the admission controller). Shows the trade the
/// paper's admission design makes: shedding caps tail latency at the
/// cost of loss; queueing keeps everything at the cost of the tail.
pub fn burst_policy_table(params: &CapacityParams) -> Vec<BurstPolicyRow> {
    let deployment = Deployment::L25gc;
    let profiles = calibrate(deployment);
    let mix = EventMix::default();
    let occ = profiles.mean_occupancy(&mix.weights);
    let capacity_eps = f64::from(params.shards) / occ.as_secs_f64();
    let offered = capacity_eps * 0.9;

    let mut rows = Vec::with_capacity(BURST_LEVELS.len() * 2);
    for (i, &burst) in BURST_LEVELS.iter().enumerate() {
        for policy in [OverloadPolicy::Shed, OverloadPolicy::Queue] {
            let cfg = base_builder(params, &mix)
                .shard_cfg(ShardConfig {
                    shards: params.shards,
                    high_water: 64,
                    policy,
                    ring_capacity: 128,
                })
                .burst(burst)
                .offered_eps(offered)
                .seed(point_seed(params, deployment, 600 + i))
                .build()
                .expect("burst study config is valid");
            let r = run(cfg, &profiles);
            let denom = r.offered.max(1) as f64;
            rows.push(BurstPolicyRow {
                burst,
                policy,
                achieved_eps: r.achieved_eps,
                p99_ms: r.p99.as_millis_f64(),
                loss_pct: 100.0 * (r.shed + r.backpressure) as f64 / denom,
                peak_depth: r.peak_depth,
            });
        }
    }
    rows
}

/// One row of the shard-count scaling study.
#[derive(Debug, Clone)]
pub struct ShardScalingRow {
    /// Shard / worker-thread count.
    pub shards: u16,
    /// Offered load (0.9× that shard count's capacity), events/s.
    pub offered_eps: f64,
    /// Analytic backend's achieved events/s.
    pub analytic_eps: f64,
    /// Analytic p99, ms.
    pub analytic_p99_ms: f64,
    /// Mean wall-clock sustained events/s over
    /// [`CapacityParams::repeats`] threaded reruns of this point.
    pub threaded_wall_eps: f64,
    /// Coefficient of variation of `sustained_eps` across the reruns,
    /// percent (0 when `repeats == 1`). The stability metric pinning and
    /// the adaptive wait ladder exist to drive down.
    pub wall_cv_pct: f64,
    /// Threaded reruns behind the mean ± CV.
    pub repeats: usize,
    /// Threaded backend's achieved (virtual-time) events/s — identical
    /// across reruns, which share the seed.
    pub threaded_eps: f64,
}

/// Mean and coefficient of variation (percent) of a sample.
fn mean_cv_pct(samples: &[f64]) -> (f64, f64) {
    if samples.is_empty() {
        return (0.0, 0.0);
    }
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    if samples.len() < 2 || mean <= 0.0 {
        return (mean, 0.0);
    }
    let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / samples.len() as f64;
    (mean, 100.0 * var.sqrt() / mean)
}

/// Walks doubling shard counts in `[lo, hi]`, running each point on both
/// backends at 0.9× that shard count's capacity: the analytic column is
/// the model's scaling limit, the threaded column is what one OS thread
/// per shard over real SPSC rings actually moves per wall-clock second.
/// Each threaded point reruns [`CapacityParams::repeats`] times (same
/// seed — the virtual workload is identical, only the wall clock
/// varies) and reports mean ± CV of `sustained_eps`.
pub fn shard_scaling(params: &CapacityParams, lo: u16, hi: u16) -> Vec<ShardScalingRow> {
    let deployment = Deployment::L25gc;
    let profiles = calibrate(deployment);
    let mix = EventMix::default();
    let occ = profiles.mean_occupancy(&mix.weights).as_secs_f64();
    let repeats = params.repeats.max(1);

    let mut rows = Vec::new();
    let mut shards = lo.max(1);
    while shards <= hi.max(1) {
        let offered = f64::from(shards) / occ * 0.9;
        let scaled = CapacityParams {
            shards,
            ..params.clone()
        };
        let seed = point_seed(&scaled, deployment, 700 + shards as usize);
        let mk = |backend: ExecBackend| {
            base_builder(&scaled, &mix)
                .backend(backend)
                .offered_eps(offered)
                .seed(seed)
                .build()
                .expect("scaling config is valid")
        };
        let a = run(mk(ExecBackend::Analytic), &profiles);
        let mut walls = Vec::with_capacity(repeats);
        let mut threaded_eps = 0.0;
        for _ in 0..repeats {
            let t = run(mk(ExecBackend::Threaded), &profiles);
            walls.push(t.wall.map(|w| w.sustained_eps).unwrap_or(0.0));
            threaded_eps = t.achieved_eps;
        }
        let (wall_mean, wall_cv_pct) = mean_cv_pct(&walls);
        rows.push(ShardScalingRow {
            shards,
            offered_eps: offered,
            analytic_eps: a.achieved_eps,
            analytic_p99_ms: a.p99.as_millis_f64(),
            threaded_wall_eps: wall_mean,
            wall_cv_pct,
            repeats,
            threaded_eps,
        });
        shards = shards.saturating_mul(2);
    }
    rows
}

/// One row of the closed-loop worker-population sweep.
#[derive(Debug, Clone)]
pub struct ClosedLoopRow {
    /// Concurrent worker count.
    pub workers: usize,
    /// Achieved events/s.
    pub achieved_eps: f64,
    /// Median latency, ms.
    pub p50_ms: f64,
    /// 99th percentile, ms.
    pub p99_ms: f64,
    /// Mean shard CPU utilisation.
    pub utilisation: f64,
    /// Wall-clock sustained events/s (threaded backend only).
    pub wall_eps: Option<f64>,
}

/// Sweeps the closed-loop worker population over [`SWEEP_FRACTIONS`] of
/// `max_workers`: throughput self-limits, so instead of a knee the curve
/// shows saturation — added workers stop buying events/s once the shards
/// are busy.
pub fn closed_loop_table(params: &CapacityParams, max_workers: usize) -> Vec<ClosedLoopRow> {
    let deployment = Deployment::L25gc;
    let profiles = calibrate(deployment);
    let mix = EventMix::default();
    let think = SimDuration::from_secs_f64(params.think_ms.max(0.001) / 1e3);

    let mut rows = Vec::with_capacity(SWEEP_FRACTIONS.len());
    for (i, frac) in SWEEP_FRACTIONS.iter().enumerate() {
        let workers = ((max_workers as f64 * frac).round() as usize).max(1);
        let cfg = base_builder(params, &mix)
            .closed_loop(workers, think)
            .seed(point_seed(params, deployment, 800 + i))
            .build()
            .expect("closed-loop config is valid");
        let r = run(cfg, &profiles);
        rows.push(ClosedLoopRow {
            workers,
            achieved_eps: r.achieved_eps,
            p50_ms: r.p50.as_millis_f64(),
            p99_ms: r.p99.as_millis_f64(),
            utilisation: r.busy_fraction,
            wall_eps: r.wall.map(|w| w.sustained_eps),
        });
    }
    rows
}

/// The saturation point a [`saturation_search`] converged on.
#[derive(Debug, Clone, Copy)]
pub struct SaturationPoint {
    /// Smallest closed-loop worker count on the throughput plateau.
    pub workers: usize,
    /// Achieved events/s at that count.
    pub achieved_eps: f64,
    /// p99 latency at that count, ms.
    pub p99_ms: f64,
    /// Mean shard CPU utilisation at that count.
    pub utilisation: f64,
    /// Closed-loop runs the search spent converging.
    pub probes: usize,
}

/// Closed-loop saturation search on L25GC: instead of sweeping fixed
/// fractions of a guessed maximum, find the worker count where achieved
/// events/s plateaus. Doubling probes climb until a doubling buys < 2%
/// more throughput (or `max_workers` is hit); a binary search then pins
/// the smallest count achieving ≥ 98% of the plateau rate. Deterministic:
/// each worker count probes with a seed derived from the count, so
/// re-probing a count replays the identical run.
pub fn saturation_search(params: &CapacityParams, max_workers: usize) -> SaturationPoint {
    let deployment = Deployment::L25gc;
    let profiles = calibrate(deployment);
    let mix = EventMix::default();
    let think = SimDuration::from_secs_f64(params.think_ms.max(0.001) / 1e3);
    let max_workers = max_workers.max(1);

    let mut cache: Vec<(usize, SaturationPoint)> = Vec::new();
    let mut probes = 0usize;
    let mut probe = |workers: usize, probes: &mut usize| -> SaturationPoint {
        if let Some((_, p)) = cache.iter().find(|(w, _)| *w == workers) {
            return *p;
        }
        *probes += 1;
        let cfg = base_builder(params, &mix)
            .closed_loop(workers, think)
            .seed(point_seed(params, deployment, 2_000 + workers))
            .build()
            .expect("saturation probe config is valid");
        let r = run(cfg, &profiles);
        let p = SaturationPoint {
            workers,
            achieved_eps: r.achieved_eps,
            p99_ms: r.p99.as_millis_f64(),
            utilisation: r.busy_fraction,
            probes: 0,
        };
        cache.push((workers, p));
        p
    };

    // Exponential climb: stop when a doubling buys < 2%.
    const PLATEAU_GAIN: f64 = 1.02;
    let mut below = probe(1, &mut probes);
    let mut lo = 1usize;
    let mut hi = lo;
    while hi < max_workers {
        let next = (hi * 2).min(max_workers);
        let p = probe(next, &mut probes);
        if p.achieved_eps < below.achieved_eps * PLATEAU_GAIN {
            hi = next;
            break;
        }
        lo = next;
        below = p;
        hi = next;
    }
    // The plateau rate is the best seen; binary search for the smallest
    // count in (lo, hi] achieving 98% of it. If the climb never
    // plateaued, lo == hi == max_workers and the loop is skipped.
    let plateau_eps = below.achieved_eps.max(probe(hi, &mut probes).achieved_eps);
    let target = 0.98 * plateau_eps;
    let (mut lo, mut hi) = (lo, hi);
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if probe(mid, &mut probes).achieved_eps >= target {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    let found = if probe(lo, &mut probes).achieved_eps >= target {
        lo
    } else {
        hi
    };
    let mut result = probe(found, &mut probes);
    result.probes = probes;
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_params() -> CapacityParams {
        CapacityParams {
            ues: 20_000,
            shards: 4,
            duration_s: 5.0,
            seed: 0,
            ..CapacityParams::default()
        }
    }

    #[test]
    fn sweep_produces_curves_with_knees() {
        let curves = sweep(&small_params());
        assert_eq!(curves.len(), 2);
        for c in &curves {
            assert_eq!(c.points.len(), SWEEP_FRACTIONS.len());
            assert!(c.capacity_eps > 0.0);
            assert!(c.knee < c.points.len());
            // The lightest point must be healthy; the knee can't be 0
            // unless everything past it overloaded.
            assert!(c.points[0].loss_pct < 1.0, "{:?}", c.deployment);
            // Latency is monotone-ish: the heaviest point's p99 is at
            // least the lightest point's.
            let first = c.points.first().unwrap().p99_ms;
            let last = c.points.last().unwrap().p99_ms;
            assert!(last >= first * 0.99, "{:?}: {first} → {last}", c.deployment);
            // Analytic points carry no wall-clock column.
            assert!(c.points.iter().all(|p| p.wall_eps.is_none()));
            // Every point reports its stage anatomy, and the stages can
            // never exceed the end-to-end tail they decompose.
            for p in &c.points {
                assert!(p.service_p99_ms > 0.0, "service stage always runs");
                assert!(p.queue_wait_p99_ms <= p.p99_ms + 1e-9);
                assert!(p.service_p99_ms <= p.p99_ms + 1e-9);
            }
            // Past the knee the tail must be congestion, not slower
            // procedures: the sweep holds the profiles fixed.
            assert_eq!(knee_anatomy(c), KneeAnatomy::WaitDominated);
            // Utilization anatomy: one busy fraction per shard at every
            // point, and the knee names its busiest shard.
            for p in &c.points {
                assert_eq!(p.shard_utilization.len(), 4, "{:?}", c.deployment);
                assert!(p.shard_utilization.iter().all(|&u| u > 0.0 && u <= 1.0));
            }
            let (peak_shard, peak_util) = c.peak_shard_at_knee();
            assert!(peak_shard < 4);
            assert_eq!(
                peak_util,
                c.points[c.knee]
                    .shard_utilization
                    .iter()
                    .cloned()
                    .fold(0.0, f64::max)
            );
        }
    }

    #[test]
    fn slo_reports_cover_every_sweep_point_and_find_the_overload() {
        let params = CapacityParams {
            ues: 20_000,
            duration_s: 2.0,
            metrics_interval_ms: Some(100.0),
            ..small_params()
        };
        let curve = sweep_deployment(Deployment::L25gc, &params);
        // A budget at the lightest point's whole-run p99: light points
        // hold it, the 1.2× point cannot.
        let budget_ns = (curve.points[0].p99_ms * 3.0 * 1e6) as u64;
        let spec = l25gc_obs::SloSpec::new(budget_ns.max(1), 0.5);
        let reports = slo_reports(&curve, &spec);
        assert_eq!(reports.len(), SWEEP_FRACTIONS.len());
        let first = &reports[0];
        assert_eq!(first.violating_windows, 0, "lightest point holds the SLO");
        assert_eq!(first.recovery_windows, Some(0));
        let last = reports.last().unwrap();
        assert!(
            last.violating_windows > 0,
            "1.2× capacity must violate the knee budget"
        );
        assert!(last.burn_rate > first.burn_rate);
        // Recovery (or its horizon clamp) is always reportable.
        assert!(last.recovery_ns_or_horizon() > 0);
        // No timelines, no reports.
        let plain = sweep_deployment(Deployment::L25gc, &small_params());
        assert!(slo_reports(&plain, &spec).is_empty());
    }

    #[test]
    fn threaded_points_also_report_stage_anatomy() {
        let params = CapacityParams {
            ues: 10_000,
            duration_s: 1.0,
            backend: ExecBackend::Threaded,
            ..small_params()
        };
        let curve = sweep_deployment(Deployment::L25gc, &params);
        for p in &curve.points {
            assert!(p.service_p99_ms > 0.0, "threaded stage hists merged");
            assert!(p.service_p99_ms <= p.p99_ms + 1e-9);
        }
        assert_eq!(knee_anatomy(&curve), KneeAnatomy::WaitDominated);
    }

    #[test]
    fn l25gc_sustains_strictly_more_than_free5gc_at_equal_p99() {
        let curves = sweep(&small_params());
        let (budget, free_eps, l25_eps) =
            equal_p99_comparison(&curves).expect("both curves present");
        assert!(budget > 0.0);
        assert!(
            l25_eps > free_eps,
            "L25GC {l25_eps} must beat free5GC {free_eps} at p99 ≤ {budget} ms"
        );
    }

    #[test]
    fn sweep_is_deterministic_per_seed() {
        let a = sweep(&small_params());
        let b = sweep(&small_params());
        for (ca, cb) in a.iter().zip(&b) {
            for (pa, pb) in ca.points.iter().zip(&cb.points) {
                assert_eq!(pa.achieved_eps, pb.achieved_eps);
                assert_eq!(pa.p99_ms, pb.p99_ms);
                assert_eq!(pa.loss_pct, pb.loss_pct);
            }
            assert_eq!(ca.knee, cb.knee);
        }
    }

    #[test]
    fn threaded_sweep_reports_wall_clock() {
        let params = CapacityParams {
            ues: 10_000,
            duration_s: 1.0,
            backend: ExecBackend::Threaded,
            ..small_params()
        };
        let curve = sweep_deployment(Deployment::L25gc, &params);
        for p in &curve.points {
            let wall = p.wall_eps.expect("threaded points carry wall stats");
            assert!(wall > 0.0);
        }
    }

    #[test]
    fn sweep_collects_timelines_and_knee_trace_when_requested() {
        let params = CapacityParams {
            ues: 10_000,
            duration_s: 1.0,
            metrics_interval_ms: Some(100.0),
            trace_sample: 64,
            ..small_params()
        };
        let curve = sweep_deployment(Deployment::L25gc, &params);
        assert_eq!(curve.timelines.len(), SWEEP_FRACTIONS.len());
        for (p, tl) in curve.points.iter().zip(&curve.timelines) {
            assert_eq!(tl.shards(), params.shards);
            // Per-window dispatch counts sum back to the point's rate.
            let total = tl.dispatched_total();
            assert!(total > 0, "point at {} eps recorded nothing", p.offered_eps);
            assert!(tl.window_count() >= 9, "1 s / 100 ms windows");
        }
        let trace = curve.knee_trace.as_ref().expect("trace was requested");
        assert!(!trace.spans.is_empty(), "knee point carries sampled spans");
        assert!(trace.spans.iter().all(|s| s.ue % 64 == 0));

        // Off by default: no timelines, no trace.
        let plain = sweep_deployment(Deployment::L25gc, &small_params());
        assert!(plain.timelines.is_empty());
        assert!(plain.knee_trace.is_none());
    }

    #[test]
    fn burstier_arrivals_cost_shed_loss_or_queue_tail() {
        let params = CapacityParams {
            ues: 10_000,
            duration_s: 2.0,
            ..small_params()
        };
        let rows = burst_policy_table(&params);
        assert_eq!(rows.len(), BURST_LEVELS.len() * 2);
        for r in &rows {
            if r.policy == OverloadPolicy::Queue {
                assert_eq!(r.loss_pct, 0.0, "queue policy never sheds at high water");
            }
        }
        // At the burstiest level, queueing pays in tail latency relative
        // to shedding.
        let at = |burst: f64, policy: OverloadPolicy| {
            rows.iter()
                .find(|r| r.burst == burst && r.policy == policy)
                .unwrap()
        };
        let shed8 = at(8.0, OverloadPolicy::Shed);
        let queue8 = at(8.0, OverloadPolicy::Queue);
        assert!(
            queue8.p99_ms >= shed8.p99_ms,
            "queueing tail {} must be >= shedding tail {}",
            queue8.p99_ms,
            shed8.p99_ms
        );
    }

    #[test]
    fn shard_scaling_covers_both_backends() {
        let params = CapacityParams {
            ues: 10_000,
            duration_s: 1.0,
            ..small_params()
        };
        let rows = shard_scaling(&params, 1, 4);
        assert_eq!(rows.len(), 3, "1, 2, 4 shards");
        for r in &rows {
            assert!(r.analytic_eps > 0.0);
            assert!(r.threaded_wall_eps > 0.0);
        }
        // More shards must buy more analytic throughput (offered scales
        // with capacity and the knee sits below it).
        assert!(rows[2].analytic_eps > rows[0].analytic_eps);
    }

    #[test]
    fn shard_scaling_repeats_report_mean_and_cv() {
        let params = CapacityParams {
            ues: 10_000,
            duration_s: 0.5,
            repeats: 3,
            ..small_params()
        };
        let rows = shard_scaling(&params, 1, 2);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert_eq!(r.repeats, 3);
            assert!(r.threaded_wall_eps > 0.0, "mean over reruns");
            assert!(r.wall_cv_pct >= 0.0);
            assert!(
                r.threaded_eps > 0.0,
                "virtual-time rate identical across reruns"
            );
        }
        // repeats = 1 degenerates to a zero CV.
        let single = shard_scaling(
            &CapacityParams {
                repeats: 1,
                ..params
            },
            1,
            1,
        );
        assert_eq!(single[0].wall_cv_pct, 0.0);
    }

    #[test]
    fn mean_cv_handles_degenerate_samples() {
        assert_eq!(mean_cv_pct(&[]), (0.0, 0.0));
        assert_eq!(mean_cv_pct(&[5.0]), (5.0, 0.0));
        let (m, cv) = mean_cv_pct(&[10.0, 10.0, 10.0]);
        assert_eq!((m, cv), (10.0, 0.0));
        let (m, cv) = mean_cv_pct(&[9.0, 11.0]);
        assert_eq!(m, 10.0);
        assert!((cv - 10.0).abs() < 1e-9, "stddev 1 on mean 10 = 10%");
    }

    #[test]
    fn timeline_knee_finds_first_distressed_window() {
        let params = CapacityParams {
            ues: 20_000,
            duration_s: 2.0,
            metrics_interval_ms: Some(100.0),
            ..small_params()
        };
        let curve = sweep_deployment(Deployment::L25gc, &params);
        let knee = timeline_knee(&curve).expect("1.2× capacity point must distress some window");
        assert!(knee.point < curve.points.len());
        assert!(knee.window < curve.timelines[knee.point].window_count());
        // Windows can run past the nominal horizon while in-flight work
        // drains, so only the window-index arithmetic is exact.
        assert!((knee.at_s - knee.window as f64 * 0.1).abs() < 1e-9);
        assert!(knee.value > 0.0);
        // The aggregate knee says "last healthy point"; the timeline knee
        // points at the first *unhealthy* one, so it can't sit before it.
        assert!(
            knee.point >= curve.knee,
            "timeline knee {} vs aggregate {}",
            knee.point,
            curve.knee
        );
        // Without timelines there is nothing to scan.
        let plain = sweep_deployment(Deployment::L25gc, &small_params());
        assert!(timeline_knee(&plain).is_none());
    }

    #[test]
    fn saturation_search_finds_plateau_start() {
        let params = CapacityParams {
            ues: 10_000,
            duration_s: 2.0,
            ..small_params()
        };
        let sat = saturation_search(&params, 256);
        assert!(sat.workers >= 1 && sat.workers <= 256);
        assert!(sat.achieved_eps > 0.0);
        assert!(sat.probes >= 2, "search must actually probe");
        // The found count really is on the plateau: doubling it (within
        // bounds) buys < 5% more throughput.
        let think = SimDuration::from_secs_f64(params.think_ms / 1e3);
        let mix = EventMix::default();
        let profiles = calibrate(Deployment::L25gc);
        let double = (sat.workers * 2).min(256);
        let cfg = base_builder(&params, &mix)
            .closed_loop(double, think)
            .seed(point_seed(&params, Deployment::L25gc, 2_000 + double))
            .build()
            .unwrap();
        let r = run(cfg, &profiles);
        assert!(
            r.achieved_eps <= sat.achieved_eps * 1.05,
            "doubling {} → {} buys {} vs {}",
            sat.workers,
            double,
            r.achieved_eps,
            sat.achieved_eps
        );
        // Deterministic: same params, same answer.
        let again = saturation_search(&params, 256);
        assert_eq!(again.workers, sat.workers);
        assert_eq!(again.achieved_eps, sat.achieved_eps);
    }

    #[test]
    fn closed_loop_table_saturates() {
        let params = CapacityParams {
            ues: 10_000,
            duration_s: 2.0,
            ..small_params()
        };
        let rows = closed_loop_table(&params, 64);
        assert_eq!(rows.len(), SWEEP_FRACTIONS.len());
        assert!(rows.iter().all(|r| r.achieved_eps > 0.0));
        // More workers never reduce throughput by much (self-limiting).
        assert!(rows.last().unwrap().achieved_eps >= rows[0].achieved_eps * 0.9);
    }

    #[test]
    fn dispatch_ladder_moves_only_the_wall_clock_column() {
        let params = CapacityParams {
            ues: 5_000,
            shards: 2,
            duration_s: 1.0,
            ..small_params()
        };
        let ladder = dispatch_ladder(&params);
        assert_eq!(ladder.len(), DISPATCH_BATCHES.len());
        assert_eq!(ladder[0].0, 1, "ladder starts at per-event dispatch");
        let base = &ladder[0].1;
        assert_eq!(base.loss_pct, 0.0, "ladder config must stay unshed");
        for (batch, p) in &ladder {
            // Virtual-time truth is batch-invariant: exact counts and
            // exact quantiles, not tolerances.
            assert_eq!(p.achieved_eps, base.achieved_eps, "batch={batch}");
            assert_eq!(p.p50_ms, base.p50_ms, "batch={batch}");
            assert_eq!(p.p99_ms, base.p99_ms, "batch={batch}");
            assert_eq!(p.queue_wait_p99_ms, base.queue_wait_p99_ms);
            assert_eq!(p.service_p99_ms, base.service_p99_ms);
            assert_eq!(p.loss_pct, 0.0);
            // The threaded backend always reports its wall-clock rate.
            assert!(p.wall_eps.is_some(), "batch={batch}");
        }
    }
}
