//! Fig 7 & Fig 8: control-plane message latency and UE-event completion
//! times across the three deployments.

use l25gc_core::context::UeEvent;
use l25gc_core::msg::{Endpoint, Envelope, Msg};
use l25gc_core::net::handler_cost;
use l25gc_core::Deployment;
use l25gc_pkt::pfcp::{self, IeSet, MsgType};
use l25gc_sim::{Engine, SimDuration};

use crate::world::World;

/// One Fig 7 bar: a single PFCP exchange between SMF and UPF-C.
#[derive(Debug, Clone)]
pub struct PfcpLatencyRow {
    /// Message name.
    pub message: &'static str,
    /// free5GC latency (ms): UDP socket transport.
    pub free5gc_ms: f64,
    /// L²5GC latency (ms): shared-memory transport, PFCP retained.
    pub l25gc_ms: f64,
    /// Relative reduction (%).
    pub reduction_pct: f64,
}

fn pfcp_exchange(dep: Deployment, req: pfcp::Message, resp_len: usize) -> SimDuration {
    // One request hop + receiver handler + one response hop, using the
    // same machinery the event simulation uses.
    let core = l25gc_core::net::CoreNetwork::new(dep);
    let req_env = Envelope::new(Endpoint::Smf, Endpoint::UpfC, Msg::N4(req));
    let req_hop = dep.control_hop(&core.cost, &req_env);
    let handler = handler_cost(&core.cost, &req_env);
    let resp = pfcp::Message::session(
        MsgType::SessionModificationResponse,
        1,
        1,
        IeSet {
            cause: Some(pfcp::Cause::Accepted),
            ..IeSet::default()
        },
    );
    let mut resp_env = Envelope::new(Endpoint::UpfC, Endpoint::Smf, Msg::N4(resp));
    // Use the caller-provided response size via padding semantics: the
    // encoded response is small; the hop cost only depends on length, so
    // recompute with the intended length.
    let resp_hop = {
        let encoded = resp_env.wire_len().max(resp_len);
        let _ = &mut resp_env;
        let (t, f) = dep.n4();
        core.cost.message_hop(t, f, encoded)
    };
    req_hop + handler + resp_hop
}

/// Computes Fig 7 for the three PFCP messages the paper highlights.
pub fn fig7() -> Vec<PfcpLatencyRow> {
    let session_establishment =
        pfcp::Message::session(MsgType::SessionEstablishmentRequest, 1, 1, IeSet::default());
    let modification = pfcp::Message::session(
        MsgType::SessionModificationRequest,
        1,
        1,
        IeSet {
            update_fars: vec![pfcp::UpdateFar {
                far_id: 2,
                apply_action: Some(pfcp::ApplyAction::FORW),
                forwarding: None,
            }],
            ..IeSet::default()
        },
    );
    let report = pfcp::Message::session(
        MsgType::SessionReportRequest,
        1,
        1,
        IeSet {
            report_downlink_data: true,
            downlink_data_pdr: Some(2),
            ..IeSet::default()
        },
    );

    [
        ("SessionEstablishment", session_establishment, 60),
        ("SessionModification (UpdateFAR)", modification, 60),
        ("SessionReportRequest", report, 40),
    ]
    .into_iter()
    .map(|(name, msg, resp_len)| {
        let free = pfcp_exchange(Deployment::Free5gc, msg.clone(), resp_len);
        let l25 = pfcp_exchange(Deployment::L25gc, msg, resp_len);
        PfcpLatencyRow {
            message: name,
            free5gc_ms: free.as_millis_f64(),
            l25gc_ms: l25.as_millis_f64(),
            reduction_pct: (1.0 - l25.as_secs_f64() / free.as_secs_f64()) * 100.0,
        }
    })
    .collect()
}

/// One Fig 8 bar group: completion time of a UE event per deployment.
#[derive(Debug, Clone)]
pub struct EventRow {
    /// Which UE event.
    pub event: UeEvent,
    /// Completion time per deployment (ms): free5GC, ONVM-UPF, L²5GC.
    pub free5gc_ms: f64,
    /// ONVM-UPF completion (ms).
    pub onvm_upf_ms: f64,
    /// L²5GC completion (ms).
    pub l25gc_ms: f64,
}

impl EventRow {
    /// L²5GC's reduction over free5GC (%).
    pub fn reduction_pct(&self) -> f64 {
        (1.0 - self.l25gc_ms / self.free5gc_ms) * 100.0
    }
}

/// Runs one full UE lifecycle on `deployment` and returns the completion
/// time of each event (ms). `seed` offsets the engine RNG; 0 keeps the
/// published configuration.
pub fn run_events(deployment: Deployment, seed: u64) -> Vec<(UeEvent, f64)> {
    let mut eng = Engine::new(1 ^ seed, World::new(deployment, 2, 2));
    World::bring_up_ue(&mut eng, 1);

    // Handover to gNB 2.
    let out = eng.world().ran.trigger_handover(1, 2);
    eng.schedule_in(SimDuration::ZERO, move |w: &mut World, ctx| {
        w.send_after(ctx, out.delay, out.env);
    });
    eng.run_with_mailbox();

    // Idle transition, then paging via one downlink packet.
    let out = eng.world().ran.trigger_idle(1);
    eng.schedule_in(SimDuration::ZERO, move |w: &mut World, ctx| {
        w.send_after(ctx, out.delay, out.env);
    });
    eng.run_with_mailbox();
    eng.schedule_in(SimDuration::ZERO, |w: &mut World, ctx| {
        w.start_cbr(1, 0, 1_000, 200, SimDuration::from_millis(5), ctx);
    });
    eng.run_with_mailbox();

    eng.world()
        .core
        .events
        .iter()
        .map(|e| (e.event, e.duration().as_millis_f64()))
        .collect()
}

/// Computes the Fig 8 table for the four UE events.
pub fn fig8(seed: u64) -> Vec<EventRow> {
    let free = run_events(Deployment::Free5gc, seed);
    let onvm = run_events(Deployment::OnvmUpf, seed);
    let l25 = run_events(Deployment::L25gc, seed);
    let get = |set: &[(UeEvent, f64)], ev: UeEvent| {
        set.iter()
            .find(|(e, _)| *e == ev)
            .map(|&(_, ms)| ms)
            .expect("event completed")
    };
    [
        UeEvent::Registration,
        UeEvent::SessionRequest,
        UeEvent::Handover,
        UeEvent::Paging,
    ]
    .into_iter()
    .map(|ev| EventRow {
        event: ev,
        free5gc_ms: get(&free, ev),
        onvm_upf_ms: get(&onvm, ev),
        l25gc_ms: get(&l25, ev),
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_reductions_in_paper_band() {
        for row in fig7() {
            assert!(
                (15.0..45.0).contains(&row.reduction_pct),
                "{}: {:.0}% (paper: 21–39%)",
                row.message,
                row.reduction_pct
            );
            assert!(row.l25gc_ms < row.free5gc_ms);
        }
    }

    #[test]
    fn fig8_l25gc_halves_event_times() {
        let rows = fig8(0);
        assert_eq!(rows.len(), 4);
        for row in &rows {
            assert!(
                row.l25gc_ms < row.free5gc_ms,
                "{:?}: L25GC must win",
                row.event
            );
            assert!(
                (35.0..70.0).contains(&row.reduction_pct()),
                "{:?}: ~50% reduction, got {:.0}%",
                row.event,
                row.reduction_pct()
            );
            // ONVM-UPF only improves the N4 leg: between the two.
            assert!(
                row.onvm_upf_ms <= row.free5gc_ms && row.onvm_upf_ms >= row.l25gc_ms,
                "{:?}: ONVM-UPF between the extremes",
                row.event
            );
        }
    }

    #[test]
    fn fig8_handover_near_paper_values() {
        let rows = fig8(0);
        let ho = rows
            .iter()
            .find(|r| r.event == UeEvent::Handover)
            .expect("HO row");
        // Paper Table 2: 227 ms vs 130 ms (HO data interruption); the
        // Fig 8 completion additionally includes the mobility
        // registration update, so the free5GC bar sits above 227.
        assert!(
            (220.0..330.0).contains(&ho.free5gc_ms),
            "free5GC HO {:.0} ms (paper ≈ 227 + mobility update)",
            ho.free5gc_ms
        );
        assert!(
            (110.0..175.0).contains(&ho.l25gc_ms),
            "L25GC HO {:.0} ms (paper ≈ 130)",
            ho.l25gc_ms
        );
    }

    #[test]
    fn fig8_paging_near_paper_values() {
        let rows = fig8(0);
        let pg = rows
            .iter()
            .find(|r| r.event == UeEvent::Paging)
            .expect("paging row");
        assert!(
            (45.0..75.0).contains(&pg.free5gc_ms),
            "free5GC paging {:.0} ms (paper ≈ 59)",
            pg.free5gc_ms
        );
        assert!(
            (20.0..40.0).contains(&pg.l25gc_ms),
            "L25GC paging {:.0} ms (paper ≈ 28)",
            pg.l25gc_ms
        );
    }
}
