//! Fig 10 and the §5.3 "Supporting 40Gbps links" study: data-plane
//! throughput and latency vs. packet size.
//!
//! These are derived from the calibrated datapath primitives (service
//! time + path latencies) rather than event simulation: saturation
//! throughput is a closed form of the per-packet service time, exactly
//! how one computes it for a run-to-completion DPDK pipeline.

use l25gc_core::Deployment;
use l25gc_nfv::cost::CostModel;
use l25gc_sim::SimDuration;

/// The packet sizes MoonGen sweeps in Fig 10.
pub const PACKET_SIZES: [usize; 6] = [68, 128, 256, 512, 1024, 1500];

/// One Fig 10 point.
#[derive(Debug, Clone)]
pub struct DataplaneRow {
    /// Packet size (bytes).
    pub size: usize,
    /// Unidirectional throughput, Gbit/s (Fig 10a).
    pub uni_gbps: f64,
    /// Bidirectional aggregate throughput, Gbit/s (Fig 10b; two 10 G
    /// ports, UL+DL simultaneously).
    pub bidir_gbps: f64,
    /// Mean end-to-end latency, µs (Fig 10c).
    pub latency_us: f64,
}

/// Computes the Fig 10 sweep for one system on a `link_gbps` link.
pub fn fig10(deployment: Deployment, cost: &CostModel, link_gbps: f64) -> Vec<DataplaneRow> {
    let path = deployment.datapath();
    PACKET_SIZES
        .iter()
        .map(|&size| {
            let uni = cost.datapath_gbps(path, size, 1, link_gbps);
            // Bidirectional: UL and DL share the UPF core; each direction
            // gets half the service capacity but its own port.
            let per_dir_pps = cost.datapath_pps(path, size) / 2.0;
            let per_dir = (per_dir_pps * size as f64 * 8.0 / 1e9).min(link_gbps);
            let bidir = per_dir * 2.0;
            // One-way latency: two wire hops + UPF latency + service,
            // plus the NIC wire time for the frame itself.
            let wire = SimDuration::from_secs_f64(size as f64 * 8.0 / (link_gbps * 1e9));
            let one_way = cost.path_lat * 2
                + cost.datapath_latency(path)
                + cost.datapath_service(path, size)
                + wire;
            DataplaneRow {
                size,
                uni_gbps: uni,
                bidir_gbps: bidir,
                latency_us: one_way.as_micros_f64(),
            }
        })
        .collect()
}

/// §5.3: cores vs. achievable forwarding rate at MTU on a 40 G link.
#[derive(Debug, Clone)]
pub struct ScalingRow {
    /// Cores assigned to the UPF-U (and mirrored at the manager).
    pub cores: u32,
    /// Forwarding rate, Gbit/s.
    pub gbps: f64,
}

/// Computes the §5.3 scaling table (1 → 10 G, 2 → ~28 G, 4 → 40 G).
pub fn scaling_40g(cost: &CostModel) -> Vec<ScalingRow> {
    [1u32, 2, 4]
        .iter()
        .map(|&cores| {
            // With one core the paper is port-bound at 10 G; beyond that
            // the 40 G link is the cap.
            let link = if cores == 1 { 10.0 } else { 40.0 };
            let gbps = cost.datapath_gbps(l25gc_nfv::DataPath::Dpdk, 1500, cores, link);
            ScalingRow { cores, gbps }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig10a_shape_27x_at_small_packets() {
        let cost = CostModel::paper();
        let free = fig10(Deployment::Free5gc, &cost, 10.0);
        let l25 = fig10(Deployment::L25gc, &cost, 10.0);
        let ratio = l25[0].uni_gbps / free[0].uni_gbps;
        assert!(
            (20.0..30.0).contains(&ratio),
            "68 B ratio {ratio} (paper: 27x)"
        );
        // L25GC is at line rate for small packets.
        assert!(
            l25[0].uni_gbps > 9.9,
            "line rate at 68 B: {}",
            l25[0].uni_gbps
        );
        // free5GC throughput grows with packet size.
        assert!(free[5].uni_gbps > free[0].uni_gbps * 10.0);
    }

    #[test]
    fn fig10c_latency_gap_about_15x() {
        let cost = CostModel::paper();
        let free = fig10(Deployment::Free5gc, &cost, 10.0);
        let l25 = fig10(Deployment::L25gc, &cost, 10.0);
        for (f, l) in free.iter().zip(&l25) {
            let ratio = f.latency_us / l.latency_us;
            assert!(
                (3.0..20.0).contains(&ratio),
                "latency ratio at {} B: {ratio:.1}",
                f.size
            );
        }
        // L25GC latency stays relatively flat across sizes.
        let spread = l25[5].latency_us / l25[0].latency_us;
        assert!(spread < 2.0, "flat latency, spread {spread}");
    }

    #[test]
    fn scaling_matches_section53() {
        let rows = scaling_40g(&CostModel::paper());
        assert!(
            (rows[0].gbps - 10.0).abs() < 0.5,
            "1 core ⇒ 10 G, got {}",
            rows[0].gbps
        );
        assert!(
            (24.0..32.0).contains(&rows[1].gbps),
            "2 cores ⇒ ~28 G, got {}",
            rows[1].gbps
        );
        assert!(rows[2].gbps >= 39.0, "4 cores ⇒ 40 G, got {}", rows[2].gbps);
    }

    #[test]
    fn bidirectional_doubles_until_cpu_bound() {
        let cost = CostModel::paper();
        let l25 = fig10(Deployment::L25gc, &cost, 10.0);
        // At MTU one direction is port-capped at 10 G while the shared
        // core can push ~14 G total across both ports.
        let last = l25.last().unwrap();
        assert!(
            last.bidir_gbps > last.uni_gbps * 1.3,
            "{} vs {}",
            last.bidir_gbps,
            last.uni_gbps
        );
    }
}
