//! §5.5: failure recovery — control-plane impact (§5.5.1), data-plane
//! impact (Fig 15), and the combined failure-during-handover experiment
//! (Fig 16).
//!
//! L²5GC runs with the resiliency harness: a frozen replica checkpointed
//! at quiescent instants plus the LB packet logger; on failure the
//! replica wakes (detect < 0.5 ms, reroute 2 ms, replay 3 ms, partly
//! overlapped) and the log replays. The 3GPP baseline drops everything
//! during the outage and the UE reattaches from scratch (registration +
//! session re-establishment composed from the *measured* Fig 8 free5GC
//! durations — not hand-entered constants).

use l25gc_core::context::UeEvent;
use l25gc_core::Deployment;
use l25gc_ran::MSS;
use l25gc_resilience::ReattachModel;
use l25gc_sim::{Engine, SimDuration};

use crate::exp::control_plane::run_events;
use crate::netem::NetEm;
use crate::world::World;

/// Builds the 3GPP reattach baseline from measured free5GC event times.
pub fn measured_reattach_model(seed: u64) -> ReattachModel {
    let events = run_events(Deployment::Free5gc, seed);
    let get = |ev: UeEvent| {
        events
            .iter()
            .find(|(e, _)| *e == ev)
            .map(|&(_, ms)| SimDuration::from_secs_f64(ms / 1e3))
            .expect("event measured")
    };
    ReattachModel {
        detect: SimDuration::from_micros(500),
        notify: SimDuration::from_millis(2),
        registration: get(UeEvent::Registration),
        session_establishment: get(UeEvent::SessionRequest),
    }
}

/// §5.5.1: handover completion with a failure at its midpoint.
#[derive(Debug, Clone)]
pub struct FailoverCpRow {
    /// Recovery approach.
    pub approach: &'static str,
    /// Handover completion including the failure (ms).
    pub ho_with_failure_ms: f64,
    /// Handover completion without any failure (ms), for reference.
    pub ho_baseline_ms: f64,
}

/// Runs the L²5GC side of §5.5.1: fail the primary mid-handover (while
/// the path-switch signalling is in flight); the replica + replay finish
/// it. Durations are measured from the trigger instant at the testbed
/// level, so replayed-message re-stamping cannot skew them.
pub fn failover_handover_l25gc(seed: u64) -> FailoverCpRow {
    // Baseline HO (no failure).
    let baseline = {
        let mut eng = Engine::new(55 ^ seed, World::new(Deployment::L25gc, 2, 1));
        World::bring_up_ue(&mut eng, 1);
        let t0 = eng.now();
        let out = eng.world().ran.trigger_handover(1, 2);
        eng.schedule_in(SimDuration::ZERO, move |w: &mut World, ctx| {
            w.send_after(ctx, out.delay, out.env);
        });
        eng.run_with_mailbox();
        let end = eng
            .world()
            .core
            .events
            .iter()
            .find(|e| e.event == UeEvent::Handover)
            .expect("HO completed")
            .end;
        end.duration_since(t0)
    };

    // With a failure hitting the execution phase (85% in: right around
    // the HandoverNotify / path-switch signalling).
    let mut eng = Engine::new(56 ^ seed, World::new(Deployment::L25gc, 2, 1));
    World::bring_up_ue(&mut eng, 1);
    World::enable_resilience(&mut eng);
    // Let a checkpoint pass so the session state is replicated.
    eng.run_for_with_mailbox(SimDuration::from_millis(50));
    let t0 = eng.now();
    let out = eng.world().ran.trigger_handover(1, 2);
    eng.schedule_in(SimDuration::ZERO, move |w: &mut World, ctx| {
        w.send_after(ctx, out.delay, out.env);
    });
    eng.schedule_in(baseline * 0.85, |w: &mut World, ctx| w.fail_primary(ctx));
    eng.run_with_mailbox();
    let end = eng
        .world()
        .core
        .events
        .iter()
        .filter(|e| e.event == UeEvent::Handover)
        .map(|e| e.end)
        .max()
        .expect("HO completed despite the failure");
    FailoverCpRow {
        approach: "L25GC failover",
        ho_with_failure_ms: end.duration_since(t0).as_millis_f64(),
        ho_baseline_ms: baseline.as_millis_f64(),
    }
}

/// The 3GPP reattach number for the same scenario.
pub fn failover_handover_3gpp(seed: u64) -> FailoverCpRow {
    let model = measured_reattach_model(seed);
    let baseline = SimDuration::from_millis(130); // L25GC's no-failure HO
    let spent = baseline * 0.5;
    // The interrupted handover is abandoned; after the outage the UE is
    // attached afresh on the target cell.
    let total = spent + model.outage();
    FailoverCpRow {
        approach: "3GPP reattach",
        ho_with_failure_ms: total.as_millis_f64(),
        ho_baseline_ms: baseline.as_millis_f64(),
    }
}

/// Fig 15/16: data-plane impact of a failure during a TCP transfer.
#[derive(Debug, Clone)]
pub struct FailoverDataRow {
    /// Recovery approach.
    pub approach: &'static str,
    /// Bytes transferred over the run (MB).
    pub transferred_mb: f64,
    /// Packets dropped because the core was down.
    pub packets_dropped: u64,
    /// RTO timeouts at the sender.
    pub timeouts: u64,
    /// Maximum RTT observed (ms).
    pub max_rtt_ms: f64,
}

/// Runs the Fig 15 experiment: a 30 Mbps TCP stream; the core fails at
/// `fail_at`. `resilient` selects L²5GC failover vs the 3GPP baseline
/// (which restores service only after the measured reattach outage).
/// `ho_at` optionally triggers a handover before the failure (Fig 16).
pub fn run_failover_data(
    resilient: bool,
    fail_at: SimDuration,
    ho_at: Option<SimDuration>,
    duration: SimDuration,
    seed: u64,
) -> FailoverDataRow {
    let mut eng = Engine::new(58 ^ seed, World::new(Deployment::L25gc, 2, 1));
    World::bring_up_ue(&mut eng, 1);
    eng.world_mut().netem = NetEm::failover_30mbps();
    if resilient {
        World::enable_resilience(&mut eng);
    }
    eng.schedule_in(SimDuration::ZERO, |w: &mut World, ctx| {
        w.start_tcp(1, 0, None, ctx);
    });
    if let Some(at) = ho_at {
        eng.schedule_in(at, |w: &mut World, ctx| {
            let out = w.ran.trigger_handover(1, 2);
            w.send_after(ctx, out.delay, out.env);
        });
    }
    eng.schedule_in(fail_at, |w: &mut World, ctx| w.fail_primary(ctx));
    if !resilient {
        // 3GPP: service resumes after the measured reattach outage; the
        // restored core is the backup with the re-established session
        // (state-wise identical here; the *time* and the dropped packets
        // are the penalty).
        let outage = measured_reattach_model(seed).outage();
        eng.schedule_in(fail_at + outage, |w: &mut World, _ctx| {
            w.reattach_recover();
        });
    }
    eng.run_for_with_mailbox(duration);

    let w = eng.world();
    let tx = &w.apps.tcp[&0];
    FailoverDataRow {
        approach: if resilient {
            "L25GC failover"
        } else {
            "3GPP reattach"
        },
        transferred_mb: (tx.acked_segments() * MSS as u64) as f64 / 1e6,
        packets_dropped: w.outage_drops,
        timeouts: tx.timeouts,
        max_rtt_ms: tx.rtt_trace.max().unwrap_or(0.0) / 1000.0,
    }
}

/// Fleet-scale recovery comparison: the load engine's measured
/// disruption under a scripted mid-run shard kill, against what the
/// same incident costs when the shard's UEs re-attach from scratch
/// (the 3GPP baseline composed from measured free5GC durations).
#[derive(Debug, Clone)]
pub struct DisruptionRow {
    /// Recovery approach.
    pub approach: &'static str,
    /// Service interruption: kill instant until the backlog drained
    /// (L²5GC replay) or until re-attach completed (3GPP), ms.
    pub outage_ms: f64,
    /// Procedures re-run from the packet log (replay path only).
    pub replayed: u64,
    /// Arrivals lost to the outage.
    pub completions_lost: u64,
}

/// Runs a 1-second fleet workload with a kill at 500 ms under the Queue
/// policy (wide rings, so admission control never confuses the loss
/// accounting), and prices the same kill under the measured re-attach
/// model: its outage is detection + notification + a fresh registration
/// and session establishment, during which every arrival to the dead
/// shard is lost.
pub fn disruption_vs_reattach(seed: u64) -> Vec<DisruptionRow> {
    use l25gc_load::{calibrate, Driver, FaultPlan, LoadConfig, OverloadPolicy, ShardConfig};

    let profiles = calibrate(Deployment::L25gc);
    let cfg = LoadConfig::builder()
        .ues(20_000)
        .shard_cfg(ShardConfig {
            shards: 2,
            high_water: 1 << 14,
            policy: OverloadPolicy::Queue,
            ring_capacity: 1 << 15,
        })
        .offered_eps(2_000.0)
        .duration(SimDuration::from_secs(1))
        .seed(seed.wrapping_add(59))
        .fault(FaultPlan::parse("kill@500ms:shard=0").expect("static plan parses"))
        .build()
        .expect("disruption comparison config is valid");
    let r = Driver::new(cfg).expect("valid config").run(&profiles);
    let d = r.disruption.expect("kill plan yields a disruption block");

    // 3GPP alternative for the identical incident: the shard is dark for
    // the full re-attach outage, and arrivals hashing to it in that
    // window (half the offered stream) are dropped, not replayed.
    let model = measured_reattach_model(seed);
    let outage = model.outage();
    let lost = model.packets_lost(2_000.0 / 2.0);
    vec![
        DisruptionRow {
            approach: "L25GC failover",
            outage_ms: d.disruption_ms,
            replayed: d.replayed,
            completions_lost: d.completions_lost,
        },
        DisruptionRow {
            approach: "3GPP reattach",
            outage_ms: outage.as_millis_f64(),
            replayed: 0,
            completions_lost: lost,
        },
    ]
}

/// Fig 15: failure during a plain transfer at 4.5 s, 10 s run.
pub fn fig15(seed: u64) -> Vec<FailoverDataRow> {
    let fail = SimDuration::from_millis(4_500);
    let dur = SimDuration::from_secs(10);
    vec![
        run_failover_data(true, fail, None, dur, seed),
        run_failover_data(false, fail, None, dur, seed),
    ]
}

/// Fig 16: handover at 4.4 s, failure at 4.5 s (mid-handover), 10 s run.
pub fn fig16(seed: u64) -> Vec<FailoverDataRow> {
    let ho = SimDuration::from_millis(4_400);
    let fail = SimDuration::from_millis(4_500);
    let dur = SimDuration::from_secs(10);
    vec![
        run_failover_data(true, fail, Some(ho), dur, seed),
        run_failover_data(false, fail, Some(ho), dur, seed),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failover_cp_matches_551() {
        let l25 = failover_handover_l25gc(0);
        // Paper: 130 ms without failure → 134 ms with; a few ms overhead.
        assert!(
            (110.0..175.0).contains(&l25.ho_baseline_ms),
            "baseline {}",
            l25.ho_baseline_ms
        );
        let overhead = l25.ho_with_failure_ms - l25.ho_baseline_ms;
        assert!(
            (0.5..30.0).contains(&overhead),
            "failover adds a few ms, got {overhead:.1} (paper: ~4 ms)"
        );

        let gpp = failover_handover_3gpp(0);
        // Paper: 401 ms. Composition from measured free5GC events lands
        // in the hundreds of ms and far above L25GC.
        assert!(
            gpp.ho_with_failure_ms > 2.0 * l25.ho_with_failure_ms,
            "reattach {} ms vs failover {} ms",
            gpp.ho_with_failure_ms,
            l25.ho_with_failure_ms
        );
        assert!(
            (250.0..650.0).contains(&gpp.ho_with_failure_ms),
            "reattach {} ms (paper 401)",
            gpp.ho_with_failure_ms
        );
    }

    #[test]
    fn fleet_replay_beats_reattach_on_recovery() {
        let rows = disruption_vs_reattach(0);
        let (l25, gpp) = (&rows[0], &rows[1]);
        // The replay path recovers in single-digit-to-low-tens of ms;
        // re-attach costs the measured hundreds of ms — and loses every
        // arrival that hit the dead shard meanwhile.
        assert!(l25.outage_ms > 0.0, "the kill must be visible");
        assert!(
            (250.0..650.0).contains(&gpp.outage_ms),
            "reattach outage {} ms (paper ~401)",
            gpp.outage_ms
        );
        assert!(
            l25.outage_ms * 5.0 < gpp.outage_ms,
            "replay {} ms must beat reattach {} ms decisively",
            l25.outage_ms,
            gpp.outage_ms
        );
        assert!(l25.replayed > 0, "the backlog replays, not re-attaches");
        assert_eq!(l25.completions_lost, 0, "Queue failover is loss-free");
        assert!(gpp.completions_lost > 0, "reattach drops the outage window");
    }

    #[test]
    fn fig15_l25gc_keeps_goodput() {
        let rows = fig15(0);
        let l25 = &rows[0];
        let gpp = &rows[1];
        assert_eq!(l25.packets_dropped, 0, "the logger loses nothing");
        assert!(
            gpp.packets_dropped > 50,
            "reattach drops in-flight data: {}",
            gpp.packets_dropped
        );
        assert!(gpp.timeouts > 0, "the 3GPP outage exceeds the RTO");
        assert!(
            l25.transferred_mb > gpp.transferred_mb,
            "L25GC {} MB vs 3GPP {} MB",
            l25.transferred_mb,
            gpp.transferred_mb
        );
    }

    #[test]
    fn fig16_failure_during_handover() {
        let rows = fig16(0);
        let l25 = &rows[0];
        let gpp = &rows[1];
        assert_eq!(l25.packets_dropped, 0);
        assert!(l25.transferred_mb > gpp.transferred_mb);
        // 3GPP reattach drops the in-flight window (no RTT samples for
        // dropped packets) and eats RTO timeouts; L25GC's worst delay is
        // bounded by the handover stall plus a few failover ms.
        assert!(gpp.timeouts >= 1, "reattach outage exceeds the RTO");
        assert!(
            l25.max_rtt_ms < 400.0,
            "L25GC worst RTT bounded: {}",
            l25.max_rtt_ms
        );
    }
}
