//! Fig 14 & Table 2: data-plane latency during a handover.
//!
//! Experiment (i): one UE session with one 10 Kpps downlink flow; the UE
//! initiates a handover at t = 1 s; the UPF buffers (3 K packets) and the
//! SMF provisions the buffering FAR (smart scheme on both systems, as in
//! the paper's Fig 8 note). Experiment (ii): multiple UE sessions send
//! concurrently while one UE hands over.

use l25gc_core::context::UeEvent;
use l25gc_core::Deployment;
use l25gc_sim::{Engine, SimDuration, TimeSeries};

use crate::world::World;

/// Table 2, one row.
#[derive(Debug, Clone)]
pub struct HandoverRow {
    /// System + experiment label.
    pub system: &'static str,
    /// Base RTT before the handover (µs).
    pub base_rtt_us: f64,
    /// Handover completion as seen by the data plane: time from trigger
    /// until downlink delivery resumes (ms).
    pub ho_time_ms: f64,
    /// RTT right after the handover (ms).
    pub rtt_after_ms: f64,
    /// Packets that saw an elevated RTT.
    pub pkts_higher_rtt: usize,
    /// Packets dropped end-to-end.
    pub pkts_dropped: u64,
    /// RTT series for Fig 14.
    pub series: TimeSeries,
}

/// Runs the handover experiment. `concurrent_ues > 1` is experiment (ii).
pub fn run_handover(deployment: Deployment, concurrent_ues: u64, seed: u64) -> HandoverRow {
    let mut eng = Engine::new(5 ^ seed, World::new(deployment, 2, concurrent_ues.max(1)));
    for ue in 1..=concurrent_ues {
        World::bring_up_ue(&mut eng, ue);
    }
    let traffic_start = eng.now();

    // All UEs stream 10 Kpps downlink for 3 s; UE 1 hands over at 1 s.
    eng.schedule_in(SimDuration::ZERO, move |w: &mut World, ctx| {
        for ue in 1..=concurrent_ues {
            w.start_cbr(
                ue,
                ue as u32 - 1,
                10_000,
                200,
                SimDuration::from_secs(3),
                ctx,
            );
        }
    });
    eng.schedule_in(SimDuration::from_secs(1), |w: &mut World, ctx| {
        let out = w.ran.trigger_handover(1, 2);
        w.send_after(ctx, out.delay, out.env);
    });
    eng.run_with_mailbox();

    let w = eng.world();
    let ho = w
        .core
        .events
        .iter()
        .find(|e| e.event == UeEvent::Handover)
        .expect("handover completed");
    let flow = &w.apps.cbr[0]; // UE 1's flow
    let warmup_end = traffic_start + SimDuration::from_millis(900);
    let base_rtt_us = flow
        .rtt
        .mean_in_window(traffic_start, warmup_end)
        .expect("warm-up samples");
    let threshold = SimDuration::from_micros_f64(base_rtt_us * 4.0);
    // "HO time" in Table 2 is the data-interruption window: from the
    // trigger until the flushed packets reach the UE ≈ the max RTT.
    let rtt_after_ms = flow.max_rtt().expect("samples") / 1000.0;
    // The paper counts delayed packets across *all* concurrent flows in
    // experiment (ii) ("an increased RTT ... for all the data packets").
    let pkts_higher_rtt: usize = w.apps.cbr.iter().map(|f| f.pkts_above(threshold)).sum();
    let pkts_dropped: u64 = w.apps.cbr.iter().map(|f| f.lost()).sum();
    HandoverRow {
        system: match deployment {
            Deployment::Free5gc => "free5GC",
            Deployment::OnvmUpf => "ONVM-UPF",
            Deployment::L25gc => "L25GC",
        },
        base_rtt_us,
        ho_time_ms: ho.duration().as_millis_f64(),
        rtt_after_ms,
        pkts_higher_rtt,
        pkts_dropped,
        series: flow.rtt.clone(),
    }
}

/// Table 2: both systems × experiments (i) and (ii).
pub fn table2(seed: u64) -> Vec<(String, HandoverRow)> {
    let mut out = Vec::new();
    for (label, ues) in [("expt i", 1u64), ("expt ii", 3)] {
        for dep in [Deployment::Free5gc, Deployment::L25gc] {
            let row = run_handover(dep, ues, seed);
            out.push((format!("{} ({label})", row.system), row));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expt_i_shape_matches_table2() {
        let free = run_handover(Deployment::Free5gc, 1, 0);
        let l25 = run_handover(Deployment::L25gc, 1, 0);

        // Base RTT 118 µs vs 24 µs.
        assert!(
            (90.0..140.0).contains(&free.base_rtt_us),
            "free base {}",
            free.base_rtt_us
        );
        assert!(
            (15.0..40.0).contains(&l25.base_rtt_us),
            "l25 base {}",
            l25.base_rtt_us
        );

        // Data interruption ≈ 227 ms vs 130 ms; our model lands close.
        assert!(
            (170.0..260.0).contains(&free.rtt_after_ms),
            "free RTT-after {} ms (paper 242)",
            free.rtt_after_ms
        );
        assert!(
            (110.0..175.0).contains(&l25.rtt_after_ms),
            "l25 RTT-after {} ms (paper 132)",
            l25.rtt_after_ms
        );
        assert!(
            free.rtt_after_ms > l25.rtt_after_ms * 1.3,
            "free5GC stalls longer"
        );

        // More packets see elevated RTT under free5GC (2301 vs 1437).
        assert!(
            free.pkts_higher_rtt > l25.pkts_higher_rtt,
            "{} vs {}",
            free.pkts_higher_rtt,
            l25.pkts_higher_rtt
        );
        assert!(
            (1_000..3_200).contains(&free.pkts_higher_rtt),
            "{}",
            free.pkts_higher_rtt
        );

        // No drops with a 3 K buffer in either system (expt i).
        assert_eq!(free.pkts_dropped, 0);
        assert_eq!(l25.pkts_dropped, 0);
    }

    #[test]
    fn expt_ii_keeps_l25gc_lossless() {
        let l25 = run_handover(Deployment::L25gc, 3, 0);
        assert_eq!(l25.pkts_dropped, 0, "paper: 0 drops for L25GC in expt ii");
        // Concurrent sessions leave the handover time roughly unchanged
        // (132 vs 130 ms in the paper).
        assert!(
            (110.0..180.0).contains(&l25.rtt_after_ms),
            "l25 expt ii RTT-after {}",
            l25.rtt_after_ms
        );
    }

    #[test]
    fn fig14_series_spikes_at_handover() {
        let row = run_handover(Deployment::L25gc, 1, 0);
        // Before the handover: flat base RTT; around it: the spike.
        let before = row.base_rtt_us;
        let spike = row.series.max().unwrap();
        assert!(
            spike > before * 1000.0,
            "spike {spike} µs over base {before} µs"
        );
    }
}
