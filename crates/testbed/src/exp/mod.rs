//! One module per paper figure/table; see DESIGN.md §4 for the index.

pub mod ablation;
pub mod analytic;
pub mod capacity;
pub mod control_plane;
pub mod dataplane;
pub mod failover;
pub mod handover;
pub mod paging;
pub mod pdr;
pub mod scenario;
pub mod serialization;
pub mod tcp_impact;
pub mod webpage;
