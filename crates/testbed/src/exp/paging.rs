//! Fig 13 & Table 1: data-plane latency during a paging event.
//!
//! Setup (paper §5.4.2): a UE with an established session goes idle;
//! downlink packets then arrive at 10 Kpps with a 3 K-packet UPF buffer.
//! The first packet triggers a downlink-data report → paging → service
//! request → tunnel re-establishment; buffered packets flush in order.
//! The generator records per-packet RTTs.

use l25gc_core::context::UeEvent;
use l25gc_core::Deployment;
use l25gc_sim::{Engine, SimDuration, SimTime, TimeSeries};

use crate::world::World;

/// Table 1, one row.
#[derive(Debug, Clone)]
pub struct PagingRow {
    /// System name.
    pub system: &'static str,
    /// Base RTT before the event (µs).
    pub base_rtt_us: f64,
    /// Paging completion time (ms) — the AMF-recorded event duration.
    pub paging_time_ms: f64,
    /// RTT right after paging (ms) — the first flushed packet's RTT.
    pub rtt_after_ms: f64,
    /// Packets that experienced an elevated RTT (> 4× base RTT).
    pub pkts_higher_rtt: usize,
    /// The full RTT-over-time series (µs) for Fig 13.
    pub series: TimeSeries,
}

/// Runs the paging experiment on one deployment.
pub fn run_paging(deployment: Deployment, seed: u64) -> PagingRow {
    let mut eng = Engine::new(3 ^ seed, World::new(deployment, 2, 2));
    World::bring_up_ue(&mut eng, 1);

    // Warm-up traffic to measure the base RTT while connected.
    eng.schedule_in(SimDuration::ZERO, |w: &mut World, ctx| {
        w.start_cbr(1, 0, 10_000, 200, SimDuration::from_millis(50), ctx);
    });
    eng.run_with_mailbox();
    let warm_end = eng.now();
    let base_rtt_us = eng.world().apps.cbr[0]
        .mean_rtt_in(SimTime::ZERO, warm_end)
        .expect("warm-up RTT samples");

    // UE goes idle.
    let out = eng.world().ran.trigger_idle(1);
    eng.schedule_in(SimDuration::ZERO, move |w: &mut World, ctx| {
        w.send_after(ctx, out.delay, out.env);
    });
    eng.run_with_mailbox();

    // Downlink burst at 10 Kpps for 2 s: triggers paging, then drains.
    eng.schedule_in(SimDuration::ZERO, |w: &mut World, ctx| {
        w.start_cbr(1, 1, 10_000, 200, SimDuration::from_secs(2), ctx);
    });
    eng.run_with_mailbox();

    let w = eng.world();
    let paging = w
        .core
        .events
        .iter()
        .find(|e| e.event == UeEvent::Paging)
        .expect("paging completed");
    let flow = &w.apps.cbr[1];
    let threshold = base_rtt_us * 4.0;
    PagingRow {
        system: match deployment {
            Deployment::Free5gc => "free5GC",
            Deployment::OnvmUpf => "ONVM-UPF",
            Deployment::L25gc => "L25GC",
        },
        base_rtt_us,
        paging_time_ms: paging.duration().as_millis_f64(),
        rtt_after_ms: flow.max_rtt().expect("samples") / 1000.0,
        pkts_higher_rtt: flow.pkts_above(SimDuration::from_micros_f64(threshold)),
        series: flow.rtt.clone(),
    }
}

/// Table 1: free5GC vs L²5GC.
pub fn table1(seed: u64) -> Vec<PagingRow> {
    vec![
        run_paging(Deployment::Free5gc, seed),
        run_paging(Deployment::L25gc, seed),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shape_matches_paper() {
        let rows = table1(0);
        let free = &rows[0];
        let l25 = &rows[1];

        // Base RTT: 116 µs vs 25 µs (≈ 4×).
        assert!(
            (90.0..140.0).contains(&free.base_rtt_us),
            "free base {}",
            free.base_rtt_us
        );
        assert!(
            (15.0..40.0).contains(&l25.base_rtt_us),
            "l25 base {}",
            l25.base_rtt_us
        );
        let base_ratio = free.base_rtt_us / l25.base_rtt_us;
        assert!(
            (3.0..6.0).contains(&base_ratio),
            "~4x base RTT gap, got {base_ratio:.1}"
        );

        // Paging time: 59 ms vs 28 ms (≈ 2×).
        assert!(
            (45.0..75.0).contains(&free.paging_time_ms),
            "free paging {}",
            free.paging_time_ms
        );
        assert!(
            (20.0..40.0).contains(&l25.paging_time_ms),
            "l25 paging {}",
            l25.paging_time_ms
        );
        assert!(
            free.paging_time_ms / l25.paging_time_ms >= 1.7,
            "paper: at least ~2x paging reduction"
        );

        // RTT after paging tracks the paging time (63 ms vs 30 ms).
        assert!(free.rtt_after_ms > free.paging_time_ms * 0.8);
        assert!(l25.rtt_after_ms > l25.paging_time_ms * 0.8);
        assert!(free.rtt_after_ms > l25.rtt_after_ms * 1.5);

        // Packets with elevated RTT: 608 vs 294 — proportional to the
        // paging duration at 10 Kpps.
        assert!(
            (450..800).contains(&free.pkts_higher_rtt),
            "free elevated {} (paper 608)",
            free.pkts_higher_rtt
        );
        assert!(
            (200..420).contains(&l25.pkts_higher_rtt),
            "l25 elevated {} (paper 294)",
            l25.pkts_higher_rtt
        );
        assert!(free.pkts_higher_rtt > l25.pkts_higher_rtt * 3 / 2);
    }

    #[test]
    fn fig13_series_has_spike_then_decay() {
        let row = run_paging(Deployment::L25gc, 0);
        let sorted = row.series.sorted();
        let peak = row.series.max().unwrap();
        // The spike is the paging stall; afterwards RTT returns to base.
        assert!(peak > row.base_rtt_us * 100.0, "clear spike");
        let last = sorted.last().unwrap().1;
        assert!(
            last < row.base_rtt_us * 4.0,
            "drains back to base, got {last}"
        );
    }
}
