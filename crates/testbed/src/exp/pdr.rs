//! Fig 11 and the §5.3 update comparison: PDR lookup and update
//! performance — **wall-clock measured**, not simulated.
//!
//! The scenarios mirror the paper: ClassBench-style 20-dimension rule
//! sets; for TSS_Best all rules share one tuple; for TSS_Worst each rule
//! has its own tuple (the match in the last table probed); for PDR-LL
//! "the packet randomly matches a PDR in the second half of the list".
//!
//! The headline sweep uses the `Pinholes` profile — pairwise-disjoint
//! per-flow rules, the growth driver §2.3 describes — because the
//! paper's PDR-LL premise (a match landing mid-list) requires rules that
//! don't shadow each other. The wildcard-heavy `Mixed` profile is
//! reported separately by `fig11_mixed` as an ablation: there, catch-all
//! rules cap the linear scan early and fragment PartitionSort.

use std::time::Instant;

use l25gc_classifier::{
    Classifier, Generator, LinearList, PacketKey, PartitionSort, PdrRule, Profile, TupleSpace,
};

/// The rule counts Fig 11 sweeps.
pub const RULE_COUNTS: [usize; 6] = [2, 10, 100, 1_000, 5_000, 10_000];

/// One Fig 11 point for one structure.
#[derive(Debug, Clone)]
pub struct PdrRow {
    /// Structure name.
    pub structure: &'static str,
    /// Number of installed rules.
    pub rules: usize,
    /// Mean lookup latency (ns).
    pub lookup_ns: f64,
    /// Lookup-limited forwarding rate at 68 B packets (Mpps).
    pub mpps: f64,
}

fn measure_lookups<C: Classifier>(c: &C, keys: &[PacketKey]) -> f64 {
    let reps = (200_000 / keys.len()).max(1);
    // Warm up.
    for key in keys.iter().take(100) {
        std::hint::black_box(c.lookup(key));
    }
    let start = Instant::now();
    for _ in 0..reps {
        for key in keys {
            std::hint::black_box(c.lookup(key));
        }
    }
    start.elapsed().as_nanos() as f64 / (reps * keys.len()) as f64
}

fn row(structure: &'static str, rules: usize, lookup_ns: f64) -> PdrRow {
    // Forwarding rate when the classifier is the bottleneck stage.
    let mpps = 1e3 / lookup_ns; // 1e9 ns/s ÷ ns ÷ 1e6
    PdrRow {
        structure,
        rules,
        lookup_ns,
        mpps,
    }
}

/// Runs the Fig 11a/b sweep. Returns rows for PDR-LL, PDR-TSS (best and
/// worst structure), and PDR-PS.
pub fn fig11(rule_counts: &[usize]) -> Vec<PdrRow> {
    fig11_with_profile(rule_counts, Profile::Pinholes)
}

/// The wildcard-heavy variant (ablation; see module docs).
pub fn fig11_mixed(rule_counts: &[usize]) -> Vec<PdrRow> {
    fig11_with_profile(rule_counts, Profile::Mixed)
}

fn fig11_with_profile(rule_counts: &[usize], profile: Profile) -> Vec<PdrRow> {
    let mut rows = Vec::new();
    for &n in rule_counts {
        // ---- PDR-LL: keys match the second half of the list. ----
        let mut gen = Generator::new(11, profile);
        let rules = gen.rules(n);
        let mut ll = LinearList::new();
        for r in &rules {
            ll.insert(r.clone());
        }
        let keys: Vec<PacketKey> = rules[n / 2..].iter().map(|r| gen.matching_key(r)).collect();
        rows.push(row("PDR-LL", n, measure_lookups(&ll, &keys)));

        // ---- PDR-PS on the same mixed set. ----
        let mut ps = PartitionSort::new();
        for r in &rules {
            ps.insert(r.clone());
        }
        rows.push(row("PDR-PS", n, measure_lookups(&ps, &keys)));

        // ---- PDR-TSS best case: one tuple. ----
        let mut gen = Generator::new(12, Profile::TssBest);
        let best_rules = gen.rules(n);
        let mut tss = TupleSpace::new();
        for r in &best_rules {
            tss.insert(r.clone());
        }
        let keys: Vec<PacketKey> = best_rules.iter().map(|r| gen.matching_key(r)).collect();
        rows.push(row("PDR-TSS_Best", n, measure_lookups(&tss, &keys)));

        // ---- PDR-TSS worst case: a tuple per rule; match in the last
        // sub-table (we probe with keys of the lowest-priority rules,
        // forcing full traversal since pruning can't help). ----
        let mut gen = Generator::new(13, Profile::TssWorst);
        let worst_rules = gen.rules(n);
        let mut tss = TupleSpace::new();
        for r in &worst_rules {
            tss.insert(r.clone());
        }
        let keys: Vec<PacketKey> = worst_rules[n.saturating_sub(3)..]
            .iter()
            .map(|r| gen.matching_key(r))
            .collect();
        rows.push(row("PDR-TSS_Worst", n, measure_lookups(&tss, &keys)));
    }
    rows
}

/// §5.3 update-latency comparison: mean latency of a single rule update
/// (insert of a fresh rule + removal of an old one), 50 repetitions.
#[derive(Debug, Clone)]
pub struct UpdateRow {
    /// Structure name.
    pub structure: &'static str,
    /// Mean update latency (µs).
    pub update_us: f64,
}

/// Measures update latency on a 100-rule installed base (the
/// session-scale rule counts the paper's update experiment concerns).
pub fn pdr_update() -> Vec<UpdateRow> {
    const BASE: usize = 100;
    const UPDATES: usize = 50;
    let mut gen = Generator::new(21, Profile::Mixed);
    let rules = gen.rules(BASE + UPDATES);
    let (base, fresh) = rules.split_at(BASE);

    fn measure<C: Classifier>(c: &mut C, base: &[PdrRule], fresh: &[PdrRule]) -> f64 {
        for r in base {
            c.insert(r.clone());
        }
        let start = Instant::now();
        for (i, r) in fresh.iter().enumerate() {
            c.insert(r.clone());
            c.remove(base[i].id).expect("present");
        }
        // Each iteration is one insert + one remove = two updates.
        start.elapsed().as_nanos() as f64 / (fresh.len() * 2) as f64 / 1e3
    }

    vec![
        UpdateRow {
            structure: "PDR-LL",
            update_us: measure(&mut LinearList::new(), base, fresh),
        },
        UpdateRow {
            structure: "PDR-TSS",
            update_us: measure(&mut TupleSpace::new(), base, fresh),
        },
        UpdateRow {
            structure: "PDR-PS",
            update_us: measure(&mut PartitionSort::new(), base, fresh),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows_for<'a>(rows: &'a [PdrRow], s: &str, n: usize) -> &'a PdrRow {
        rows.iter()
            .find(|r| r.structure == s && r.rules == n)
            .expect("row")
    }

    #[test]
    fn fig11_shape_holds_at_1k_rules() {
        // Reduced sweep to keep the test fast; the bench runs the full one.
        let rows = fig11(&[1_000]);
        let ll = rows_for(&rows, "PDR-LL", 1_000);
        let ps = rows_for(&rows, "PDR-PS", 1_000);
        let best = rows_for(&rows, "PDR-TSS_Best", 1_000);
        let worst = rows_for(&rows, "PDR-TSS_Worst", 1_000);
        // The paper's ordering at large rule counts:
        // PS ≤ TSS_Best < LL << TSS_Worst.
        assert!(
            ps.lookup_ns < ll.lookup_ns,
            "PS {} < LL {}",
            ps.lookup_ns,
            ll.lookup_ns
        );
        assert!(
            best.lookup_ns < ll.lookup_ns,
            "TSS_Best beats LL at 1k rules"
        );
        assert!(worst.lookup_ns > best.lookup_ns * 5.0, "TSS_Worst blows up");
        // Fig 11b is the reciprocal: PS has the best throughput.
        assert!(ps.mpps >= best.mpps * 0.5);
    }

    #[test]
    fn tss_best_is_flat_across_scale() {
        let rows = fig11(&[100, 5_000]);
        let small = rows_for(&rows, "PDR-TSS_Best", 100).lookup_ns;
        let large = rows_for(&rows, "PDR-TSS_Best", 5_000).lookup_ns;
        assert!(large < small * 3.0, "near-constant: {small} → {large}");
    }

    #[test]
    fn update_ordering_matches_paper() {
        let rows = pdr_update();
        let get = |s: &str| {
            rows.iter()
                .find(|r| r.structure == s)
                .expect("row")
                .update_us
        };
        let ll = get("PDR-LL");
        let tss = get("PDR-TSS");
        let ps = get("PDR-PS");
        // Paper: LL 0.38 µs < TSS 1.41 µs < PS 6.14 µs — and "the
        // difference is not substantial". The robust shape: the linear
        // list updates fastest, and the two advanced structures are the
        // same order of magnitude as each other (their relative order
        // flips with optimization level and allocator noise).
        assert!(ll < tss, "LL {ll} < TSS {tss}");
        assert!(ll < ps, "LL {ll} < PS {ps}");
        assert!(
            tss < ps * 5.0 && ps < tss * 5.0,
            "same magnitude: TSS {tss}, PS {ps}"
        );
        assert!(ps < 100.0, "PS update stays microseconds-scale: {ps}");
    }
}
