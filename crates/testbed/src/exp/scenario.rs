//! Scenario matrix: named incident scenarios × admission policy, scored
//! by the windowed SLO engine — the recovery-time regression experiment.
//!
//! The capacity sweep answers "where is the knee"; this experiment
//! answers the operational question the paper's overload story implies:
//! *when an incident hits, how long until the system is healthy again,
//! and what did admission control pay to get there?* Each
//! [`ScenarioSpec`] from the `l25gc-load` library (flash-crowd,
//! post-outage-reattach, diurnal, stadium-egress) is converted to an
//! absolute scripted profile against the calibrated L²5GC capacity,
//! then run under both [`OverloadPolicy::Shed`] and
//! [`OverloadPolicy::Queue`] with a per-window metrics timeline. The
//! timeline is scored against an [`SloSpec`] whose p99 budget is
//! derived from a short *baseline probe* at the scenario's
//! pre-disturbance rate (so the budget scales with the procedure mix
//! instead of being a magic number), and each run reports recovery
//! time, time-to-first-violation, peak per-window shed, and the
//! violation-span count.
//!
//! Determinism: the probe always runs on the analytic backend, and the
//! main run's seed depends only on (master seed, scenario name) — not
//! the policy or backend — so Shed and Queue face the *same* arrival
//! sequence and the analytic matrix is byte-identical per seed.

use l25gc_core::Deployment;
use l25gc_load::{
    calibrate, Driver, ExecBackend, LoadConfig, LoadReport, OverloadPolicy, ProfileSet,
    ScenarioSpec, ShardConfig, WaitStrategy,
};
use l25gc_obs::{slo, SloSpec};
use l25gc_sim::SimDuration;

/// Per-window shed budget (percent of window arrivals) for derived SLO
/// specs — tighter than the regression gate's 1% so scenario sheds are
/// actually visible as violations.
pub const SLO_SHED_BUDGET_PCT: f64 = 0.5;

/// Derived p99 budget = this multiple of the baseline probe's p99.
pub const SLO_P99_MULTIPLE: f64 = 4.0;

/// Matrix parameters (CLI-settable).
#[derive(Debug, Clone)]
pub struct ScenarioParams {
    /// Fleet size override; `None` uses each scenario's own default.
    pub ues: Option<usize>,
    /// Worker shards.
    pub shards: u16,
    /// Master seed.
    pub seed: u64,
    /// Execution engine for the main runs (the baseline probe is always
    /// analytic so derived budgets match across backends).
    pub backend: ExecBackend,
    /// Metrics snapshot interval — the SLO window width, ms.
    pub metrics_interval_ms: f64,
    /// Explicit SLO spec; `None` derives one per scenario from the
    /// baseline probe.
    pub slo: Option<SloSpec>,
    /// Pin threaded workers to cores (ignored by the analytic backend).
    pub pin: bool,
    /// Wait strategy for threaded-backend poll loops.
    pub wait: WaitStrategy,
    /// Serve a live `GET /metrics` endpoint on this address while the
    /// matrix runs (e.g. `127.0.0.1:0`); `None` disables it.
    pub serve_metrics: Option<String>,
}

impl Default for ScenarioParams {
    fn default() -> ScenarioParams {
        ScenarioParams {
            ues: None,
            shards: 4,
            seed: 0,
            backend: ExecBackend::Analytic,
            metrics_interval_ms: 100.0,
            slo: None,
            pin: false,
            wait: WaitStrategy::default(),
            serve_metrics: None,
        }
    }
}

/// One (scenario, policy) cell of the matrix.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// Library name of the scenario.
    pub scenario: String,
    /// Admission policy past the high-water mark.
    pub policy: OverloadPolicy,
    /// Calibrated sustainable capacity the profile was scaled to,
    /// events/s.
    pub capacity_eps: f64,
    /// Scripted horizon, seconds.
    pub duration_s: f64,
    /// Fleet size the run used.
    pub ues: usize,
    /// Arrivals the generator produced.
    pub offered: u64,
    /// Procedures completed within the horizon.
    pub completed: u64,
    /// Arrivals shed by admission control.
    pub shed: u64,
    /// Arrivals rejected by ring backpressure.
    pub backpressure: u64,
    /// Completed events/s over the horizon.
    pub achieved_eps: f64,
    /// Percent of arrivals shed or backpressured.
    pub loss_pct: f64,
    /// Median latency, ms.
    pub p50_ms: f64,
    /// 95th percentile, ms.
    pub p95_ms: f64,
    /// 99th percentile, ms.
    pub p99_ms: f64,
    /// Queue-wait stage p99 (arrival → service), ms.
    pub queue_wait_p99_ms: f64,
    /// Service stage p99 (shard occupancy), ms.
    pub service_p99_ms: f64,
    /// Completion-transit stage p99, ms.
    pub transit_p99_ms: f64,
    /// Deepest shard queue observed.
    pub peak_depth: usize,
    /// Worst single-window shed count (lanes merged) — the incident's
    /// sharpest edge.
    pub peak_window_shed: u64,
    /// Maximal contiguous violating runs of windows.
    pub violation_spans: usize,
    /// Total violating windows.
    pub violating_windows: usize,
    /// Start of the first violating window, ms from the run origin;
    /// `None` when the run never violated.
    pub time_to_first_violation_ms: Option<f64>,
    /// Recovery time, ms (first violating window → last, with the
    /// spec's clean windows after); `None` when the run never recovered
    /// inside its horizon.
    pub recovery_ms: Option<f64>,
    /// Recovery with the unrecovered case clamped to the observed
    /// horizon — the gated numeric form.
    pub recovery_or_horizon_ms: f64,
    /// The observed horizon (window count × interval), ms — what the
    /// clamp above saturates to.
    pub horizon_ms: f64,
    /// The p99 budget the run was scored against, ms.
    pub p99_budget_ms: f64,
    /// The shed budget the run was scored against, percent.
    pub shed_budget_pct: f64,
    /// Mean per-window burn rate (1.0 = exactly on budget).
    pub burn_rate: f64,
    /// Engine-measured worst outage span (kill instant → replayed
    /// backlog drained), ms; `None` when the scenario scripts no fault.
    pub disruption_ms: Option<f64>,
    /// Procedures re-run from the packet log after a scripted kill.
    pub replayed: u64,
    /// Arrivals shed while their shard was inside a scripted outage.
    pub completions_lost: u64,
    /// Per-shard CPU-busy fraction over the horizon (0..1), comparable
    /// across backends.
    pub shard_utilization: Vec<f64>,
    /// Shard index with the highest busy fraction.
    pub peak_shard: u16,
    /// That shard's busy fraction.
    pub peak_shard_util: f64,
}

/// Index and value of the busiest shard in a utilization vector
/// (shard 0 when the vector is empty).
pub fn peak_shard_util(util: &[f64]) -> (u16, f64) {
    util.iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map_or((0, 0.0), |(i, &u)| (i as u16, u))
}

/// Per-shard backlog bound, expressed as drain time. The capacity
/// sweep's fixed 192-event high-water mark is several *seconds* of
/// backlog at these multi-ms control-plane occupancies — no few-second
/// incident can fill it, and Shed would degenerate into Queue. Sizing
/// the mark in time (the queueing delay admission control is willing to
/// impose) keeps the policies distinct at any calibrated capacity.
pub const HIGH_WATER_DRAIN_S: f64 = 0.25;

fn scenario_shard_cfg(shards: u16, policy: OverloadPolicy, capacity_eps: f64) -> ShardConfig {
    let hw = ((HIGH_WATER_DRAIN_S * capacity_eps / f64::from(shards)).ceil() as usize).max(4);
    ShardConfig {
        shards,
        high_water: hw,
        policy,
        // 4x the mark: room for Queue to actually queue past it.
        ring_capacity: (hw * 4).max(16),
    }
}

/// FNV-1a over the scenario name: a stable per-scenario tag for seed
/// derivation (names, unlike enum tags, are the scenario identity).
fn scenario_tag(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Distinct deterministic seed per (master seed, scenario, salt).
/// Deliberately independent of policy and backend: every cell of a
/// scenario's row faces the identical arrival sequence.
fn scenario_seed(params: &ScenarioParams, name: &str, salt: u64) -> u64 {
    params
        .seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(scenario_tag(name))
        .wrapping_add(salt)
}

fn run(cfg: LoadConfig, profiles: &ProfileSet) -> LoadReport {
    Driver::new(cfg)
        .expect("scenario matrix builds valid configs")
        .run(profiles)
}

/// Derives the SLO spec for `spec`: a 1 s analytic probe at the
/// scenario's pre-disturbance baseline rate, whose whole-run p99 ×
/// [`SLO_P99_MULTIPLE`] becomes the per-window budget. The probe uses
/// its own seed salt so it never perturbs the main run's stream.
pub fn derive_slo(
    spec: &ScenarioSpec,
    params: &ScenarioParams,
    profiles: &ProfileSet,
    capacity_eps: f64,
) -> SloSpec {
    let cfg = LoadConfig::builder()
        .ues(params.ues.unwrap_or(spec.ues))
        .shard_cfg(scenario_shard_cfg(
            params.shards,
            OverloadPolicy::Shed,
            capacity_eps,
        ))
        .mix(spec.mix.clone())
        .offered_eps(spec.baseline_fraction() * capacity_eps)
        .duration(SimDuration::from_secs(1))
        .seed(scenario_seed(params, spec.name, 1))
        .backend(ExecBackend::Analytic)
        .build()
        .expect("baseline probe config is valid");
    let probe = run(cfg, profiles);
    let budget_ns = ((probe.p99.as_nanos() as f64 * SLO_P99_MULTIPLE) as u64).max(1);
    SloSpec::new(budget_ns, SLO_SHED_BUDGET_PCT)
}

fn run_cell(
    spec: &ScenarioSpec,
    params: &ScenarioParams,
    cfg_shards: ShardConfig,
    profiles: &ProfileSet,
    capacity_eps: f64,
    slo_spec: &SloSpec,
) -> ScenarioOutcome {
    let ues = params.ues.unwrap_or(spec.ues);
    let mut builder = LoadConfig::builder()
        .ues(ues)
        .shard_cfg(cfg_shards)
        .mix(spec.mix.clone())
        .script(spec.absolute_segments(capacity_eps))
        .duration(spec.duration())
        .seed(scenario_seed(params, spec.name, 0))
        .backend(params.backend)
        .metrics_interval(SimDuration::from_secs_f64(
            params.metrics_interval_ms.max(1.0) / 1e3,
        ))
        .pin(params.pin)
        .wait(params.wait);
    if let Some(addr) = &params.serve_metrics {
        builder = builder.serve_metrics(addr.clone());
    }
    if let Some(fault) = &spec.fault {
        builder = builder.fault(fault.clone());
    }
    let cfg = builder.build().expect("scenario run config is valid");
    let mut r = run(cfg, profiles);
    let tl = r
        .timeline
        .take()
        .expect("scenario runs always carry a timeline");
    let report = slo::evaluate(&tl, slo_spec);
    let denom = r.offered.max(1) as f64;
    ScenarioOutcome {
        scenario: spec.name.to_string(),
        policy: cfg_shards.policy,
        capacity_eps,
        duration_s: spec.duration().as_secs_f64(),
        ues,
        offered: r.offered,
        completed: r.completed,
        shed: r.shed,
        backpressure: r.backpressure,
        achieved_eps: r.achieved_eps,
        loss_pct: 100.0 * (r.shed + r.backpressure) as f64 / denom,
        p50_ms: r.p50.as_millis_f64(),
        p95_ms: r.p95.as_millis_f64(),
        p99_ms: r.p99.as_millis_f64(),
        queue_wait_p99_ms: r.queue_wait_p99.as_millis_f64(),
        service_p99_ms: r.service_p99.as_millis_f64(),
        transit_p99_ms: r.transit_p99.as_millis_f64(),
        peak_depth: r.peak_depth,
        peak_window_shed: tl.peak_window_shed(),
        violation_spans: report.spans.len(),
        violating_windows: report.violating_windows,
        time_to_first_violation_ms: report.time_to_first_violation_ns.map(|ns| ns as f64 / 1e6),
        recovery_ms: report.recovery_ns.map(|ns| ns as f64 / 1e6),
        recovery_or_horizon_ms: report.recovery_ns_or_horizon() as f64 / 1e6,
        horizon_ms: (report.window_count as u64 * report.interval_ns) as f64 / 1e6,
        p99_budget_ms: slo_spec.p99_budget_ns as f64 / 1e6,
        shed_budget_pct: slo_spec.shed_budget_pct,
        burn_rate: report.burn_rate,
        disruption_ms: r.disruption.map(|d| d.disruption_ms),
        replayed: r.disruption.map_or(0, |d| d.replayed),
        completions_lost: r.disruption.map_or(0, |d| d.completions_lost),
        peak_shard: peak_shard_util(&r.shard_utilization).0,
        peak_shard_util: peak_shard_util(&r.shard_utilization).1,
        shard_utilization: r.shard_utilization,
    }
}

/// Runs one scenario under one policy (calibrating L²5GC and deriving
/// the SLO budget itself) — the single-cell entry point.
pub fn run_scenario(
    spec: &ScenarioSpec,
    params: &ScenarioParams,
    policy: OverloadPolicy,
) -> ScenarioOutcome {
    let profiles = calibrate(Deployment::L25gc);
    let capacity_eps =
        f64::from(params.shards) / profiles.mean_occupancy(&spec.mix.weights).as_secs_f64();
    let slo_spec = params
        .slo
        .unwrap_or_else(|| derive_slo(spec, params, &profiles, capacity_eps));
    run_cell(
        spec,
        params,
        scenario_shard_cfg(params.shards, policy, capacity_eps),
        &profiles,
        capacity_eps,
        &slo_spec,
    )
}

/// The full matrix: each spec × {Shed, Queue}, in (scenario, policy)
/// order. Calibration runs once; capacity and the derived SLO budget
/// are per-scenario (the mix changes the mean occupancy).
pub fn run_matrix(specs: &[ScenarioSpec], params: &ScenarioParams) -> Vec<ScenarioOutcome> {
    let profiles = calibrate(Deployment::L25gc);
    let mut out = Vec::with_capacity(specs.len() * 2);
    for spec in specs {
        let capacity_eps =
            f64::from(params.shards) / profiles.mean_occupancy(&spec.mix.weights).as_secs_f64();
        let slo_spec = params
            .slo
            .unwrap_or_else(|| derive_slo(spec, params, &profiles, capacity_eps));
        for policy in [OverloadPolicy::Shed, OverloadPolicy::Queue] {
            out.push(run_cell(
                spec,
                params,
                scenario_shard_cfg(params.shards, policy, capacity_eps),
                &profiles,
                capacity_eps,
                &slo_spec,
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_params() -> ScenarioParams {
        ScenarioParams {
            ues: Some(20_000),
            shards: 2,
            seed: 7,
            ..ScenarioParams::default()
        }
    }

    /// A library spec with every segment duration scaled by `f` — same
    /// rate shape, shorter horizon, for wall-clock-bounded tests.
    fn shrunk(name: &str, f: f64) -> ScenarioSpec {
        let mut spec = ScenarioSpec::by_name(name).expect("library name");
        for s in &mut spec.segments {
            s.duration_s *= f;
        }
        // Fault times are absolute into the scenario; compress them with
        // the segments or the kill falls off the shortened horizon.
        spec.fault = spec.fault.map(|p| p.scaled(f));
        spec
    }

    #[test]
    fn matrix_covers_every_cell_and_reports_recovery() {
        let specs = ScenarioSpec::library();
        let rows = run_matrix(&specs, &small_params());
        assert_eq!(rows.len(), specs.len() * 2);
        for (i, spec) in specs.iter().enumerate() {
            for (j, policy) in [OverloadPolicy::Shed, OverloadPolicy::Queue]
                .iter()
                .enumerate()
            {
                let r = &rows[i * 2 + j];
                assert_eq!(r.scenario, spec.name);
                assert_eq!(r.policy, *policy);
                assert!(r.offered > 0, "{}: empty stream", spec.name);
                assert!(r.completed > 0, "{}: nothing completed", spec.name);
                assert!(r.capacity_eps > 0.0);
                assert!(r.p99_budget_ms > 0.0);
                // Recovery (or its horizon clamp) is always a finite,
                // positive number — the gated form.
                assert!(
                    r.recovery_or_horizon_ms >= 0.0 && r.recovery_or_horizon_ms.is_finite(),
                    "{}/{:?}: unreportable recovery",
                    spec.name,
                    policy
                );
                assert!(r.horizon_ms >= r.duration_s * 1e3 * 0.99);
                // Utilization anatomy: one busy fraction per shard, the
                // peak picked from them, all inside (0, 1].
                assert_eq!(r.shard_utilization.len(), 2, "{}: lanes", spec.name);
                assert!(
                    r.peak_shard_util > 0.0 && r.peak_shard_util <= 1.0,
                    "{}/{:?}: peak shard util {} out of range",
                    spec.name,
                    policy,
                    r.peak_shard_util
                );
                assert_eq!(
                    r.shard_utilization[r.peak_shard as usize],
                    r.peak_shard_util
                );
                // Violations and their onset marker agree.
                assert_eq!(
                    r.time_to_first_violation_ms.is_some(),
                    r.violating_windows > 0,
                    "{}/{:?}: onset marker out of sync",
                    spec.name,
                    policy
                );
            }
        }
        // The three overload incidents must actually disturb at least
        // one policy — otherwise the library spec is mis-scaled.
        // (Diurnal's busy hour sits below capacity: it is the control
        // that shows the derived budget is not trivially violated.)
        for name in ["flash-crowd", "post-outage-reattach", "stadium-egress"] {
            let disturbed = rows
                .iter()
                .filter(|r| r.scenario == name)
                .any(|r| r.violating_windows > 0);
            assert!(disturbed, "{name}: no cell ever violated");
        }
        // The failover incident carries a disruption block; the pure
        // load profiles do not.
        for r in &rows {
            if r.scenario == "amf-restart" {
                let d = r.disruption_ms.expect("amf-restart measures disruption");
                assert!(d > 0.0, "zero-width outage");
                assert!(r.replayed > 0, "the mid-plateau kill replays backlog");
            } else {
                assert!(r.disruption_ms.is_none(), "{}: phantom fault", r.scenario);
                assert_eq!(r.replayed, 0);
            }
        }
    }

    #[test]
    fn shed_recovers_no_slower_than_queue_on_flash_crowd() {
        let spec = ScenarioSpec::by_name("flash-crowd").unwrap();
        let params = small_params();
        let shed = run_scenario(&spec, &params, OverloadPolicy::Shed);
        let queue = run_scenario(&spec, &params, OverloadPolicy::Queue);
        // Same seed, same arrivals: the policies face one incident.
        assert_eq!(shed.offered, queue.offered);
        // Shedding bounds the backlog at the high-water mark, so once
        // the spike ends the system is clean almost immediately; queue
        // must still drain what it admitted.
        assert!(
            shed.recovery_or_horizon_ms <= queue.recovery_or_horizon_ms,
            "shed {} ms must not recover slower than queue {} ms",
            shed.recovery_or_horizon_ms,
            queue.recovery_or_horizon_ms
        );
        assert!(shed.shed > 0, "the 1.8x spike must trip admission control");
        assert_eq!(queue.shed, 0, "queue policy never sheds");
        // And the tail cost points the other way.
        assert!(queue.p99_ms >= shed.p99_ms);
    }

    #[test]
    fn matrix_is_deterministic_per_seed() {
        let specs = vec![ScenarioSpec::by_name("flash-crowd").unwrap()];
        let a = run_matrix(&specs, &small_params());
        let b = run_matrix(&specs, &small_params());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.offered, y.offered);
            assert_eq!(x.completed, y.completed);
            assert_eq!(x.shed, y.shed);
            assert_eq!(x.p99_ms, y.p99_ms);
            assert_eq!(x.recovery_or_horizon_ms, y.recovery_or_horizon_ms);
            assert_eq!(x.time_to_first_violation_ms, y.time_to_first_violation_ms);
        }
    }

    /// ISSUE 7 satellite: with admission control effectively disabled
    /// (Queue policy, high-water/ring far above any backlog the shrunken
    /// profiles can build), the analytic and threaded backends agree on
    /// completed counts for every library scenario — the scripted
    /// generator feeds both from the same virtual stream.
    #[test]
    fn backends_agree_on_completed_counts_when_unshed() {
        let params = ScenarioParams {
            ues: Some(5_000),
            shards: 2,
            seed: 11,
            ..ScenarioParams::default()
        };
        let profiles = calibrate(Deployment::L25gc);
        for name in l25gc_load::SCENARIO_NAMES {
            let spec = shrunk(name, 0.2);
            let capacity_eps =
                f64::from(params.shards) / profiles.mean_occupancy(&spec.mix.weights).as_secs_f64();
            let wide = ShardConfig {
                shards: params.shards,
                high_water: 1 << 15,
                policy: OverloadPolicy::Queue,
                ring_capacity: 1 << 15,
            };
            let slo_spec = SloSpec::default_gate();
            let cell = |backend| {
                let p = ScenarioParams {
                    backend,
                    ..params.clone()
                };
                run_cell(&spec, &p, wide, &profiles, capacity_eps, &slo_spec)
            };
            let a = cell(ExecBackend::Analytic);
            let t = cell(ExecBackend::Threaded);
            assert_eq!(
                a.shed + a.backpressure,
                0,
                "{name}: analytic run lost events"
            );
            assert_eq!(
                t.shed + t.backpressure,
                0,
                "{name}: threaded run lost events"
            );
            assert_eq!(a.offered, t.offered, "{name}: streams diverged");
            assert_eq!(
                a.completed, t.completed,
                "{name}: backends disagree on completed"
            );
        }
    }
}
