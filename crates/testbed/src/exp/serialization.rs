//! Fig 6 & Fig 9: serialization cost and communication speedup.
//!
//! Fig 6 is a **wall-clock measurement**: serialize and deserialize the
//! `PostSmContextsRequest` body with each codec from `l25gc-codec` and
//! time it. Fig 9 combines the measured serialization with the modeled
//! channel costs to report the per-message exchange speedup of the
//! shared-memory SBI over HTTP (the paper's 13× average).

use std::time::Instant;

use l25gc_codec::{SmContextCreateData, SmContextUpdateData, UeAuthenticationRequest};
use l25gc_nfv::cost::{CostModel, SerFormat, Transport};

/// One Fig 6 bar group: costs in nanoseconds per operation.
#[derive(Debug, Clone)]
pub struct SerializationRow {
    /// Codec name.
    pub codec: &'static str,
    /// Serialization time (ns).
    pub serialize_ns: f64,
    /// Deserialization time (ns). For the flat codec this is the
    /// zero-parse field access a handler actually performs.
    pub deserialize_ns: f64,
    /// Encoded size (bytes).
    pub wire_bytes: usize,
}

fn time_per_op(iters: u32, mut f: impl FnMut()) -> f64 {
    // Warm up, then measure.
    for _ in 0..iters / 10 + 1 {
        f();
    }
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / f64::from(iters)
}

/// Measures Fig 6 for the `PostSmContextsRequest` message.
pub fn fig6_serialization() -> Vec<SerializationRow> {
    let msg = SmContextCreateData::sample();
    let iters = 2_000;

    let json_text = msg.to_json();
    let proto_bytes = msg.to_proto();
    let flat_bytes = msg.to_flat();

    let mut rows = Vec::new();
    rows.push(SerializationRow {
        codec: "JSON (free5GC REST)",
        serialize_ns: time_per_op(iters, || {
            std::hint::black_box(msg.to_json());
        }),
        deserialize_ns: time_per_op(iters, || {
            std::hint::black_box(SmContextCreateData::from_json(&json_text).unwrap());
        }),
        wire_bytes: json_text.len(),
    });
    rows.push(SerializationRow {
        codec: "Protobuf (gRPC SBI)",
        serialize_ns: time_per_op(iters, || {
            std::hint::black_box(msg.to_proto());
        }),
        deserialize_ns: time_per_op(iters, || {
            std::hint::black_box(SmContextCreateData::from_proto(&proto_bytes).unwrap());
        }),
        wire_bytes: proto_bytes.len(),
    });
    rows.push(SerializationRow {
        codec: "FlatBuffers (Neutrino)",
        serialize_ns: time_per_op(iters, || {
            std::hint::black_box(msg.to_flat());
        }),
        deserialize_ns: time_per_op(iters, || {
            std::hint::black_box(SmContextCreateData::flat_peek(&flat_bytes).unwrap());
        }),
        wire_bytes: flat_bytes.len(),
    });
    rows.push(SerializationRow {
        codec: "L25GC shm descriptor",
        // Passing a typed struct by descriptor: no serialization at all;
        // measure the cost of moving a 64-byte descriptor.
        serialize_ns: time_per_op(iters, || {
            let desc = [0u64; 8];
            std::hint::black_box(desc);
        }),
        deserialize_ns: 0.0,
        wire_bytes: core::mem::size_of::<SmContextCreateData>(),
    });
    rows
}

/// One Fig 9 bar: modeled exchange latency and speedup for a message.
#[derive(Debug, Clone)]
pub struct SpeedupRow {
    /// Message name.
    pub message: &'static str,
    /// Request+response over HTTP/JSON (µs).
    pub http_us: f64,
    /// Request+response over shared memory (µs).
    pub shm_us: f64,
    /// http / shm.
    pub speedup: f64,
}

/// Computes Fig 9 for the selected control-plane messages.
pub fn fig9_speedup(cost: &CostModel) -> (Vec<SpeedupRow>, f64) {
    let msgs: Vec<(&'static str, usize, usize)> = vec![
        (
            "PostSmContexts (AMF→SMF)",
            SmContextCreateData::sample().to_json().len(),
            260,
        ),
        (
            "UpdateSmContext (AMF→SMF)",
            SmContextUpdateData::sample().to_json().len(),
            280,
        ),
        (
            "UeAuthentication (AMF→AUSF)",
            UeAuthenticationRequest::sample().to_json().len(),
            540,
        ),
        ("AmPolicyCreate (AMF→PCF)", 420, 680),
        ("UecmRegistration (AMF→UDM)", 380, 120),
        ("SdmGetData (AMF→UDM)", 150, 900),
    ];
    let mut rows = Vec::new();
    for (name, req, resp) in msgs {
        let http = cost.transaction(Transport::HttpRest, SerFormat::Json, req, resp);
        let shm = cost.transaction(Transport::SharedMemory, SerFormat::None, req, resp);
        rows.push(SpeedupRow {
            message: name,
            http_us: http.as_micros_f64(),
            shm_us: shm.as_micros_f64(),
            speedup: http.as_secs_f64() / shm.as_secs_f64(),
        });
    }
    let avg = rows.iter().map(|r| r.speedup).sum::<f64>() / rows.len() as f64;
    (rows, avg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_ordering_matches_paper() {
        let rows = fig6_serialization();
        let get = |name: &str| {
            rows.iter()
                .find(|r| r.codec.starts_with(name))
                .expect("row present")
                .clone()
        };
        let json = get("JSON");
        let proto = get("Protobuf");
        let flat = get("FlatBuffers");
        let shm = get("L25GC");
        // Serialization: JSON > protobuf > flatbuffers >> shm.
        assert!(
            json.serialize_ns > proto.serialize_ns,
            "JSON slower than proto"
        );
        assert!(
            proto.serialize_ns > shm.serialize_ns,
            "proto slower than shm"
        );
        // Deserialization: flat's zero-parse read beats both full parsers.
        assert!(json.deserialize_ns > flat.deserialize_ns);
        assert!(proto.deserialize_ns > flat.deserialize_ns);
        // Wire sizes: JSON is the fattest.
        assert!(json.wire_bytes > proto.wire_bytes);
    }

    #[test]
    fn fig9_average_near_13x() {
        let (rows, avg) = fig9_speedup(&CostModel::paper());
        assert_eq!(rows.len(), 6);
        assert!((11.0..15.0).contains(&avg), "paper: ~13x, got {avg:.1}");
        for r in &rows {
            assert!(r.speedup > 5.0, "{} speedup {}", r.message, r.speedup);
        }
    }
}
