//! Fig 17 (Appendix C): repeated handovers against 10 concurrent TCP
//! connections.
//!
//! "UE launches 10 TCP connections ... and undergoes handovers every few
//! seconds" over a 100 Mbps / 50 ms-RTT bottleneck. free5GC's stall
//! (> 200 ms) triggers spurious RTO expirations on every handover,
//! collapsing cwnd and losing goodput; the paper reports 442 MB (L²5GC)
//! vs 416 MB (free5GC) transferred over the run.

use l25gc_core::Deployment;
use l25gc_ran::MSS;
use l25gc_sim::{Engine, SimDuration};

use crate::netem::NetEm;
use crate::world::World;

/// Fig 17 summary for one system.
#[derive(Debug, Clone)]
pub struct TcpImpactRow {
    /// System name.
    pub system: &'static str,
    /// Total bytes transferred during the run (MB).
    pub transferred_mb: f64,
    /// Maximum RTT observed across flows (ms).
    pub max_rtt_ms: f64,
    /// RTO timeouts across flows.
    pub timeouts: u64,
    /// Spurious retransmissions across flows.
    pub spurious_retransmissions: u64,
    /// Handovers performed.
    pub handovers: usize,
}

/// Runs Fig 17: `flows` bulk TCP connections for `duration`, handing
/// over every `ho_interval`.
pub fn run_tcp_impact(
    deployment: Deployment,
    flows: u32,
    duration: SimDuration,
    ho_interval: SimDuration,
    seed: u64,
) -> TcpImpactRow {
    let mut eng = Engine::new(17 ^ seed, World::new(deployment, 2, 1));
    World::bring_up_ue(&mut eng, 1);
    eng.world_mut().netem = NetEm::appendix_100mbps_50ms();

    eng.schedule_in(SimDuration::ZERO, move |w: &mut World, ctx| {
        for f in 0..flows {
            w.start_tcp(1, f, None, ctx); // unbounded flent-style streams
        }
    });

    // Periodic handovers for the whole run.
    let mut at = ho_interval;
    while at < duration {
        eng.schedule_in(at, |w: &mut World, ctx| {
            let current = w.ran.ues[&1].serving_gnb;
            let target = if current == 1 { 2 } else { 1 };
            let out = w.ran.trigger_handover(1, target);
            w.send_after(ctx, out.delay, out.env);
        });
        at += ho_interval;
    }

    eng.run_for_with_mailbox(duration);

    let w = eng.world();
    let senders = &w.apps.tcp;
    let transferred: u64 = senders
        .values()
        .map(|s| s.acked_segments() * MSS as u64)
        .sum();
    let max_rtt_us = senders
        .values()
        .filter_map(|s| s.rtt_trace.max())
        .fold(0.0f64, f64::max);
    let handovers = w
        .core
        .events
        .iter()
        .filter(|e| e.event == l25gc_core::UeEvent::Handover)
        .count();
    TcpImpactRow {
        system: match deployment {
            Deployment::Free5gc => "free5GC",
            Deployment::OnvmUpf => "ONVM-UPF",
            Deployment::L25gc => "L25GC",
        },
        transferred_mb: transferred as f64 / 1e6,
        max_rtt_ms: max_rtt_us / 1000.0,
        timeouts: senders.values().map(|s| s.timeouts).sum(),
        spurious_retransmissions: senders.values().map(|s| s.spurious_retransmissions).sum(),
        handovers,
    }
}

/// Fig 17 with the paper's parameters (scaled to a 40 s run: the paper
/// plots ~35 s of the experiment).
pub fn fig17(seed: u64) -> Vec<TcpImpactRow> {
    let duration = SimDuration::from_secs(40);
    let interval = SimDuration::from_secs(5);
    vec![
        run_tcp_impact(Deployment::Free5gc, 10, duration, interval, seed),
        run_tcp_impact(Deployment::L25gc, 10, duration, interval, seed),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig17_l25gc_sustains_goodput() {
        let rows = fig17(0);
        let free = &rows[0];
        let l25 = &rows[1];
        assert!(
            free.handovers >= 6,
            "handovers executed: {}",
            free.handovers
        );
        assert!(l25.handovers >= 6);

        // free5GC times out on handovers; L25GC doesn't (RTT cap ≈ 130 ms
        // + 50 ms path < senders' RTO of ~max(200, srtt+4var) once srtt
        // ≈ 50 ms... the paper reports zero timeouts for L25GC).
        assert!(free.timeouts > 0, "free5GC sees RTO expirations");
        assert!(
            l25.timeouts < free.timeouts,
            "L25GC times out less: {} vs {}",
            l25.timeouts,
            free.timeouts
        );
        assert!(free.spurious_retransmissions > l25.spurious_retransmissions);

        // Goodput: L25GC transfers more (paper: 442 vs 416 MB on their
        // link/duration; the *ordering* and a single-digit-% gap is the
        // reproducible shape).
        assert!(
            l25.transferred_mb > free.transferred_mb,
            "L25GC {} MB vs free5GC {} MB",
            l25.transferred_mb,
            free.transferred_mb
        );
        // L25GC's worst RTT is bounded by the handover stall + path RTT
        // (~130 + 50 ms). free5GC's worst *samples* are censored by
        // Karn's rule (its stalled segments get retransmitted and are
        // excluded from RTT sampling), so the free5GC penalty shows up
        // as timeouts/goodput above, not in max-RTT.
        assert!(
            (100.0..320.0).contains(&l25.max_rtt_ms),
            "L25GC max RTT {}",
            l25.max_rtt_ms
        );
    }
}
