//! Fig 12: impact of handovers on web page load time (§5.4.1).
//!
//! Six parallel TCP connections fetch a ~77 MB page over a 30 Mbps /
//! 20 ms-RTT bottleneck while the UE hands over between two gNBs every
//! few seconds. free5GC's longer handover stall (> 200 ms Linux min-RTO)
//! causes spurious timeouts and cwnd collapses; L²5GC's shorter stall
//! does not.

use l25gc_core::Deployment;
use l25gc_ran::{paper_page, PageLoad};
use l25gc_sim::{Engine, SimDuration};

use crate::netem::NetEm;
use crate::world::World;

/// Fig 12 summary for one system.
#[derive(Debug, Clone)]
pub struct PltRow {
    /// System name.
    pub system: &'static str,
    /// Page load time (s).
    pub plt_s: f64,
    /// Maximum extra delay a packet saw during a handover (ms).
    pub max_stall_ms: f64,
    /// RTO timeouts across connections.
    pub timeouts: u64,
    /// Spurious retransmissions across connections.
    pub spurious_retransmissions: u64,
    /// Total retransmissions.
    pub retransmissions: u64,
}

/// Runs the page-load experiment with handovers every `ho_interval`.
pub fn run_plt(deployment: Deployment, ho_interval: SimDuration, seed: u64) -> PltRow {
    let mut eng = Engine::new(9 ^ seed, World::new(deployment, 2, 1));
    World::bring_up_ue(&mut eng, 1);
    eng.world_mut().netem = NetEm::web_30mbps_20ms();

    // Build the page, start its six connections, and arm the ping-pong
    // handover chain (gNB 1 ↔ 2 every `ho_interval` until completion).
    eng.schedule_in(SimDuration::ZERO, move |w: &mut World, ctx| {
        let (pl, senders) = PageLoad::new(1, &paper_page(), 6, 0, ctx.now());
        w.apps.page = Some(pl);
        for s in senders {
            w.start_tcp_sender(s, ctx);
        }
        w.arm_next_handover(ctx, ho_interval);
    });

    eng.run_for_with_mailbox(SimDuration::from_secs(120));

    let w = eng.world();
    let page = w.apps.page.as_ref().expect("page experiment");
    assert!(
        page.is_complete(),
        "page must finish within the experiment window"
    );
    let senders = &w.apps.tcp;
    let max_stall_us = senders
        .values()
        .filter_map(|s| s.rtt_trace.max())
        .fold(0.0f64, f64::max);
    PltRow {
        system: match deployment {
            Deployment::Free5gc => "free5GC",
            Deployment::OnvmUpf => "ONVM-UPF",
            Deployment::L25gc => "L25GC",
        },
        plt_s: page.plt().expect("complete").as_secs_f64(),
        max_stall_ms: max_stall_us / 1000.0,
        timeouts: page.timeouts(senders),
        spurious_retransmissions: page.spurious_retransmissions(senders),
        retransmissions: senders.values().map(|s| s.retransmissions).sum(),
    }
}

impl World {
    /// Arms the next ping-pong handover (used by the Fig 12 harness).
    pub fn arm_next_handover(&mut self, ctx: &mut l25gc_sim::Ctx, interval: SimDuration) {
        self.mailbox.send_in(ctx, interval, move |w, ctx| {
            if w.apps
                .page
                .as_ref()
                .map(|p| p.is_complete())
                .unwrap_or(true)
            {
                return;
            }
            let current = w.ran.ues[&1].serving_gnb;
            let target = if current == 1 { 2 } else { 1 };
            let out = w.ran.trigger_handover(1, target);
            w.send_after(ctx, out.delay, out.env);
            w.arm_next_handover(ctx, interval);
        });
    }
}

/// Fig 12: free5GC vs L²5GC with intermittent handovers (every 5 s).
pub fn fig12(seed: u64) -> Vec<PltRow> {
    let interval = SimDuration::from_secs(5);
    vec![
        run_plt(Deployment::Free5gc, interval, seed),
        run_plt(Deployment::L25gc, interval, seed),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig12_l25gc_improves_plt() {
        let rows = fig12(0);
        let free = &rows[0];
        let l25 = &rows[1];
        // Paper: 32 s vs 28 s, a 12.5% QoE improvement. Our TCP model
        // recovers from the spurious timeouts faster than the real
        // Firefox/Linux stack, so the measured gain is smaller; the
        // *ordering* and the timeout mechanism are the reproducible
        // shape (see EXPERIMENTS.md).
        assert!(
            l25.plt_s < free.plt_s,
            "L25GC must load faster: {} vs {}",
            l25.plt_s,
            free.plt_s
        );
        let gain = (free.plt_s - l25.plt_s) / free.plt_s * 100.0;
        assert!(
            (0.5..30.0).contains(&gain),
            "PLT gain {gain:.1}% (paper 12.5%)"
        );
        // The floor: ~77 MB at 30 Mbps is ≥ 20 s.
        assert!(l25.plt_s > 18.0, "PLT {} s", l25.plt_s);
        assert!(free.plt_s < 60.0);

        // The mechanism: free5GC's stall exceeds the 200 ms min RTO and
        // causes timeouts + spurious retransmissions; L25GC avoids them.
        assert!(
            free.max_stall_ms > 200.0,
            "free5GC stall {} ms exceeds min RTO",
            free.max_stall_ms
        );
        assert!(free.timeouts > 0, "free5GC sees spurious timeouts");
        assert!(free.spurious_retransmissions > 0);
        assert!(
            l25.timeouts < free.timeouts,
            "L25GC times out less: {} vs {}",
            l25.timeouts,
            free.timeouts
        );
        assert!(
            l25.spurious_retransmissions < free.spurious_retransmissions,
            "L25GC retransmits less spuriously"
        );
    }
}
