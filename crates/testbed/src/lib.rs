//! # l25gc-testbed — experiment harnesses
//!
//! Wires RAN + traffic + (optionally) the LB/resiliency layer around one
//! or two 5GC units and reproduces every figure and table of the paper's
//! evaluation. See DESIGN.md §4 for the experiment index.

pub mod exp;
pub mod netem;
pub mod trace;
pub mod world;

pub use netem::{NetEm, Shaper};
pub use world::{Apps, Resilience, World};
