//! Network emulation on the N6 (DN ↔ UPF) link: bottleneck rate shaping
//! and added propagation delay — the `tc`/netem role in the paper's
//! testbed ("we set the aggregate bottleneck bandwidth as 30Mbps and
//! round-trip delay (RTT) of 20ms").

use l25gc_sim::{SimDuration, SimTime};

/// A rate-limited, delay-added link direction.
#[derive(Debug, Clone)]
pub struct Shaper {
    /// Link rate in bits per second (`None` = unshaped).
    pub rate_bps: Option<f64>,
    /// One-way propagation delay.
    pub prop: SimDuration,
    /// Queue limit in packets; beyond this, packets drop (`None` =
    /// unbounded).
    pub queue_pkts: Option<usize>,
    busy_until: SimTime,
}

impl Shaper {
    /// An unshaped direction (zero delay, infinite rate).
    pub fn unshaped() -> Shaper {
        Shaper {
            rate_bps: None,
            prop: SimDuration::ZERO,
            queue_pkts: None,
            busy_until: SimTime::ZERO,
        }
    }

    /// A shaped direction.
    pub fn new(rate_bps: f64, prop: SimDuration, queue_pkts: Option<usize>) -> Shaper {
        Shaper {
            rate_bps: Some(rate_bps),
            prop,
            queue_pkts,
            busy_until: SimTime::ZERO,
        }
    }

    /// Computes the transit delay for a packet of `size` bytes arriving
    /// now, updating the queue state. `None` means the queue overflowed
    /// and the packet drops.
    pub fn transit(&mut self, now: SimTime, size: usize) -> Option<SimDuration> {
        match self.rate_bps {
            None => Some(self.prop),
            Some(rate) => {
                let ser = SimDuration::from_secs_f64(size as f64 * 8.0 / rate);
                // Queue occupancy in packets ≈ backlog time / one MTU time.
                if let Some(limit) = self.queue_pkts {
                    let backlog = self.busy_until.duration_since(now);
                    let per_pkt = SimDuration::from_secs_f64(1500.0 * 8.0 / rate);
                    let occupancy = (backlog.as_secs_f64() / per_pkt.as_secs_f64()) as usize;
                    if occupancy >= limit {
                        return None;
                    }
                }
                let start = self.busy_until.max(now);
                self.busy_until = start + ser;
                Some(self.busy_until.duration_since(now) + self.prop)
            }
        }
    }
}

/// Both directions of the N6 link.
#[derive(Debug, Clone)]
pub struct NetEm {
    /// DN → UPF (downlink toward UEs).
    pub dl: Shaper,
    /// UPF → DN (uplink/acks).
    pub ul: Shaper,
    /// Downlink packets dropped at the shaper queue.
    pub dl_drops: u64,
}

impl NetEm {
    /// No shaping at all (the data-plane microbenchmarks).
    pub fn off() -> NetEm {
        NetEm {
            dl: Shaper::unshaped(),
            ul: Shaper::unshaped(),
            dl_drops: 0,
        }
    }

    /// The §5.4.1 web experiment: 30 Mbps bottleneck, 20 ms RTT. The
    /// queue is sized like a shaped operator link (~240 ms worth), so
    /// six parallel connections can ramp without a synchronized loss
    /// collapse at startup.
    pub fn web_30mbps_20ms() -> NetEm {
        let prop = SimDuration::from_millis(10);
        NetEm {
            dl: Shaper::new(30e6, prop, Some(600)),
            ul: Shaper::new(30e6, prop, None),
            dl_drops: 0,
        }
    }

    /// The Appendix C experiment: 100 Mbps bottleneck, 50 ms RTT.
    pub fn appendix_100mbps_50ms() -> NetEm {
        let prop = SimDuration::from_millis(25);
        NetEm {
            dl: Shaper::new(100e6, prop, Some(1000)),
            ul: Shaper::new(100e6, prop, None),
            dl_drops: 0,
        }
    }

    /// The §5.5 failover experiment: 30 Mbps toward a single UE.
    pub fn failover_30mbps() -> NetEm {
        let prop = SimDuration::from_millis(5);
        NetEm {
            dl: Shaper::new(30e6, prop, Some(300)),
            ul: Shaper::new(30e6, prop, None),
            dl_drops: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unshaped_is_instant() {
        let mut s = Shaper::unshaped();
        assert_eq!(s.transit(SimTime::ZERO, 1500), Some(SimDuration::ZERO));
    }

    #[test]
    fn serialization_delay_accumulates_under_load() {
        // 30 Mbps, 1500 B packets: 400 µs each on the wire.
        let mut s = Shaper::new(30e6, SimDuration::ZERO, None);
        let d1 = s.transit(SimTime::ZERO, 1500).unwrap();
        let d2 = s.transit(SimTime::ZERO, 1500).unwrap();
        let d3 = s.transit(SimTime::ZERO, 1500).unwrap();
        assert!((d1.as_micros_f64() - 400.0).abs() < 1.0);
        assert!((d2.as_micros_f64() - 800.0).abs() < 1.0);
        assert!((d3.as_micros_f64() - 1200.0).abs() < 1.0);
    }

    #[test]
    fn queue_drains_over_time() {
        let mut s = Shaper::new(30e6, SimDuration::ZERO, None);
        s.transit(SimTime::ZERO, 1500);
        // Arrive after the first packet fully serialized: no queueing.
        let later = SimTime::ZERO + SimDuration::from_millis(1);
        let d = s.transit(later, 1500).unwrap();
        assert!((d.as_micros_f64() - 400.0).abs() < 1.0);
    }

    #[test]
    fn propagation_added() {
        let mut s = Shaper::new(30e6, SimDuration::from_millis(10), None);
        let d = s.transit(SimTime::ZERO, 1500).unwrap();
        assert!(d >= SimDuration::from_millis(10));
    }

    #[test]
    fn bounded_queue_drops() {
        let mut s = Shaper::new(30e6, SimDuration::ZERO, Some(3));
        let mut drops = 0;
        for _ in 0..10 {
            if s.transit(SimTime::ZERO, 1500).is_none() {
                drops += 1;
            }
        }
        assert!(drops > 0, "overflow must drop");
    }

    #[test]
    fn rtt_configuration_reaches_20ms() {
        let mut ne = NetEm::web_30mbps_20ms();
        let dl = ne.dl.transit(SimTime::ZERO, 1500).unwrap();
        let ul = ne.ul.transit(SimTime::ZERO, 40).unwrap();
        let rtt = (dl + ul).as_millis_f64();
        assert!(
            (20.0..22.0).contains(&rtt),
            "configured RTT ≈ 20 ms, got {rtt}"
        );
    }
}
