//! The canonical traced scenario behind `reproduce --trace-out`.
//!
//! One run exercises every instrumented layer: N4 association and UE
//! bring-up (registration + session spans, per-NF segments, PFCP
//! events), CBR traffic, an inter-gNB handover (phase events + smart
//! buffering), a primary failure with the resiliency harness on (the
//! failover span with its detect/reroute/replay segments), and an
//! idle → paging cycle. An NFV-substrate exercise then contributes
//! ring-stall and mempool/ring gauge events. Everything is drained into
//! one [`TraceBundle`] ready for the JSONL / Chrome-trace exporters.

use l25gc_core::Deployment;
use l25gc_nfv::ring::ring_labeled;
use l25gc_nfv::Mempool;
use l25gc_obs::{FlightRecorder, TraceBundle};
use l25gc_sim::{Engine, SimDuration};

use crate::World;

/// Runs the traced scenario and returns the merged trace, sorted by
/// timestamp.
pub fn trace_scenario(seed: u64) -> TraceBundle {
    let mut eng = Engine::new(7 ^ seed, World::new(Deployment::L25gc, 2, 1));
    World::bring_up_ue(&mut eng, 1);
    World::enable_resilience(&mut eng);

    // DL CBR with UE echo, a handover mid-flow, and a primary failure
    // while traffic runs.
    eng.schedule_in(SimDuration::ZERO, |w: &mut World, ctx| {
        w.start_cbr(1, 0, 5_000, 200, SimDuration::from_millis(400), ctx);
    });
    eng.schedule_in(SimDuration::from_millis(100), |w: &mut World, ctx| {
        let out = w.ran.trigger_handover(1, 2);
        w.send_after(ctx, out.delay, out.env);
    });
    // Sample the smart-buffer occupancy while the handover buffers.
    eng.schedule_in(SimDuration::from_millis(150), |w: &mut World, ctx| {
        w.core.upf.record_buffer_occupancy(ctx.now());
    });
    eng.schedule_in(SimDuration::from_millis(300), |w: &mut World, ctx| {
        w.fail_primary(ctx);
    });
    eng.run_with_mailbox();

    // Idle, then DL data pages the UE back.
    let out = eng.world().ran.trigger_idle(1);
    eng.schedule_in(SimDuration::ZERO, move |w: &mut World, ctx| {
        w.send_after(ctx, out.delay, out.env);
    });
    eng.run_with_mailbox();
    eng.schedule_in(SimDuration::ZERO, |w: &mut World, ctx| {
        w.start_cbr(1, 1, 1_000, 200, SimDuration::from_millis(100), ctx);
    });
    eng.schedule_in(SimDuration::from_millis(5), |w: &mut World, ctx| {
        w.core.upf.record_buffer_occupancy(ctx.now());
    });
    eng.run_with_mailbox();

    let mut bundle = TraceBundle::new();
    eng.world_mut().core.drain_trace(&mut bundle);

    // NFV-substrate exercise: a deliberately tiny ring and mempool so
    // stalls and exhaustion show up alongside the core's own events.
    let base = eng.now();
    let mut fr = FlightRecorder::new(64);
    let (mut tx, mut rx) = ring_labeled::<u32>(2, "ring:rx");
    assert!(
        rx.pop_traced(&mut fr, base).is_none(),
        "empty ring stalls the consumer"
    );
    let mut i = 0u32;
    while tx
        .push_traced(i, &mut fr, base + SimDuration::from_nanos(u64::from(i) + 1))
        .is_ok()
    {
        i += 1;
    }
    tx.record_depth(&mut fr, base + SimDuration::from_nanos(10));

    let pool = Mempool::new(2, 64);
    let _a = pool.alloc_traced(&mut fr, base + SimDuration::from_nanos(20));
    let _b = pool.alloc_traced(&mut fr, base + SimDuration::from_nanos(21));
    let _c = pool.alloc_traced(&mut fr, base + SimDuration::from_nanos(22));
    pool.record_occupancy("mempool:pkt", &mut fr, base + SimDuration::from_nanos(23));

    bundle.dropped_events += fr.dropped();
    fr.drain_into(&mut bundle.events);

    bundle.sort();
    bundle
}

#[cfg(test)]
mod tests {
    use super::*;
    use l25gc_codec::json;
    use l25gc_codec::value::Value;
    use l25gc_obs::{parse_jsonl_line, to_chrome_trace, to_jsonl, EventKind, ProcKind};

    #[test]
    fn scenario_covers_nfs_gauges_and_exports() {
        let b = trace_scenario(0);

        // Segments from at least three distinct NFs (acceptance bar).
        let mut nfs: Vec<&str> = Vec::new();
        for s in &b.segments {
            if !nfs.contains(&s.nf) {
                nfs.push(s.nf);
            }
        }
        assert!(nfs.len() >= 3, "segments from >=3 NFs, got {nfs:?}");

        // Gauges from the ring, the mempool, and the UPF smart buffer.
        let gauge = |want: &str| {
            b.events
                .iter()
                .any(|e| matches!(e.kind, EventKind::Gauge { name, .. } if name == want))
        };
        assert!(gauge("ring:rx"), "ring depth gauge present");
        assert!(gauge("mempool:pkt"), "mempool occupancy gauge present");
        assert!(gauge("upf:buffer"), "smart-buffer occupancy gauge present");
        assert!(
            b.events
                .iter()
                .any(|e| matches!(e.kind, EventKind::RingEnqueueStall { .. })),
            "ring stall recorded"
        );
        assert!(
            b.events
                .iter()
                .any(|e| matches!(e.kind, EventKind::MempoolExhausted { .. })),
            "mempool exhaustion recorded"
        );

        // The control-plane story is all there.
        let span = |k: ProcKind| b.spans.iter().any(|s| s.kind == k);
        assert!(span(ProcKind::Registration), "registration span");
        assert!(span(ProcKind::SessionEstablishment), "session span");
        assert!(span(ProcKind::Handover), "handover span");
        assert!(span(ProcKind::Failover), "failover span");
        assert!(span(ProcKind::Paging), "paging span");
        assert!(
            b.events
                .iter()
                .any(|e| matches!(e.kind, EventKind::PfcpEstablish { .. })),
            "PFCP establish event"
        );
        assert!(
            b.events
                .iter()
                .any(|e| matches!(e.kind, EventKind::HandoverPhase { .. })),
            "handover phase events"
        );
        assert!(
            b.events
                .iter()
                .any(|e| matches!(e.kind, EventKind::NfUnfreeze { .. })),
            "failover unfreeze event"
        );

        // Both exporters accept the bundle: the Chrome trace parses as
        // JSON, and every JSONL line round-trips through the parser.
        let chrome = to_chrome_trace(&b);
        let v = json::parse(&chrome).expect("chrome trace is valid JSON");
        let n = v
            .get("traceEvents")
            .and_then(Value::as_array)
            .expect("traceEvents")
            .len();
        assert!(
            n > 50,
            "a real scenario produces a rich trace, got {n} entries"
        );
        for line in to_jsonl(&b).lines() {
            parse_jsonl_line(line).expect("every JSONL line parses");
        }
    }
}
