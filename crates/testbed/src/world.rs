//! The testbed world: RAN + traffic endpoints + (optional) LB/resiliency
//! + one or two 5GC units, driven by the discrete-event engine.
//!
//! Everything is an [`Envelope`] in flight. [`World::deliver`] routes by
//! destination endpoint: core NFs go to [`CoreNetwork::handle`], gNB/UE
//! control to [`Ran::handle`], and data endpoints to the traffic
//! applications (CBR echo, TCP sender/receiver, page loads). Delays come
//! back from the handlers; the world just schedules.
//!
//! With resiliency enabled the world plays the Fig 5 topology: every
//! message entering the 5GC unit from outside is counted and logged at
//! the LB; a frozen remote replica is checkpointed at quiescent instants;
//! on primary failure the replica wakes, the log replays, and duplicate
//! outputs are suppressed by the output counter (REINFORCE-style).

use std::collections::HashMap;

use l25gc_core::msg::{DataPacket, Endpoint, Envelope, Msg, UeId};
use l25gc_core::net::{CoreNetwork, HandoverScheme};
use l25gc_core::Deployment;
use l25gc_obs::{EventKind, ProcKind};
use l25gc_ran::{echo, CbrFlow, PageLoad, Ran, TcpReceiver, TcpSender};
use l25gc_resilience::{CheckpointPolicy, FailoverTimeline, PacketLogger, Replica, ReplicaState};
use l25gc_sim::{Ctx, Engine, HasMailbox, Mailbox, SimDuration, SimTime};

use crate::netem::NetEm;

/// Traffic applications living at the DN and UE sides.
#[derive(Default)]
pub struct Apps {
    /// DL CBR flows sourced at the DN (Fig 13/14).
    pub cbr: Vec<CbrFlow>,
    /// TCP senders at the DN, keyed by flow id.
    pub tcp: HashMap<u32, TcpSender>,
    /// TCP receivers at the UE, keyed by flow id.
    pub tcp_rx: HashMap<u32, TcpReceiver>,
    /// Page-load harness, when the experiment is §5.4.1.
    pub page: Option<PageLoad>,
    /// UE echoes every delivered CBR packet back (RTT measurement).
    pub echo_at_ue: bool,
    /// Pending RTO tick per TCP flow.
    tcp_tick: HashMap<u32, SimTime>,
    /// UL packets that reached the DN.
    pub dn_received: u64,
    /// DL packets delivered to UEs.
    pub ue_received: u64,
}

/// The resiliency harness around the primary core (Fig 5).
pub struct Resilience {
    /// The LB packet logger.
    pub logger: PacketLogger,
    /// The frozen remote replica of the whole core.
    pub replica: Replica<CoreNetwork>,
    /// Checkpoint schedule.
    pub policy: CheckpointPolicy,
    /// Failover timing components.
    pub timeline: FailoverTimeline,
    /// Core → outside envelopes released so far.
    pub outputs_released: u64,
    /// Value of `outputs_released` at the last checkpoint.
    pub outputs_at_checkpoint: u64,
    /// Outputs to suppress during replay (already emitted by the dead
    /// primary).
    suppress_remaining: u64,
    /// Checkpoints skipped because the core was mid-procedure.
    pub checkpoints_deferred: u64,
}

impl Resilience {
    /// A fresh harness mirroring `core`.
    pub fn new(core: &CoreNetwork, now: SimTime) -> Resilience {
        Resilience {
            logger: PacketLogger::new(10_000),
            replica: Replica::new(core.clone(), now),
            policy: CheckpointPolicy::paper(),
            timeline: FailoverTimeline::paper(&core.cost),
            outputs_released: 0,
            outputs_at_checkpoint: 0,
            suppress_remaining: 0,
            checkpoints_deferred: 0,
        }
    }
}

/// The complete simulated system.
pub struct World {
    /// Deferred-event mailbox (see `l25gc-sim`).
    pub mailbox: Mailbox<World>,
    /// The (primary) 5GC unit.
    pub core: CoreNetwork,
    /// The RAN: gNBs + UEs.
    pub ran: Ran,
    /// Traffic endpoints.
    pub apps: Apps,
    /// N6-link shaping.
    pub netem: NetEm,
    /// Resiliency harness (None = no replication).
    pub res: Option<Resilience>,
    /// False once the primary has failed.
    pub primary_alive: bool,
    /// Internal (core→core) messages currently in flight — checkpoints
    /// only fire at zero (quiescence → consistent snapshots).
    in_flight_internal: u32,
    /// True while a replayed log entry is being processed: output
    /// suppression applies only to outputs regenerated from the replay,
    /// never to interleaved live traffic.
    in_replay: bool,
    /// DL packets dropped because the core was dead (3GPP baseline).
    pub outage_drops: u64,
}

impl HasMailbox for World {
    fn mailbox(&mut self) -> &mut Mailbox<Self> {
        &mut self.mailbox
    }
}

fn is_core(ep: Endpoint) -> bool {
    matches!(
        ep,
        Endpoint::Amf
            | Endpoint::Smf
            | Endpoint::Ausf
            | Endpoint::Udm
            | Endpoint::Pcf
            | Endpoint::Nrf
            | Endpoint::UpfC
            | Endpoint::UpfU
    )
}

impl World {
    /// A world with one core in `deployment`, `gnbs` base stations, and
    /// `ues` UEs (ids `1..=ues`) camped on gNB 1.
    pub fn new(deployment: Deployment, gnbs: u32, ues: u64) -> World {
        let mut core = CoreNetwork::new(deployment);
        let mut ran = Ran::new(gnbs, core.cost.clone());
        for ue in 1..=ues {
            ran.add_ue(ue, 100 + ue, 1);
            core.provision_subscriber(100 + ue);
        }
        World {
            mailbox: Mailbox::new(),
            core,
            ran,
            apps: Apps::default(),
            netem: NetEm::off(),
            res: None,
            primary_alive: true,
            in_flight_internal: 0,
            in_replay: false,
            outage_drops: 0,
        }
    }

    /// Sets the handover scheme on both core and RAN.
    pub fn set_scheme(&mut self, scheme: HandoverScheme) {
        self.core.scheme = scheme;
        self.ran.scheme = scheme;
    }

    /// Enables the resiliency harness and starts periodic checkpoints.
    pub fn enable_resilience(eng: &mut Engine<World>) {
        let now = eng.now();
        let w = eng.world_mut();
        let res = Resilience::new(&w.core, now);
        let interval = res.policy.interval;
        w.res = Some(res);
        Self::schedule_checkpoint(eng, interval);
    }

    fn schedule_checkpoint(eng: &mut Engine<World>, after: SimDuration) {
        eng.schedule_in(after, move |w: &mut World, ctx| {
            w.take_checkpoint(ctx);
        });
    }

    fn take_checkpoint(&mut self, ctx: &mut Ctx) {
        let Some(res) = self.res.as_mut() else { return };
        if !self.primary_alive || res.replica.state == ReplicaState::Active {
            return; // stop checkpointing after failover
        }
        let quiescent = self.in_flight_internal == 0;
        if quiescent {
            let watermark = res.logger.next_counter();
            res.replica.checkpoint(&self.core, watermark, ctx.now());
            res.logger.release_upto(watermark);
            res.outputs_at_checkpoint = res.outputs_released;
        } else {
            res.checkpoints_deferred += 1;
        }
        let interval = res.policy.interval;
        self.mailbox
            .send_in(ctx, interval, |w, ctx| w.take_checkpoint(ctx));
    }

    /// Kills the primary at the current instant. With resiliency on, the
    /// failover sequence (detect → unfreeze → reroute ∥ replay) runs
    /// automatically; without it, inbound traffic drops until the caller
    /// performs the 3GPP reattach.
    pub fn fail_primary(&mut self, ctx: &mut Ctx) {
        self.primary_alive = false;
        if let Some(res) = self.res.as_ref() {
            let delay = res.timeline.total();
            let failed_at = ctx.now();
            self.mailbox
                .send_in(ctx, delay, move |w, ctx| w.failover(failed_at, ctx));
        }
    }

    fn failover(&mut self, failed_at: SimTime, ctx: &mut Ctx) {
        let res = self.res.as_mut().expect("resilience enabled");
        let timeline = res.timeline;
        // Wake the replica with the checkpointed state.
        self.core = res.replica.unfreeze(ctx.now());
        res.suppress_remaining = res
            .outputs_released
            .saturating_sub(res.outputs_at_checkpoint);
        self.primary_alive = true;
        // Record the failover timeline on the *live* (replica) core, which
        // is the one whose trace gets drained afterwards. Unit-level ids:
        // service 0 = the 5GC unit, instance 1 = primary, 2 = replica.
        let now = ctx.now();
        self.core.obs.event(
            failed_at,
            EventKind::NfFailure {
                service: 0,
                instance: 1,
            },
        );
        self.core.obs.event(
            now,
            EventKind::NfUnfreeze {
                service: 0,
                instance: 2,
            },
        );
        self.core
            .obs
            .spans
            .record_completed(ProcKind::Failover, 0, failed_at, now);
        self.core.obs.hists.record(
            ProcKind::Failover.name(),
            now.duration_since(failed_at).as_nanos(),
        );
        // Per-phase segments: detect, then reroute, with replay overlapped
        // into the tail of rerouting by the timeline's overlap fraction.
        let detect_end = failed_at + timeline.detect;
        self.core
            .obs
            .spans
            .record_segment("lb", "detect", failed_at, timeline.detect);
        self.core
            .obs
            .spans
            .record_segment("lb", "reroute", detect_end, timeline.reroute);
        let replay_start = detect_end
            + timeline
                .reroute
                .saturating_sub(timeline.replay * timeline.overlap);
        self.core
            .obs
            .spans
            .record_segment("lb", "replay", replay_start, timeline.replay);
        // Replay the log in counter order. Each entry re-enters the core
        // back-to-back (replay already accounted in the timeline).
        let entries = res.logger.replay();
        let per_entry = SimDuration::from_micros(2);
        for (i, e) in entries.into_iter().enumerate() {
            let env = e.env;
            self.mailbox
                .send_in(ctx, per_entry * (i as u64 + 1), move |w, ctx| {
                    w.in_replay = true;
                    w.deliver_to_core(env, ctx);
                    w.in_replay = false;
                });
        }
    }

    /// Emulates the outcome of the 3GPP reattach: the UE has registered
    /// afresh and re-established its session on the backup core, so any
    /// in-flight procedure state is discarded and the user plane points
    /// at the UE's current serving gNB again. (The *time* this takes is
    /// the measured outage the caller waited before invoking this.)
    pub fn reattach_recover(&mut self) {
        self.primary_alive = true;
        let ues: Vec<_> = self.core.smf.sessions.keys().copied().collect();
        for ue in ues {
            // Clear any interrupted procedure at the AMF.
            if let Some(ctx) = self.core.amf.ues.get_mut(&ue) {
                ctx.ho = l25gc_core::context::HoPhase::None;
                ctx.paging = l25gc_core::context::PagingPhase::None;
                ctx.sess = l25gc_core::context::SessPhase::None;
                ctx.idle = l25gc_core::context::IdlePhase::None;
                ctx.target_gnb = None;
            }
            // Re-point the user plane at the UE's current serving gNB.
            let gnb = self.ran.ues[&ue].serving_gnb;
            let dl_teid = self.ran.gnbs[&gnb]
                .dl_teid_to_ue
                .iter()
                .find(|(_, u)| **u == ue)
                .map(|(t, _)| *t);
            let (seid, far_tunnel) = {
                let s = &self.core.smf.sessions[&ue];
                (
                    s.seid,
                    dl_teid.map(|teid| l25gc_pkt::ngap::TunnelInfo { teid, addr: gnb }),
                )
            };
            if let Some(tun) = far_tunnel {
                use l25gc_pkt::pfcp;
                let ies = pfcp::IeSet {
                    update_fars: vec![pfcp::UpdateFar {
                        far_id: 2,
                        apply_action: Some(pfcp::ApplyAction::FORW),
                        forwarding: Some(pfcp::ForwardingParameters {
                            dest_interface: pfcp::Interface::Access,
                            outer_header_creation: Some(pfcp::OuterHeaderCreation {
                                teid: tun.teid,
                                addr: l25gc_pkt::Ipv4Addr::from_u32(tun.addr),
                            }),
                        }),
                    }],
                    ..pfcp::IeSet::default()
                };
                // Buffered packets from before the failure are gone with
                // the failed core in the 3GPP model; drop them.
                if let Some(sess) = self.core.upf.session_by_seid(seid) {
                    sess.buffer.clear();
                }
                self.core.upf.modify(seid, &ies);
                self.core
                    .smf
                    .sessions
                    .get_mut(&ue)
                    .expect("session")
                    .an_tunnel = Some(tun);
            }
        }
    }

    /// Sends `env` after `delay` (the universal scheduling helper).
    pub fn send_after(&mut self, ctx: &Ctx, delay: SimDuration, env: Envelope) {
        if is_core(env.to) && is_core(env.from) {
            self.in_flight_internal += 1;
        }
        self.mailbox
            .send_in(ctx, delay, move |w, ctx| w.deliver(env, ctx));
    }

    /// Routes one delivered envelope.
    pub fn deliver(&mut self, env: Envelope, ctx: &mut Ctx) {
        if is_core(env.to) {
            if is_core(env.from) {
                self.in_flight_internal -= 1;
            } else {
                // External ingress: the LB logs it (until the replica is
                // the active copy — there is no further standby to replay
                // into, so post-failover logging would only shed).
                if let Some(res) = self.res.as_mut() {
                    if res.replica.state == ReplicaState::Frozen || !self.primary_alive {
                        res.logger.log(&env);
                    }
                }
            }
            if !self.primary_alive {
                // Dead core. Resilient: the logged copy replays later.
                // 3GPP baseline: the packet is simply lost.
                if self.res.is_none() {
                    self.outage_drops += 1;
                }
                return;
            }
            self.deliver_to_core(env, ctx);
            return;
        }
        match env.to {
            Endpoint::Ue(ue) => match env.msg {
                Msg::Data(pkt) => self.ue_data(ue, pkt, ctx),
                _ => {
                    let outs = self.ran.handle(env, ctx.now());
                    for o in outs {
                        self.send_after(ctx, o.delay, o.env);
                    }
                }
            },
            Endpoint::Gnb(_) => {
                let outs = self.ran.handle(env, ctx.now());
                for o in outs {
                    self.send_after(ctx, o.delay, o.env);
                }
            }
            Endpoint::Dn => {
                let Msg::Data(pkt) = env.msg else {
                    panic!("only data reaches the DN");
                };
                self.dn_data(pkt, ctx);
            }
            other => panic!("unroutable endpoint {other:?}"),
        }
    }

    fn deliver_to_core(&mut self, env: Envelope, ctx: &mut Ctx) {
        let outs = self.core.handle(env, ctx.now());
        for o in outs {
            let external = !is_core(o.env.to);
            if external {
                if let Some(res) = self.res.as_mut() {
                    if self.in_replay && res.suppress_remaining > 0 {
                        // Duplicate of an output the primary already
                        // released before dying.
                        res.suppress_remaining -= 1;
                        continue;
                    }
                    res.outputs_released += 1;
                }
            }
            let mut delay = o.delay;
            // N6 shaping on the UPF → DN leg.
            if o.env.to == Endpoint::Dn {
                if let Msg::Data(ref p) = o.env.msg {
                    match self.netem.ul.transit(ctx.now() + delay, p.size) {
                        Some(d) => delay += d,
                        None => continue,
                    }
                }
            }
            self.send_after(ctx, delay, o.env);
        }
    }

    // ---------------- traffic endpoints ----------------

    fn ue_data(&mut self, ue: UeId, pkt: DataPacket, ctx: &mut Ctx) {
        self.apps.ue_received += 1;
        if self.apps.echo_at_ue {
            let reply = echo(&pkt, ctx.now());
            let gnb = self.ran.ues[&ue].serving_gnb;
            let hop = self.ran.ue_data_hop;
            self.send_after(
                ctx,
                hop,
                Envelope::new(Endpoint::Ue(ue), Endpoint::Gnb(gnb), Msg::Data(reply)),
            );
        }
        if let Some(rx) = self.apps.tcp_rx.get_mut(&pkt.flow) {
            let ack = rx.on_segment(pkt.seq);
            let ack_pkt = rx.ack_packet(&pkt, ack, ctx.now());
            let gnb = self.ran.ues[&ue].serving_gnb;
            let hop = self.ran.ue_data_hop;
            self.send_after(
                ctx,
                hop,
                Envelope::new(Endpoint::Ue(ue), Endpoint::Gnb(gnb), Msg::Data(ack_pkt)),
            );
        }
    }

    fn dn_data(&mut self, pkt: DataPacket, ctx: &mut Ctx) {
        self.apps.dn_received += 1;
        if let Some(ack) = pkt.ack_seq {
            // An ack for a CBR probe or a TCP segment.
            if let Some(flow) = self
                .apps
                .cbr
                .iter_mut()
                .find(|f| f.ue == pkt.ue && f.flow == pkt.flow)
            {
                flow.on_ack(pkt.seq, ctx.now());
                return;
            }
            if self.apps.tcp.contains_key(&pkt.flow) {
                self.tcp_input(pkt.flow, ack, ctx);
            }
        }
        // Plain UL data landing at the DN: nothing further.
    }

    fn tcp_input(&mut self, flow: u32, ack: u64, ctx: &mut Ctx) {
        let now = ctx.now();
        let sender = self.apps.tcp.get_mut(&flow).expect("sender exists");
        let mut to_send = sender.on_ack(ack, now);
        to_send.extend(sender.pump(now));
        let deadline = sender.next_timeout();
        self.emit_tcp(flow, to_send, ctx);
        self.arm_tcp_tick(flow, deadline, ctx);
        if let Some(mut pl) = self.apps.page.take() {
            pl.update(&self.apps.tcp, now);
            self.apps.page = Some(pl);
        }
    }

    /// Sends DL TCP segments through the shaped N6 link into the core.
    fn emit_tcp(&mut self, _flow: u32, segs: Vec<DataPacket>, ctx: &mut Ctx) {
        let path = self.core.cost.path_lat;
        for seg in segs {
            match self.netem.dl.transit(ctx.now(), seg.size) {
                Some(d) => {
                    self.send_after(
                        ctx,
                        d + path,
                        Envelope::new(Endpoint::Dn, Endpoint::UpfU, Msg::Data(seg)),
                    );
                }
                None => self.netem.dl_drops += 1,
            }
        }
    }

    fn arm_tcp_tick(&mut self, flow: u32, deadline: Option<SimTime>, ctx: &mut Ctx) {
        let Some(deadline) = deadline else { return };
        let already = self.apps.tcp_tick.get(&flow).copied();
        if already.is_some_and(|t| t <= deadline && t > ctx.now()) {
            return; // an earlier (or equal) tick is pending
        }
        self.apps.tcp_tick.insert(flow, deadline);
        let wait = deadline.duration_since(ctx.now());
        self.mailbox
            .send_in(ctx, wait, move |w, ctx| w.tcp_tick(flow, ctx));
    }

    fn tcp_tick(&mut self, flow: u32, ctx: &mut Ctx) {
        let now = ctx.now();
        match self.apps.tcp_tick.get(&flow) {
            Some(&t) if t == now => {
                self.apps.tcp_tick.remove(&flow);
            }
            _ => return, // stale tick
        }
        let sender = self.apps.tcp.get_mut(&flow).expect("sender exists");
        let mut segs = sender.on_tick(now);
        segs.extend(sender.pump(now));
        let deadline = sender.next_timeout();
        self.emit_tcp(flow, segs, ctx);
        self.arm_tcp_tick(flow, deadline, ctx);
    }

    /// Starts a DL TCP transfer to `ue` (flow id must be unique).
    pub fn start_tcp(&mut self, ue: UeId, flow: u32, bytes: Option<u64>, ctx: &mut Ctx) {
        let sender = TcpSender::new(ue, flow, bytes);
        self.start_tcp_sender(sender, ctx);
    }

    /// Installs and starts a pre-built sender (page loads build theirs).
    pub fn start_tcp_sender(&mut self, mut sender: TcpSender, ctx: &mut Ctx) {
        let flow = sender.flow;
        let segs = sender.pump(ctx.now());
        let deadline = sender.next_timeout();
        self.apps.tcp.insert(flow, sender);
        self.apps.tcp_rx.insert(flow, TcpReceiver::new());
        self.emit_tcp(flow, segs, ctx);
        self.arm_tcp_tick(flow, deadline, ctx);
    }

    /// Starts a DL CBR flow to `ue` lasting `duration`.
    pub fn start_cbr(
        &mut self,
        ue: UeId,
        flow_id: u32,
        pps: u64,
        size: usize,
        duration: SimDuration,
        ctx: &mut Ctx,
    ) {
        let flow = CbrFlow::downlink(ue, flow_id, pps, size);
        let interval = flow.interval;
        let idx = self.apps.cbr.len();
        self.apps.cbr.push(flow);
        self.apps.echo_at_ue = true;
        let end = ctx.now() + duration;
        self.cbr_emit(idx, interval, end, ctx);
    }

    fn cbr_emit(&mut self, idx: usize, interval: SimDuration, end: SimTime, ctx: &mut Ctx) {
        if ctx.now() >= end {
            return;
        }
        let pkt = self.apps.cbr[idx].next_packet(ctx.now());
        let path = self.core.cost.path_lat;
        match self.netem.dl.transit(ctx.now(), pkt.size) {
            Some(d) => {
                self.send_after(
                    ctx,
                    d + path,
                    Envelope::new(Endpoint::Dn, Endpoint::UpfU, Msg::Data(pkt)),
                );
            }
            None => self.netem.dl_drops += 1,
        }
        self.mailbox.send_in(ctx, interval, move |w, ctx| {
            w.cbr_emit(idx, interval, end, ctx)
        });
    }

    // ---------------- convenience: full UE bring-up ----------------

    /// Registers a UE and establishes its PDU session, returning when the
    /// engine has settled. Call on a fresh engine before data traffic.
    /// Performs the N4 association handshake first if it hasn't run.
    pub fn bring_up_ue(eng: &mut Engine<World>, ue: UeId) {
        use l25gc_core::net::N4Association;
        if eng.world().core.smf.n4_association == N4Association::Idle {
            let env = eng.world_mut().core.start_n4_association();
            eng.schedule_in(SimDuration::ZERO, move |w: &mut World, ctx| {
                w.send_after(ctx, SimDuration::ZERO, env);
            });
            eng.run_with_mailbox();
            assert_eq!(
                eng.world().core.smf.n4_association,
                N4Association::Established,
                "N4 association must establish before sessions"
            );
        }
        let out = eng.world_mut().ran.trigger_registration(ue);
        eng.schedule_in(SimDuration::ZERO, move |w: &mut World, ctx| {
            w.send_after(ctx, out.delay, out.env);
        });
        eng.run_with_mailbox();
        assert!(
            eng.world().ran.ues[&ue].registered,
            "registration must complete for UE {ue}"
        );
        let out = eng.world().ran.trigger_session(ue);
        eng.schedule_in(SimDuration::ZERO, move |w: &mut World, ctx| {
            w.send_after(ctx, out.delay, out.env);
        });
        eng.run_with_mailbox();
        assert!(
            eng.world().ran.ues[&ue].session_up,
            "session must come up for UE {ue}"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use l25gc_core::context::UeEvent;

    fn engine(dep: Deployment) -> Engine<World> {
        Engine::new(7, World::new(dep, 2, 2))
    }

    #[test]
    fn full_registration_and_session_on_all_deployments() {
        for dep in [Deployment::Free5gc, Deployment::OnvmUpf, Deployment::L25gc] {
            let mut eng = engine(dep);
            World::bring_up_ue(&mut eng, 1);
            let events = &eng.world().core.events;
            assert!(
                events.iter().any(|e| e.event == UeEvent::Registration),
                "{dep:?}: registration recorded"
            );
            assert!(
                events.iter().any(|e| e.event == UeEvent::SessionRequest),
                "{dep:?}: session recorded"
            );
            assert_eq!(eng.world().core.upf.sessions.len(), 1, "{dep:?}");
        }
    }

    #[test]
    fn l25gc_control_plane_is_faster() {
        let mut times = HashMap::new();
        for dep in [Deployment::Free5gc, Deployment::L25gc] {
            let mut eng = engine(dep);
            World::bring_up_ue(&mut eng, 1);
            let reg = eng
                .world()
                .core
                .events
                .iter()
                .find(|e| e.event == UeEvent::Registration)
                .expect("registration completed")
                .duration();
            times.insert(dep, reg);
        }
        let free = times[&Deployment::Free5gc];
        let l25 = times[&Deployment::L25gc];
        assert!(
            l25.as_secs_f64() < free.as_secs_f64() * 0.6,
            "L25GC {l25} should cut free5GC {free} by ~half"
        );
    }

    #[test]
    fn cbr_round_trip_measures_base_rtt() {
        let mut eng = engine(Deployment::L25gc);
        World::bring_up_ue(&mut eng, 1);
        eng.schedule_in(SimDuration::ZERO, |w: &mut World, ctx| {
            w.start_cbr(1, 0, 10_000, 100, SimDuration::from_millis(100), ctx);
        });
        eng.run_with_mailbox();
        let flow = &eng.world().apps.cbr[0];
        assert!(flow.acked > 900, "most probes acked: {}", flow.acked);
        let stats = flow.rtt_stats();
        // L25GC base RTT ≈ 25 µs (Table 1).
        assert!(
            (15.0..40.0).contains(&stats.mean),
            "base RTT ≈ 25 µs, got {} µs",
            stats.mean
        );
    }

    #[test]
    fn free5gc_base_rtt_is_roughly_116us() {
        let mut eng = engine(Deployment::Free5gc);
        World::bring_up_ue(&mut eng, 1);
        eng.schedule_in(SimDuration::ZERO, |w: &mut World, ctx| {
            w.start_cbr(1, 0, 10_000, 100, SimDuration::from_millis(100), ctx);
        });
        eng.run_with_mailbox();
        let stats = eng.world().apps.cbr[0].rtt_stats();
        assert!(
            (95.0..140.0).contains(&stats.mean),
            "base RTT ≈ 116 µs, got {} µs",
            stats.mean
        );
    }

    #[test]
    fn idle_then_paging_round_trip() {
        let mut eng = engine(Deployment::L25gc);
        World::bring_up_ue(&mut eng, 1);
        // Go idle.
        let out = eng.world().ran.trigger_idle(1);
        eng.schedule_in(SimDuration::ZERO, move |w: &mut World, ctx| {
            w.send_after(ctx, out.delay, out.env);
        });
        eng.run_with_mailbox();
        assert!(eng
            .world()
            .core
            .events
            .iter()
            .any(|e| e.event == UeEvent::IdleTransition));
        // DL data triggers paging; the UE wakes and traffic flows.
        eng.schedule_in(SimDuration::ZERO, |w: &mut World, ctx| {
            w.start_cbr(1, 0, 1_000, 100, SimDuration::from_millis(200), ctx);
        });
        eng.run_with_mailbox();
        let w = eng.world();
        assert!(
            w.core.events.iter().any(|e| e.event == UeEvent::Paging),
            "paging completed"
        );
        let flow = &w.apps.cbr[0];
        assert!(flow.acked > 0, "buffered packets were flushed and acked");
        let max_rtt_ms = flow.max_rtt().expect("samples") / 1000.0;
        assert!(
            (10.0..80.0).contains(&max_rtt_ms),
            "first packets wait out the paging (~28 ms): {max_rtt_ms} ms"
        );
    }

    #[test]
    fn handover_completes_and_traffic_continues() {
        let mut eng = engine(Deployment::L25gc);
        World::bring_up_ue(&mut eng, 1);
        eng.schedule_in(SimDuration::ZERO, |w: &mut World, ctx| {
            w.start_cbr(1, 0, 10_000, 100, SimDuration::from_millis(400), ctx);
        });
        eng.schedule_in(SimDuration::from_millis(100), |w: &mut World, ctx| {
            let out = w.ran.trigger_handover(1, 2);
            w.send_after(ctx, out.delay, out.env);
        });
        eng.run_with_mailbox();
        let w = eng.world();
        let ho = w
            .core
            .events
            .iter()
            .find(|e| e.event == UeEvent::Handover)
            .expect("HO done");
        let ho_ms = ho.duration().as_millis_f64();
        assert!(
            (110.0..170.0).contains(&ho_ms),
            "L25GC HO ≈ 130 ms, got {ho_ms}"
        );
        assert_eq!(w.ran.ues[&1].serving_gnb, 2);
        let flow = &w.apps.cbr[0];
        assert_eq!(flow.lost(), 0, "smart buffering loses nothing");
        assert!(
            flow.max_rtt().unwrap() > 50_000.0,
            "buffered packets saw the HO delay"
        );
    }

    #[test]
    fn tcp_transfer_over_the_core() {
        let mut eng = engine(Deployment::L25gc);
        World::bring_up_ue(&mut eng, 1);
        eng.world_mut().netem = NetEm::web_30mbps_20ms();
        eng.schedule_in(SimDuration::ZERO, |w: &mut World, ctx| {
            w.start_tcp(1, 1, Some(3_000_000), ctx);
        });
        eng.run_with_mailbox();
        let w = eng.world();
        let tx = &w.apps.tcp[&1];
        assert!(tx.is_complete(), "3 MB transfer finishes");
        assert_eq!(tx.timeouts, 0, "no timeouts without handovers");
        // 3 MB at 30 Mbps ≈ 0.8 s floor.
        let t = eng.now().as_secs_f64();
        assert!((0.8..5.0).contains(&t), "transfer time {t}s");
    }
}
