//! Failure resiliency (§3.5): kill the 5GC mid-transfer and watch the
//! frozen replica take over via the LB packet logger, against the 3GPP
//! reattach baseline.
//!
//! ```text
//! cargo run -p l25gc-testbed --example failover_resilience
//! ```

use l25gc_sim::{Engine, SimDuration};
use l25gc_testbed::{NetEm, World};

fn run(resilient: bool) {
    let mut eng = Engine::new(99, World::new(l25gc_core::Deployment::L25gc, 2, 1));
    World::bring_up_ue(&mut eng, 1);
    eng.world_mut().netem = NetEm::failover_30mbps();
    if resilient {
        World::enable_resilience(&mut eng);
    }

    // A bulk TCP download; the primary 5GC dies at t = 2 s.
    eng.schedule_in(SimDuration::ZERO, |w: &mut World, ctx| {
        w.start_tcp(1, 0, None, ctx);
    });
    eng.schedule_in(SimDuration::from_secs(2), |w: &mut World, ctx| {
        w.fail_primary(ctx);
    });
    if !resilient {
        // 3GPP baseline: service returns only after the reattach outage
        // (~330 ms composed of detection + registration + session
        // re-establishment; see exp::failover for the measured model).
        eng.schedule_in(SimDuration::from_millis(2_330), |w: &mut World, _| {
            w.reattach_recover();
        });
    }
    eng.run_for_with_mailbox(SimDuration::from_secs(6));

    let w = eng.world();
    let tx = &w.apps.tcp[&0];
    let label = if resilient {
        "L25GC failover"
    } else {
        "3GPP reattach "
    };
    println!(
        "{label}: transferred {:.1} MB, dropped {} packets, {} RTO timeouts",
        (tx.acked_segments() * l25gc_ran::MSS as u64) as f64 / 1e6,
        w.outage_drops,
        tx.timeouts,
    );
    if resilient {
        let res = w.res.as_ref().expect("harness attached");
        println!(
            "  replica checkpoints: {}, logger overflow drops: {}",
            res.replica.checkpoints, res.logger.overflow_drops
        );
        assert_eq!(w.outage_drops, 0, "the packet logger loses nothing");
        assert_eq!(tx.timeouts, 0, "failover stays under the senders' RTO");
    }
}

fn main() {
    println!("5GC failure at t=2s during a 30 Mbps TCP download:\n");
    run(true);
    run(false);
}
