//! Generates GTP-encapsulated data-plane pcap traces — the role of the
//! paper artifact's trace scripts (MoonGen replays these against the
//! UPF).
//!
//! ```text
//! cargo run -p l25gc-testbed --example generate_traces -- /tmp/l25gc_ul.pcap
//! ```
//!
//! Writes an uplink trace of 64-byte-payload G-PDUs at 10 kpps for one
//! UE session, then parses it back and verifies every layer.

use std::fs::File;
use std::io::BufWriter;

use l25gc_pkt::ether::MacAddr;
use l25gc_pkt::pcap::{build_gtp_frame, GtpFlow, PcapWriter};
use l25gc_pkt::{gtpu, ipv4, udp, Ipv4Addr};
use l25gc_sim::{SimDuration, SimTime};

fn main() -> std::io::Result<()> {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "/tmp/l25gc_ul.pcap".into());
    let flow = GtpFlow {
        src_mac: MacAddr([0x02, 0, 0, 0, 0, 0x65]),
        dst_mac: MacAddr([0x02, 0, 0, 0, 0, 0x66]),
        outer_src: Ipv4Addr::new(10, 200, 200, 101), // gNB N3
        outer_dst: Ipv4Addr::new(10, 200, 200, 102), // UPF N3
        teid: 0x101,
        inner_src: Ipv4Addr::new(10, 60, 0, 1),    // UE
        inner_dst: Ipv4Addr::new(10, 100, 200, 3), // DN server
        inner_dport: 5001,
    };

    let mut writer = PcapWriter::new(BufWriter::new(File::create(&path)?))?;
    let interval = SimDuration::from_micros(100); // 10 kpps
    let payload = [0xabu8; 64];
    let mut t = SimTime::ZERO;
    for _ in 0..10_000 {
        let frame = build_gtp_frame(&flow, &payload);
        writer.write_frame(t, &frame)?;
        t += interval;
    }
    let frames = writer.frames;
    writer.finish()?;
    println!("wrote {frames} GTP-U frames to {path}");

    // Self-check: the frame parses back through every layer.
    let frame = build_gtp_frame(&flow, &payload);
    let e = l25gc_pkt::ether::Frame::new_checked(&frame[..]).expect("ethernet");
    let ip = ipv4::Packet::new_checked(e.payload()).expect("outer ip");
    assert!(ip.verify_checksum());
    let dgram = udp::Datagram::new_checked(ip.payload()).expect("outer udp");
    assert_eq!(dgram.dst_port(), udp::GTPU_PORT);
    let gtp = gtpu::Packet::new_checked(dgram.payload()).expect("gtp-u");
    assert_eq!(gtp.teid(), 0x101);
    let inner = ipv4::Packet::new_checked(gtp.payload()).expect("inner ip");
    assert_eq!(inner.dst(), Ipv4Addr::new(10, 100, 200, 3));
    println!(
        "self-check OK: Ether/IPv4/UDP:2152/GTP-U(teid {:#x})/IPv4/UDP:{} x {} B",
        gtp.teid(),
        flow.inner_dport,
        payload.len()
    );
    Ok(())
}
