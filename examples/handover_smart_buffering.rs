//! Smart buffering during handover (§3.3): compares free5GC and L²5GC
//! on the same mobility scenario, then shows the Eq 1/Eq 2 analytic
//! estimate of the hairpin-vs-direct tradeoff.
//!
//! ```text
//! cargo run -p l25gc-testbed --example handover_smart_buffering
//! ```

use l25gc_core::context::UeEvent;
use l25gc_core::Deployment;
use l25gc_nfv::CostModel;
use l25gc_sim::{Engine, SimDuration};
use l25gc_testbed::exp::analytic::smart_buffering_table;
use l25gc_testbed::World;

fn run(dep: Deployment) -> (f64, f64, u64) {
    let mut eng = Engine::new(7, World::new(dep, 2, 1));
    World::bring_up_ue(&mut eng, 1);

    // Stream 10 kpps downlink; hand over from gNB 1 to gNB 2 at 1 s.
    eng.schedule_in(SimDuration::ZERO, |w: &mut World, ctx| {
        w.start_cbr(1, 0, 10_000, 200, SimDuration::from_secs(3), ctx);
    });
    eng.schedule_in(SimDuration::from_secs(1), |w: &mut World, ctx| {
        let out = w.ran.trigger_handover(1, 2);
        w.send_after(ctx, out.delay, out.env);
    });
    eng.run_with_mailbox();

    let w = eng.world();
    let ho = w
        .core
        .events
        .iter()
        .find(|e| e.event == UeEvent::Handover)
        .expect("handover completed");
    let flow = &w.apps.cbr[0];
    (
        ho.duration().as_millis_f64(),
        flow.max_rtt().unwrap() / 1000.0,
        flow.lost(),
    )
}

fn main() {
    println!("handover with smart buffering at the UPF (10 kpps downlink):\n");
    let (free_ho, free_stall, free_lost) = run(Deployment::Free5gc);
    let (l25_ho, l25_stall, l25_lost) = run(Deployment::L25gc);
    println!("free5GC: control completion {free_ho:.0} ms, worst stall {free_stall:.0} ms, lost {free_lost}");
    println!("L25GC:   control completion {l25_ho:.0} ms, worst stall {l25_stall:.0} ms, lost {l25_lost}");
    assert!(
        l25_ho < free_ho,
        "shared-memory signalling completes the handover sooner"
    );
    assert_eq!(l25_lost, 0, "the 3K UPF buffer absorbs the interruption");

    println!("\nEq 1 / Eq 2 estimate — UPF buffering vs 3GPP hairpin through the source gNB:");
    for row in smart_buffering_table(&CostModel::paper()) {
        println!(
            "  {}: 3GPP drops {} / L25GC drops {}; hairpin adds {:.0} ms one-way delay",
            row.case, row.drops_3gpp, row.drops_l25gc, row.extra_owd_ms
        );
    }
}
