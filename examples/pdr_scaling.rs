//! Fast PDR lookup (§3.4): install a growing per-session rule set into
//! all three classifiers and measure real lookup latency — the Fig 11
//! experiment in miniature, plus the update-latency comparison.
//!
//! ```text
//! cargo run -p l25gc-testbed --example pdr_scaling --release
//! ```

use l25gc_testbed::exp::pdr::{fig11, pdr_update};

fn main() {
    println!("PDR lookup latency (measured wall-clock, 20 PDI IE dimensions):\n");
    println!(
        "{:>14} {:>8} {:>12} {:>12}",
        "structure", "rules", "lookup(ns)", "Mpps"
    );
    for row in fig11(&[10, 100, 1_000, 10_000]) {
        println!(
            "{:>14} {:>8} {:>12.0} {:>12.2}",
            row.structure, row.rules, row.lookup_ns, row.mpps
        );
    }

    println!("\nsingle-rule update latency (insert + remove on a 100-rule base):");
    for row in pdr_update() {
        println!("  {:>8}: {:.2} us", row.structure, row.update_us);
    }

    println!(
        "\nthe paper's pick: PDR-PS — flat lookup latency with rule count, no \
         software hashing (no tuple-space DoS surface), updates still in the \
         microsecond range."
    );
}
