//! Quickstart: bring up a UE on the L²5GC core and push traffic.
//!
//! ```text
//! cargo run -p l25gc-testbed --example quickstart
//! ```
//!
//! Builds the consolidated core (shared-memory SBI/N4, DPDK datapath),
//! registers a UE, establishes its PDU session, and measures the base
//! round-trip time of downlink probes — the Table 1 "Base RTT" cell.

use l25gc_core::context::UeEvent;
use l25gc_core::Deployment;
use l25gc_sim::{Engine, SimDuration};
use l25gc_testbed::World;

fn main() {
    // One L25GC unit, two gNBs, one UE camped on gNB 1.
    let mut eng = Engine::new(42, World::new(Deployment::L25gc, 2, 1));

    // Registration + PDU session establishment (TS 23.502 call flows).
    World::bring_up_ue(&mut eng, 1);

    for rec in &eng.world().core.events {
        println!(
            "{:?} completed in {:.1} ms",
            rec.event,
            rec.duration().as_millis_f64()
        );
    }
    let reg = eng
        .world()
        .core
        .events
        .iter()
        .find(|e| e.event == UeEvent::Registration)
        .expect("registration completed");
    assert!(
        reg.duration().as_millis_f64() < 150.0,
        "L25GC registers fast"
    );

    // 10 kpps of downlink probes for 100 ms; the UE echoes them back.
    eng.schedule_in(SimDuration::ZERO, |w: &mut World, ctx| {
        w.start_cbr(1, 0, 10_000, 200, SimDuration::from_millis(100), ctx);
    });
    eng.run_with_mailbox();

    let flow = &eng.world().apps.cbr[0];
    let stats = flow.rtt_stats();
    println!(
        "downlink probes: {} sent, {} acked, base RTT mean {:.1} us (paper Table 1: ~25 us)",
        flow.sent, flow.acked, stats.mean
    );
    assert!(flow.lost() == 0, "no loss on an idle datapath");
    assert!(stats.mean < 40.0, "kernel-bypass base RTT");

    // Forwarding counters straight from the UPF.
    for (name, v) in eng.world().core.upf.counters.iter() {
        println!("upf counter {name} = {v}");
    }
}
