#!/usr/bin/env bash
# The tier-1 gate, runnable locally and in CI:
#   formatting, lints as errors, and the full test suite.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all --check
cargo clippy --workspace --all-targets -- -D warnings
cargo test -q
