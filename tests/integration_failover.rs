//! Cross-crate integration: the resiliency framework end to end —
//! checkpoints, failover, replay, output suppression — under live
//! control and data traffic.

use l25gc_core::context::UeEvent;
use l25gc_core::Deployment;
use l25gc_sim::{Engine, SimDuration};
use l25gc_testbed::{NetEm, World};

fn resilient_world() -> Engine<World> {
    let mut eng = Engine::new(4242, World::new(Deployment::L25gc, 2, 1));
    World::bring_up_ue(&mut eng, 1);
    World::enable_resilience(&mut eng);
    eng
}

#[test]
fn failover_under_cbr_loses_nothing() {
    let mut eng = resilient_world();
    eng.schedule_in(SimDuration::ZERO, |w: &mut World, ctx| {
        w.start_cbr(1, 0, 10_000, 200, SimDuration::from_secs(1), ctx);
    });
    eng.schedule_in(SimDuration::from_millis(500), |w: &mut World, ctx| {
        w.fail_primary(ctx);
    });
    eng.run_with_mailbox();
    let w = eng.world();
    let flow = &w.apps.cbr[0];
    assert_eq!(flow.lost(), 0, "logger + replay recover every packet");
    assert_eq!(w.outage_drops, 0);
    let res = w.res.as_ref().expect("harness");
    assert!(res.replica.checkpoints > 10, "periodic checkpoints ran");
    assert_eq!(res.logger.overflow_drops, 0);
    // The outage is only detect+reroute+replay: a handful of ms of
    // added delay on the packets in flight at the failure instant.
    let max_ms = flow.max_rtt().unwrap() / 1000.0;
    assert!(max_ms < 50.0, "failover blip stays small: {max_ms} ms");
}

#[test]
fn failover_mid_handover_completes_the_handover() {
    let mut eng = resilient_world();
    eng.run_for_with_mailbox(SimDuration::from_millis(50));
    eng.schedule_in(SimDuration::ZERO, |w: &mut World, ctx| {
        let out = w.ran.trigger_handover(1, 2);
        w.send_after(ctx, out.delay, out.env);
    });
    // Fail during the execution phase.
    eng.schedule_in(SimDuration::from_millis(120), |w: &mut World, ctx| {
        w.fail_primary(ctx);
    });
    eng.run_with_mailbox();
    let w = eng.world();
    assert!(
        w.core.events.iter().any(|e| e.event == UeEvent::Handover),
        "the replica finished the interrupted handover"
    );
    assert_eq!(w.ran.ues[&1].serving_gnb, 2);
    // The user plane points at the target gNB afterwards.
    let sess = w.core.upf.sessions.iter().next().expect("session survived");
    assert!(sess.dl_far.action.forward, "forwarding restored");
}

#[test]
fn checkpoints_defer_while_procedures_run() {
    let mut eng = resilient_world();
    // A registration of UE 2 keeps internal messages in flight for a
    // while; checkpoints during it must defer (quiescence gating keeps
    // snapshots consistent).
    eng.world_mut().ran.add_ue(2, 102, 1);
    eng.world_mut().core.provision_subscriber(102);
    let out = eng.world_mut().ran.trigger_registration(2);
    eng.schedule_in(SimDuration::ZERO, move |w: &mut World, ctx| {
        w.send_after(ctx, out.delay, out.env);
    });
    // Bounded run: the checkpoint chain keeps the event queue non-empty
    // for as long as the harness is armed.
    eng.run_for_with_mailbox(SimDuration::from_millis(400));
    let res = eng.world().res.as_ref().expect("harness");
    assert!(
        res.checkpoints_deferred > 0,
        "some checkpoints must have hit an active procedure"
    );
    assert!(
        res.replica.checkpoints > 0,
        "quiescent instants were found too"
    );
}

#[test]
fn failover_after_checkpoint_without_traffic_is_clean() {
    let mut eng = resilient_world();
    eng.run_for_with_mailbox(SimDuration::from_millis(100));
    eng.schedule_in(SimDuration::ZERO, |w: &mut World, ctx| w.fail_primary(ctx));
    eng.run_for_with_mailbox(SimDuration::from_millis(100));
    // The replica core serves traffic afterwards.
    eng.schedule_in(SimDuration::ZERO, |w: &mut World, ctx| {
        w.start_cbr(1, 0, 5_000, 200, SimDuration::from_millis(100), ctx);
    });
    eng.run_with_mailbox();
    let flow = &eng.world().apps.cbr[0];
    assert_eq!(flow.lost(), 0);
    assert!(flow.acked > 0);
}

#[test]
fn reattach_baseline_drops_and_recovers() {
    let mut eng = Engine::new(9, World::new(Deployment::L25gc, 2, 1));
    World::bring_up_ue(&mut eng, 1);
    eng.world_mut().netem = NetEm::failover_30mbps();
    eng.schedule_in(SimDuration::ZERO, |w: &mut World, ctx| {
        w.start_cbr(1, 0, 2_000, 200, SimDuration::from_secs(2), ctx);
    });
    eng.schedule_in(SimDuration::from_millis(500), |w: &mut World, ctx| {
        w.fail_primary(ctx);
    });
    eng.schedule_in(SimDuration::from_millis(900), |w: &mut World, _| {
        w.reattach_recover();
    });
    eng.run_with_mailbox();
    let w = eng.world();
    let flow = &w.apps.cbr[0];
    assert!(
        w.outage_drops > 100,
        "the outage discards packets: {}",
        w.outage_drops
    );
    assert!(flow.lost() > 100);
    // Traffic resumed after the reattach.
    let after = flow
        .rtt
        .samples()
        .iter()
        .filter(|(t, _)| t.as_secs_f64() > 1.5)
        .count();
    assert!(after > 500, "post-recovery traffic flows: {after}");
}
