//! Cross-crate integration: the full UE lifecycle — registration, PDU
//! session, data, idle, paging, handover — on every deployment mode,
//! checking both control-plane records and user-plane behaviour.

use l25gc_core::context::UeEvent;
use l25gc_core::Deployment;
use l25gc_sim::{Engine, SimDuration};
use l25gc_testbed::World;

fn lifecycle(dep: Deployment) -> Engine<World> {
    let mut eng = Engine::new(1234, World::new(dep, 2, 2));
    World::bring_up_ue(&mut eng, 1);

    // Data flows both ways.
    eng.schedule_in(SimDuration::ZERO, |w: &mut World, ctx| {
        w.start_cbr(1, 0, 5_000, 200, SimDuration::from_millis(200), ctx);
    });
    eng.run_with_mailbox();

    // Idle, then paging via new downlink data.
    let out = eng.world().ran.trigger_idle(1);
    eng.schedule_in(SimDuration::ZERO, move |w: &mut World, ctx| {
        w.send_after(ctx, out.delay, out.env);
    });
    eng.run_with_mailbox();
    eng.schedule_in(SimDuration::ZERO, |w: &mut World, ctx| {
        w.start_cbr(1, 1, 5_000, 200, SimDuration::from_millis(200), ctx);
    });
    eng.run_with_mailbox();

    // Handover to gNB 2 while traffic continues.
    eng.schedule_in(SimDuration::ZERO, |w: &mut World, ctx| {
        w.start_cbr(1, 2, 5_000, 200, SimDuration::from_millis(600), ctx);
        w.mailbox
            .send_in(ctx, SimDuration::from_millis(100), |w, ctx| {
                let out = w.ran.trigger_handover(1, 2);
                w.send_after(ctx, out.delay, out.env);
            });
    });
    eng.run_with_mailbox();

    // Finally, deregister.
    let out = eng.world().ran.trigger_deregistration(1);
    eng.schedule_in(SimDuration::ZERO, move |w: &mut World, ctx| {
        w.send_after(ctx, out.delay, out.env);
    });
    eng.run_with_mailbox();
    eng
}

#[test]
fn full_lifecycle_on_every_deployment() {
    for dep in [Deployment::Free5gc, Deployment::OnvmUpf, Deployment::L25gc] {
        let eng = lifecycle(dep);
        let w = eng.world();
        for ev in [
            UeEvent::Registration,
            UeEvent::SessionRequest,
            UeEvent::IdleTransition,
            UeEvent::Paging,
            UeEvent::Handover,
            UeEvent::Deregistration,
        ] {
            assert!(
                w.core.events.iter().any(|e| e.event == ev),
                "{dep:?}: {ev:?} must complete"
            );
        }
        // Every data flow delivered losslessly (3K smart buffer covers
        // both paging and handover interruptions at 5 kpps).
        for flow in &w.apps.cbr {
            assert_eq!(flow.lost(), 0, "{dep:?}: flow {} lossless", flow.flow);
        }
        // After deregistration every trace of the UE's session is gone:
        // SMF context, UPF session, gNB tunnels, RAN registration.
        assert!(!w.ran.ues[&1].registered, "{dep:?}");
        assert!(
            w.core.smf.sessions.is_empty(),
            "{dep:?}: SMF context released"
        );
        assert!(
            w.core.upf.sessions.is_empty(),
            "{dep:?}: UPF session deleted"
        );
        assert!(!w.ran.gnbs[&2].ul_teid.contains_key(&1));
        assert!(
            !w.ran.gnbs[&1].ul_teid.contains_key(&1),
            "source context released"
        );
    }
}

#[test]
fn deployments_order_consistently() {
    // For every completed event: L25GC < ONVM-UPF <= free5GC.
    let free = lifecycle(Deployment::Free5gc);
    let onvm = lifecycle(Deployment::OnvmUpf);
    let l25 = lifecycle(Deployment::L25gc);
    let dur = |eng: &Engine<World>, ev: UeEvent| {
        eng.world()
            .core
            .events
            .iter()
            .find(|e| e.event == ev)
            .expect("completed")
            .duration()
    };
    for ev in [
        UeEvent::Registration,
        UeEvent::SessionRequest,
        UeEvent::Paging,
        UeEvent::Handover,
    ] {
        let f = dur(&free, ev);
        let o = dur(&onvm, ev);
        let l = dur(&l25, ev);
        assert!(l < o, "{ev:?}: L25GC {l} < ONVM-UPF {o}");
        assert!(o <= f, "{ev:?}: ONVM-UPF {o} <= free5GC {f}");
    }
}

#[test]
fn two_ues_are_isolated() {
    let mut eng = Engine::new(77, World::new(Deployment::L25gc, 2, 2));
    World::bring_up_ue(&mut eng, 1);
    World::bring_up_ue(&mut eng, 2);
    assert_eq!(eng.world().core.upf.sessions.len(), 2);

    // UE 1 goes idle; UE 2 keeps streaming. UE 1's buffering must not
    // affect UE 2 (session-scoped smart buffering, §3.3).
    let out = eng.world().ran.trigger_idle(1);
    eng.schedule_in(SimDuration::ZERO, move |w: &mut World, ctx| {
        w.send_after(ctx, out.delay, out.env);
    });
    eng.run_with_mailbox();
    eng.schedule_in(SimDuration::ZERO, |w: &mut World, ctx| {
        w.start_cbr(2, 0, 10_000, 200, SimDuration::from_millis(100), ctx);
    });
    eng.run_with_mailbox();
    let w = eng.world();
    let flow = &w.apps.cbr[0];
    assert_eq!(flow.lost(), 0);
    let stats = flow.rtt_stats();
    assert!(
        stats.max < 1_000.0,
        "UE 2 sees base RTT only (µs): {}",
        stats.max
    );
    // UE 1 was never paged (no data for it).
    assert!(!w.core.events.iter().any(|e| e.event == UeEvent::Paging));
}

#[test]
fn determinism_same_seed_same_world() {
    let a = lifecycle(Deployment::L25gc);
    let b = lifecycle(Deployment::L25gc);
    let evs = |eng: &Engine<World>| {
        eng.world()
            .core
            .events
            .iter()
            .map(|e| (e.event, e.start, e.end))
            .collect::<Vec<_>>()
    };
    assert_eq!(
        evs(&a),
        evs(&b),
        "identical seeds reproduce identical histories"
    );
    assert_eq!(a.now(), b.now());
}
