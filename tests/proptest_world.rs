//! Property test over the whole system: random sequences of UE events
//! (idle, paging-by-data, handover ping-pong, re-activation) at random
//! times, under continuous downlink probing — no packets may be lost
//! (smart buffering absorbs every interruption at these rates), all
//! triggered procedures must complete, and the run must be deterministic.

use l25gc_core::context::UeEvent;
use l25gc_core::Deployment;
use l25gc_sim::{Engine, SimDuration};
use l25gc_testbed::World;
use proptest::prelude::*;

#[derive(Debug, Clone, Copy)]
enum UeAction {
    /// Go idle (only valid while connected); the next data wave pages.
    Idle,
    /// Hand over to the other gNB (only valid while connected).
    Handover,
    /// Just keep streaming.
    Stream,
}

fn arb_actions() -> impl Strategy<Value = Vec<(UeAction, u64)>> {
    proptest::collection::vec(
        (
            prop_oneof![
                Just(UeAction::Idle),
                Just(UeAction::Handover),
                Just(UeAction::Stream),
            ],
            // Gap before the next action, ms. Long enough for any
            // procedure (paging ~30 ms, handover ~160 ms) to finish.
            400u64..900,
        ),
        1..6,
    )
}

fn run_scenario(dep: Deployment, actions: &[(UeAction, u64)], seed: u64) -> Engine<World> {
    let mut eng = Engine::new(seed, World::new(dep, 2, 1));
    World::bring_up_ue(&mut eng, 1);

    let mut at = SimDuration::from_millis(10);
    for (flow_id, &(action, gap_ms)) in actions.iter().enumerate() {
        let flow_id = flow_id as u32;
        match action {
            UeAction::Idle => {
                eng.schedule_in(at, |w: &mut World, ctx| {
                    // Only meaningful while connected; the RAN knows.
                    if w.ran.ues[&1].connected {
                        let out = w.ran.trigger_idle(1);
                        w.send_after(ctx, out.delay, out.env);
                    }
                });
            }
            UeAction::Handover => {
                eng.schedule_in(at, |w: &mut World, ctx| {
                    if w.ran.ues[&1].connected {
                        let current = w.ran.ues[&1].serving_gnb;
                        let target = if current == 1 { 2 } else { 1 };
                        let out = w.ran.trigger_handover(1, target);
                        w.send_after(ctx, out.delay, out.env);
                    }
                });
            }
            UeAction::Stream => {}
        }
        // A wave of downlink probes midway through the gap: wakes an
        // idle UE (paging) or rides through/over a handover.
        let wave_at = at + SimDuration::from_millis(gap_ms / 2);
        eng.schedule_in(wave_at, move |w: &mut World, ctx| {
            w.start_cbr(1, flow_id, 2_000, 200, SimDuration::from_millis(100), ctx);
        });
        at += SimDuration::from_millis(gap_ms);
    }
    eng.run_with_mailbox();
    eng
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// No event sequence loses packets or wedges a procedure.
    #[test]
    fn random_event_sequences_conserve_packets(
        actions in arb_actions(),
        dep_sel in 0u8..3,
    ) {
        let dep = match dep_sel {
            0 => Deployment::Free5gc,
            1 => Deployment::OnvmUpf,
            _ => Deployment::L25gc,
        };
        let eng = run_scenario(dep, &actions, 999);
        let w = eng.world();
        for flow in &w.apps.cbr {
            prop_assert_eq!(
                flow.lost(),
                0,
                "{:?}: flow {} lost packets (sent {}, acked {})",
                dep,
                flow.flow,
                flow.sent,
                flow.acked
            );
        }
        // Whatever went idle was paged back by its data wave.
        let idles = w.core.events.iter().filter(|e| e.event == UeEvent::IdleTransition).count();
        let pagings = w.core.events.iter().filter(|e| e.event == UeEvent::Paging).count();
        prop_assert!(pagings >= idles.saturating_sub(1), "idles {idles} pagings {pagings}");
        // No procedure left half-done at the AMF.
        let ctx = &w.core.amf.ues[&1];
        prop_assert_eq!(ctx.ho, l25gc_core::context::HoPhase::None);
        prop_assert_eq!(ctx.paging, l25gc_core::context::PagingPhase::None);
    }

    /// Identical inputs replay identical histories (whole-system
    /// determinism, the property checkpoint/replay relies on).
    #[test]
    fn world_is_deterministic(actions in arb_actions()) {
        let a = run_scenario(Deployment::L25gc, &actions, 5);
        let b = run_scenario(Deployment::L25gc, &actions, 5);
        let evs = |e: &Engine<World>| {
            e.world().core.events.iter().map(|r| (r.event, r.start, r.end)).collect::<Vec<_>>()
        };
        prop_assert_eq!(evs(&a), evs(&b));
        prop_assert_eq!(a.now(), b.now());
        prop_assert_eq!(a.world().apps.ue_received, b.world().apps.ue_received);
    }
}
